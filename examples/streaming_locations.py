"""Streaming updates: maintaining a GTS index over a live location feed.

The paper motivates GTS's update design with social-media workloads: object
streams (users moving, posts arriving) must be absorbed without rebuilding the
index on every change, and queries issued in between must see a consistent,
up-to-date picture.

This example simulates such a feed over the T-Loc-like dataset:

* every tick, a handful of users move (delete + insert), a few new users
  appear, and a batch of "who is near me?" range queries arrives;
* GTS absorbs the updates in its cache table and rebuilds only when the cache
  outgrows its budget (the LSM-style lazy strategy of Section 4.4);
* at the end the script reports per-operation update cost and the number of
  automatic rebuilds, plus the same workload measured with the paper's
  recommended ~5 KB cache and with a tiny cache for comparison (Table 5's
  trade-off).

Run with::

    python examples/streaming_locations.py
"""

from __future__ import annotations

import numpy as np

from repro import GTS
from repro.datasets import generate_tloc
from repro.gpusim import Device, DeviceSpec


def run_feed(cache_bytes: int, ticks: int = 50, seed: int = 3) -> dict:
    """Replay the same synthetic feed against a GTS index with the given cache size."""
    dataset = generate_tloc(cardinality=8_000, seed=seed)
    rng = np.random.default_rng(seed)
    device = Device(DeviceSpec())
    index = GTS.build(
        list(np.asarray(dataset.objects)),
        dataset.metric,
        node_capacity=20,
        device=device,
        cache_capacity_bytes=cache_bytes,
    )

    live_ids = list(range(len(dataset.objects)))
    update_ops = 0
    query_count = 0
    start = device.stats.sim_time
    for _ in range(ticks):
        # a few users move: delete the old position, insert the new one
        for _ in range(4):
            victim = live_ids.pop(int(rng.integers(0, len(live_ids))))
            moved = index.get_object(victim) + rng.normal(scale=0.05, size=2)
            index.delete(victim)
            live_ids.append(index.insert(moved))
            update_ops += 2
        # a couple of new users appear
        for _ in range(2):
            live_ids.append(index.insert(rng.uniform(-180, 180, size=2)))
            update_ops += 1
        # a batch of "who is near me?" queries
        queries = [index.get_object(live_ids[int(rng.integers(0, len(live_ids)))]) for _ in range(16)]
        index.range_query_batch(queries, radii=0.5)
        query_count += 16
    elapsed = device.stats.sim_time - start
    return {
        "cache_bytes": cache_bytes,
        "updates": update_ops,
        "queries": query_count,
        "rebuilds": index.automatic_rebuild_count,
        "sim_seconds": elapsed,
        "per_op_us": elapsed / (update_ops + query_count) * 1e6,
    }


def main() -> None:
    print("replaying the same location feed with three cache-table budgets")
    print(f"{'cache':>10} | {'updates':>7} | {'queries':>7} | {'rebuilds':>8} | {'us/op':>8}")
    for cache_bytes in (64, 5 * 1024, 64 * 1024):
        stats = run_feed(cache_bytes)
        label = f"{cache_bytes} B" if cache_bytes < 1024 else f"{cache_bytes // 1024} KB"
        print(
            f"{label:>10} | {stats['updates']:>7} | {stats['queries']:>7} | "
            f"{stats['rebuilds']:>8} | {stats['per_op_us']:>8.2f}"
        )
    print(
        "\nA tiny cache rebuilds constantly; a huge cache makes every query scan a large\n"
        "unindexed buffer.  The ~5 KB middle ground is the paper's recommendation (Table 5)."
    )


if __name__ == "__main__":
    main()
