"""Serving simulation: many concurrent clients multiplexed onto one GTS index.

Run with::

    python examples/serving_simulation.py

The script builds a GTS index, generates an open-loop workload — eight
simulated clients issuing a skewed mix of range/kNN queries and streaming
updates with Poisson arrivals — and serves it twice: once with per-request
dispatch (no batching) and once with a greedy micro-batching scheduler.  It
prints both latency/throughput reports, shows the deadline-aware policy on
the same stream, and verifies that the batched service returns exactly the
answers a sequential replay of the stream produces.
"""

from __future__ import annotations

import numpy as np

from repro import GTS, EuclideanDistance
from repro.service import (
    DeadlineAwarePolicy,
    GreedyBatchPolicy,
    GTSService,
    WorkloadSpec,
    generate_workload,
    sequential_replay,
    summarize,
)


def build_index(points: np.ndarray) -> GTS:
    return GTS.build(points, EuclideanDistance(), node_capacity=20, seed=11)


def main() -> None:
    rng = np.random.default_rng(11)

    # --- a clustered 2-d dataset; the last 10% is held out as the insert pool
    centers = rng.uniform(-50, 50, size=(6, 2))
    points = centers[rng.integers(0, 6, size=8_000)] + rng.normal(scale=1.0, size=(8_000, 2))
    num_indexed = 7_200

    # --- an open-loop workload: 8 clients, Poisson arrivals, hot-key skew
    spec = WorkloadSpec(
        num_clients=8,
        rate_per_client=150_000.0,   # requests per simulated second
        duration=1e-3,               # 1 ms of simulated arrivals
        mix={"range": 0.35, "knn": 0.45, "insert": 0.12, "delete": 0.08},
        radius=1.0,
        k=10,
        zipf_theta=1.3,              # a small hot set gets most of the traffic
        deadline=500e-6,             # every request wants an answer in 500 us
        seed=11,
    )
    workload = generate_workload(points, num_indexed, spec)
    counts = ", ".join(f"{k}={n}" for k, n in sorted(workload.kind_counts().items()))
    print(f"workload: {len(workload.requests)} requests over "
          f"{workload.duration * 1e3:.2f} ms simulated ({counts})\n")

    # --- baseline: per-request dispatch (no micro-batching)
    service = GTSService(build_index(points[:num_indexed]),
                         GreedyBatchPolicy(max_batch_size=1, max_wait=0.0))
    responses = service.serve(workload.requests)
    print(summarize(responses, service.batches).to_text("per-request dispatch"))
    print()

    # --- greedy micro-batching: same stream, same index, batched dispatch
    service = GTSService(build_index(points[:num_indexed]),
                         GreedyBatchPolicy(max_batch_size=64, max_wait=150e-6))
    batched_responses = service.serve(workload.requests)
    print(summarize(batched_responses, service.batches).to_text("greedy micro-batching"))
    print()

    # --- deadline-aware scheduling: cuts batches early when deadlines loom
    service = GTSService(build_index(points[:num_indexed]),
                         DeadlineAwarePolicy(max_batch_size=64, max_wait=150e-6))
    deadline_responses = service.serve(workload.requests)
    print(summarize(deadline_responses, service.batches).to_text("deadline-aware policy"))
    print()

    # --- the serving contract: batched answers == sequential replay
    expected = sequential_replay(build_index(points[:num_indexed]), workload.requests)
    assert [r.result for r in batched_responses] == expected, "batched answers differ!"
    print("verification: micro-batched answers identical to sequential replay")


if __name__ == "__main__":
    main()
