"""Multi-device scale-out: one dataset, 1 → 4 simulated GPUs.

Run with::

    python examples/sharded_scaleout.py

The script builds the same clustered 2-d dataset into a single-device GTS
and into ShardedGTS indexes with 2 and 4 shards, answers an identical query
batch on each, and prints the throughput curve.  It then demonstrates that
sharding is invisible to callers: answers match the single-device index
exactly (global object ids included), streaming inserts/deletes are routed
to the owning shard, and the concurrent serving layer (GTSService) runs over
the sharded index unchanged.
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanDistance, GTS, GTSService, ShardedGTS
from repro.gpusim import DeviceSpec


def main() -> None:
    rng = np.random.default_rng(29)

    # --- a clustered 2-d dataset plus a held-out query batch
    centers = rng.uniform(-40, 40, size=(8, 2))
    points = centers[rng.integers(0, 8, size=6_000)] + rng.normal(scale=1.2, size=(6_000, 2))
    queries = [points[int(i)] + 0.01 for i in rng.integers(0, len(points), size=96)]
    k, radius = 16, 1.5

    # A narrow device keeps the toy dataset in the compute-bound regime the
    # paper's full-size datasets occupy (see DESIGN.md §6).
    spec = DeviceSpec().with_cores(256)

    # --- single device: the baseline and the exactness reference
    single = GTS.build(points, EuclideanDistance(), node_capacity=20, seed=29)
    expected_knn = single.knn_query_batch(queries, k)
    expected_range = single.range_query_batch(queries, radius)

    print(f"{'shards':>6} | {'build (sim)':>12} | {'kNN batch (sim)':>16} | {'speedup':>8} | exact")
    print("-" * 62)
    base_time = None
    for num_shards in (1, 2, 4):
        index = ShardedGTS.build(
            points, EuclideanDistance(), num_shards=num_shards,
            node_capacity=20, device_spec=spec, seed=29,
        )
        build_time = index.device.stats.sim_time
        before = index.device.stats.sim_time
        answers = index.knn_query_batch(queries, k)
        elapsed = index.device.stats.sim_time - before
        base_time = base_time or elapsed
        exact = answers == expected_knn and index.range_query_batch(queries, radius) == expected_range
        print(f"{num_shards:>6} | {build_time * 1e6:>9.2f} us | {elapsed * 1e6:>13.2f} us "
              f"| {base_time / elapsed:>7.2f}x | {exact}")
        if num_shards < 4:
            index.close()

    # --- streaming updates are routed to the owning shard
    sharded = index  # the 4-shard index from the loop
    new_id = sharded.insert(np.array([99.0, 99.0]))
    print(f"\ninsert -> global id {new_id}, shard sizes now {sharded.shard_sizes}")
    assert sharded.knn_query(np.array([99.0, 99.0]), 1)[0][0] == new_id
    sharded.delete(new_id)
    print(f"delete {new_id} -> routed back; live objects: {len(sharded)}")

    # --- the serving layer runs over a sharded index unchanged
    service = GTSService(sharded)
    for i in range(32):
        service.submit("knn", payload=queries[i], k=4, client_id=i % 4)
    responses = service.flush()
    print(f"GTSService over 4 shards: {len(responses)} responses "
          f"in {len(service.batches)} micro-batch(es)")
    sharded.close()
    single.close()


if __name__ == "__main__":
    main()
