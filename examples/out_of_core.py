"""Out-of-core GTS: serve a dataset larger than the device-memory pool.

Run with::

    python examples/out_of_core.py

The script builds a fully-resident GTS index and a *tiered* one whose
device-resident object pool is capped at 25% of the dataset's payload
bytes (DESIGN.md §7): the object store stays in simulated host memory,
split into fixed-size blocks, and a demand pager stages blocks onto the
device, evicting with a pin-aware LRU that protects the blocks holding the
tree's pivots.  It then shows the tiered answers are identical while the
pager's hit rate, eviction traffic and attributed host↔device transfer
time tell you what the smaller memory footprint costs.
"""

from __future__ import annotations

import numpy as np

from repro import GTS, EuclideanDistance, TierConfig
from repro.core.construction import objects_nbytes


def main() -> None:
    rng = np.random.default_rng(42)
    centers = rng.normal(scale=10.0, size=(8, 2))
    points = centers[rng.integers(0, 8, size=6000)] + rng.normal(scale=0.6, size=(6000, 2))
    metric = EuclideanDistance()
    dataset_bytes = objects_nbytes(points)
    print(f"dataset        : {len(points)} points, {dataset_bytes / 1024:.1f} KB payload")

    # --- the fully-resident reference ------------------------------------
    resident = GTS.build(points, metric, node_capacity=20, seed=7)
    queries = points[rng.integers(0, len(points), size=64)]
    before = resident.device.stats.sim_time
    expected = resident.knn_query_batch(queries, 10)
    resident_time = resident.device.stats.sim_time - before

    # --- the tiered index: device pool capped at 25% of the dataset ------
    tier = TierConfig(
        memory_budget_bytes=dataset_bytes // 4,
        block_bytes=max(64, dataset_bytes // 200),
        eviction="pinned-lru",
        prefetch=True,
    )
    tiered = GTS.build(points, metric, node_capacity=20, seed=7, tier=tier)
    print(f"device pool    : {tier.memory_budget_bytes / 1024:.1f} KB "
          f"({tiered.pager.store.num_blocks} blocks of "
          f"{tier.block_bytes} B, {tier.eviction} eviction, prefetch on)")

    tiered.pager.stats.reset()
    snapshot = tiered.device.snapshot()
    answers = tiered.knn_query_batch(queries, 10)
    delta = tiered.device.stats.delta_since(snapshot)

    print(f"identical      : {answers == expected}")
    pager = tiered.pager.stats
    print(f"pager          : hit rate {pager.hit_rate:.3f} "
          f"({pager.hits} hits, {pager.misses} misses, {pager.evictions} evictions, "
          f"{pager.prefetched_blocks} prefetched)")
    print(f"paging traffic : {pager.bytes_h2d / 1024:.1f} KB staged host→device, "
          f"{delta.transfer_seconds.get('pager-h2d', 0.0) * 1e3:.3f} ms attributed")
    print(f"time           : resident {resident_time * 1e6:.1f} us vs "
          f"tiered {delta.sim_time * 1e6:.1f} us (simulated)")
    peaks = tiered.device.stats.pool_peak_bytes
    print(f"memory peaks   : tree {peaks.get('tree', 0) / 1024:.1f} KB, "
          f"paged blocks {peaks.get('pager', 0) / 1024:.1f} KB "
          f"(vs {dataset_bytes / 1024:.1f} KB resident objects)")

    # streaming updates keep working: the store grows host-side, queries
    # merge the cache table exactly as in resident mode
    new_id = tiered.insert(np.array([0.0, 0.0]))
    hit = tiered.knn_query(np.array([0.0, 0.0]), 1)
    print(f"insert + query : object {new_id} found at distance {hit[0][1]:.3f}")

    resident.close()
    tiered.close()
    tiered.device.assert_no_leaks()
    print("clean shutdown : every simulated allocation freed")


if __name__ == "__main__":
    main()
