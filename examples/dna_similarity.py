"""DNA read matching with GTS under the edit distance.

This example mirrors the motivation the paper opens with: sequencing
pipelines generate enormous volumes of DNA reads, and finding reads similar
to a query read (e.g. to group reads from the same genomic region) needs a
general metric index because the edit distance has no coordinates to exploit.

The script

1. generates a DNA-read dataset (mutated copies of a few reference regions),
2. builds GTS over it,
3. runs a batch of metric range queries ("find every read within 10 edits")
   and a batch of kNN queries ("find the 5 most similar reads"),
4. compares the distance-computation count against the brute-force GPU table
   approach — the gap is exactly why a tree index pays off when the metric is
   as expensive as the edit distance on ~108-character strings.

Run with::

    python examples/dna_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import GPUTable
from repro.datasets import generate_dna
from repro.evalsuite import make_workload
from repro.gpusim import Device, DeviceSpec, measure
from repro.metrics import EditDistance
from repro import GTS


def main() -> None:
    dataset = generate_dna(cardinality=500, seed=7)
    reads = dataset.objects
    metric = dataset.metric
    print(f"dataset: {len(reads)} DNA reads, mean length "
          f"{np.mean([len(r) for r in reads]):.0f}, metric = {metric.name}")

    device = Device(DeviceSpec())
    index = GTS.build(reads, metric, node_capacity=10, device=device)
    print(f"GTS built: height={index.height}, storage={index.storage_bytes / 1024:.1f} KiB")

    workload = make_workload(dataset, num_queries=32, radius_step=8, k=5)
    print(f"query batch: {workload.batch_size} reads, range radius = {workload.radius:.0f} edits")

    # --- metric range queries: all reads within `radius` edit operations
    metric.reset_counter()
    with measure(device, num_queries=workload.batch_size) as run:
        range_hits = index.range_query_batch(workload.queries, workload.radius)
    gts_distances = metric.pair_count
    print(f"MRQ: avg {np.mean([len(h) for h in range_hits]):.1f} similar reads per query, "
          f"{gts_distances} edit-distance computations, "
          f"throughput {run.throughput:,.0f} queries/min (simulated)")

    # --- metric kNN queries: the 5 most similar reads
    with measure(device, num_queries=workload.batch_size) as run:
        knn_hits = index.knn_query_batch(workload.queries, k=5)
    closest = [hits[0][1] for hits in knn_hits if hits]
    print(f"MkNNQ: median distance to the closest read = {np.median(closest):.0f} edits, "
          f"throughput {run.throughput:,.0f} queries/min (simulated)")

    # --- how much work does the tree save over the brute-force GPU table?
    table_metric = EditDistance(expected_length=108)
    table = GPUTable(table_metric, device=Device(DeviceSpec()))
    table.build(reads)
    table_metric.reset_counter()
    table.range_query_batch(workload.queries, workload.radius)
    print(f"GPU-Table needs {table_metric.pair_count} edit-distance computations for the "
          f"same MRQ batch — GTS pruned "
          f"{100 * (1 - gts_distances / table_metric.pair_count):.0f}% of them away")

    # --- a new sequencing batch arrives: stream it in
    new_reads = generate_dna(cardinality=40, seed=8).objects
    for read in new_reads:
        index.insert(read)
    print(f"streamed {len(new_reads)} new reads in; index now holds {len(index)} reads "
          f"(automatic rebuilds triggered: {index.automatic_rebuild_count})")


if __name__ == "__main__":
    main()
