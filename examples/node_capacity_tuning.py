"""Tuning the node capacity Nc with the Section 5.3 cost model.

The node capacity is GTS's one real tuning knob: it trades pruning power
(small Nc, deep tree, many pivots) against parallelism and per-level
synchronisation (large Nc, shallow tree).  The paper derives a cost model to
pick it without trial and error.

This example sweeps Nc over the paper's candidate set on a word-embedding
workload, measures the actual simulated query cost for each value, and prints
it next to the cost model's prediction and recommendation — a small-scale
version of Fig. 6 plus the model validation.

Run with::

    python examples/node_capacity_tuning.py
"""

from __future__ import annotations

from repro.core.cost_model import estimate_query_cost
from repro.datasets import generate_vector
from repro.evalsuite import PAPER_NODE_CAPACITIES, MethodRunner, make_workload
from repro.evalsuite.reporting import format_seconds, format_table
from repro.gpusim import DeviceSpec


def main() -> None:
    dataset = generate_vector(cardinality=1_200, seed=21)
    workload = make_workload(dataset, num_queries=64, radius_step=8, k=8)
    spec = DeviceSpec()
    sigma = None

    rows = []
    best_measured = None
    for nc in PAPER_NODE_CAPACITIES:
        runner = MethodRunner("GTS", dataset, device_spec=spec, method_kwargs={"node_capacity": nc})
        build = runner.build()
        if sigma is None:
            sigma = runner.index.gts.distance_distribution(sample_size=96).std
        predicted = estimate_query_cost(
            n=dataset.cardinality,
            node_capacity=nc,
            device=spec,
            sigma=sigma,
            radius=workload.radius,
            metric_unit_cost=dataset.metric.unit_cost,
        )
        mrq = runner.run_mrq(workload.queries, workload.radius)
        knn = runner.run_knn(workload.queries, workload.k)
        measured = mrq.sim_time / len(workload.queries)
        rows.append(
            {
                "Nc": nc,
                "height": runner.index.gts.height,
                "predicted/query": format_seconds(predicted),
                "measured/query": format_seconds(measured),
                "MRQ q/min": f"{mrq.throughput:,.0f}",
                "kNN q/min": f"{knn.throughput:,.0f}",
            }
        )
        if best_measured is None or measured < best_measured[1]:
            best_measured = (nc, measured)

    print(format_table(rows, ["Nc", "height", "predicted/query", "measured/query", "MRQ q/min", "kNN q/min"],
                       title="Node capacity sweep on the Vector-like dataset"))
    runner = MethodRunner("GTS", dataset)
    runner.build()
    recommended = runner.index.gts.recommend_node_capacity(radius=workload.radius)
    print(f"\ncost model recommendation: Nc = {recommended}")
    print(f"measured optimum:          Nc = {best_measured[0]}")
    print("The two should agree or be neighbours in the candidate list — the same")
    print("qualitative guidance the paper draws from its cost model (Fig. 6).")


if __name__ == "__main__":
    main()
