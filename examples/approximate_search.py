"""Approximate search on the GTS tree: recall vs cost (the paper's future work).

Run with::

    python examples/approximate_search.py

The script builds an exact GTS index over a Color-like high-dimensional
histogram dataset, then answers the same kNN batch three ways:

* exactly (the reference);
* with :class:`repro.approx.ApproximateGTS` beam search at several widths;
* with :class:`repro.approx.LearnedLeafRouter` at several leaf budgets.

For every configuration it reports the recall against the exact answers, the
number of real distance computations and the simulated device time — the
recall/cost frontier the `bench_approx` benchmark asserts on.
"""

from __future__ import annotations

from repro import GTS
from repro.approx import ApproximateGTS, LearnedLeafRouter, mean_knn_recall
from repro.datasets import generate_color


def main() -> None:
    dataset = generate_color(cardinality=2500, seed=7)
    metric = dataset.metric
    print(f"dataset: {dataset.name} ({dataset.cardinality} histograms, metric {metric.name})")

    index = GTS.build(dataset.objects, metric, node_capacity=20, seed=7)
    print(f"index  : height={index.height}, {len(index.tree.leaves())} leaves\n")

    queries = dataset.sample_queries(48, seed=11)
    k = 10

    def run(label, answer_fn):
        metric.reset_counter()
        before = index.device.stats.sim_time
        answers = answer_fn()
        sim_time = index.device.stats.sim_time - before
        return label, answers, metric.pair_count, sim_time

    label, exact, exact_distances, exact_time = run("exact", lambda: index.knn_query_batch(queries, k))
    print(f"{'strategy':<18} {'recall':>8} {'distances':>11} {'sim time (ms)':>14}")
    print("-" * 55)
    print(f"{label:<18} {1.0:>8.3f} {exact_distances:>11} {exact_time * 1e3:>14.2f}")

    for width in (1, 2, 4, 8, 32):
        approx = ApproximateGTS(index, beam_width=width)
        label, answers, distances, sim_time = run(
            f"beam (w={width})", lambda: approx.knn_query_batch(queries, k)
        )
        recall = mean_knn_recall(answers, exact)
        print(f"{label:<18} {recall:>8.3f} {distances:>11} {sim_time * 1e3:>14.2f}")

    training = dataset.sample_queries(32, seed=13)
    for budget in (1, 2, 4, 8):
        router = LearnedLeafRouter(index, leaf_budget=budget, training_queries=training)
        label, answers, distances, sim_time = run(
            f"learned (b={budget})", lambda: router.knn_query_batch(queries, k)
        )
        recall = mean_knn_recall(answers, exact)
        print(f"{label:<18} {recall:>8.3f} {distances:>11} {sim_time * 1e3:>14.2f}")

    print("\nlarger budgets climb towards recall 1.0 while staying well below the")
    print("exact search's distance count — the trade-off the paper's future-work")
    print("direction is after.")


if __name__ == "__main__":
    main()
