"""Multi-column similarity search: one GTS per attribute, Fagin-style merging.

Run with::

    python examples/multicolumn_records.py

The paper's Section 5.2 remark sketches how GTS handles multi-column data:
build one index per column and combine the per-column answers.  This example
indexes a small catalogue of "listings" with two very different attributes —

* a 2-d location (Euclidean distance), and
* a set of tags (Jaccard distance, one of the library's set metrics) —

then answers conjunctive range queries ("within 2 km AND tag overlap at
least 50 %") and weighted kNN queries ("closest overall, location counting
twice as much as tags") with :class:`repro.MultiColumnGTS`.
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanDistance, MultiColumnGTS
from repro.metrics import JaccardDistance

TAG_POOL = [
    "cafe", "wifi", "garden", "parking", "vegan", "late-night", "live-music",
    "family", "rooftop", "riverside", "historic", "coworking",
]


def make_listings(count: int, seed: int = 9) -> list[tuple[np.ndarray, frozenset]]:
    """Synthesise ``count`` listings: a location near one of four districts + tags."""
    rng = np.random.default_rng(seed)
    districts = np.array([[0.0, 0.0], [6.0, 1.0], [2.0, 7.0], [8.0, 8.0]])
    listings = []
    for _ in range(count):
        district = districts[rng.integers(0, len(districts))]
        location = district + rng.normal(scale=0.8, size=2)
        tags = frozenset(rng.choice(TAG_POOL, size=int(rng.integers(2, 6)), replace=False).tolist())
        listings.append((location, tags))
    return listings


def main() -> None:
    listings = make_listings(800)
    index = MultiColumnGTS.build(
        listings,
        metrics=[EuclideanDistance(), JaccardDistance()],
        weights=[2.0, 1.0],          # location matters twice as much as tags
        node_capacity=10,
    )
    print(f"indexed {len(listings)} listings over 2 columns (location, tags)\n")

    query = (np.array([0.5, 0.4]), frozenset({"cafe", "wifi", "vegan"}))

    # --- conjunctive range query: close by AND with similar tags
    matches = index.range_query(query, radii=[2.0, 0.5])
    print(f"range query (<=2.0 km, Jaccard distance <=0.5): {len(matches)} listings")
    for record_id, dists in matches[:5]:
        location, tags = listings[record_id]
        print(f"  #{record_id}: {dists[0]:.2f} km, tag distance {dists[1]:.2f}, tags={sorted(tags)}")

    # --- weighted kNN under the aggregate distance
    top = index.knn_query(query, k=5)
    print("\ntop-5 listings by weighted aggregate (2*location + 1*tags):")
    for record_id, aggregate in top:
        location, tags = listings[record_id]
        km = float(np.linalg.norm(location - query[0]))
        print(f"  #{record_id}: aggregate={aggregate:.2f} (distance {km:.2f} km, tags={sorted(tags)})")

    # --- spot-check the aggregate ranking against a brute-force scan
    l2, jac = EuclideanDistance(), JaccardDistance()
    brute = sorted(
        (2.0 * l2.distance(query[0], loc) + 1.0 * jac.distance(query[1], tags), i)
        for i, (loc, tags) in enumerate(listings)
    )[:5]
    assert [i for _, i in brute] == [i for i, _ in top], "aggregate kNN differs from brute force!"
    print("\nspot-check against brute force: OK")


if __name__ == "__main__":
    main()
