"""Compare GTS against the paper's baselines on one workload of your choice.

A miniature of the paper's Fig. 7 experiment: pick a dataset and a workload,
build every applicable method, and print construction cost, storage, query
throughput and distance computations side by side.

Run with::

    python examples/method_comparison.py            # default: the Color-like dataset
    python examples/method_comparison.py words 2000 # dataset name and cardinality
"""

from __future__ import annotations

import sys

from repro.datasets import available_datasets, get_dataset
from repro.evalsuite import MethodRunner, make_workload
from repro.evalsuite.reporting import format_bytes, format_seconds, format_table, format_throughput

#: Methods attempted on every dataset; special-purpose ones are skipped
#: automatically when the metric is unsupported (the "/" cells of Table 4).
METHODS = ("BST", "MVPT", "EGNAT", "GPU-Table", "GPU-Tree", "LBPG-Tree", "GANNS", "GTS")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "color"
    cardinality = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000
    if name not in available_datasets():
        raise SystemExit(f"unknown dataset {name!r}; choose from {available_datasets()}")

    dataset = get_dataset(name, cardinality=cardinality)
    workload = make_workload(dataset, num_queries=64, radius_step=8, k=8)
    print(f"dataset={dataset.name} (n={dataset.cardinality}, metric={dataset.metric.name}), "
          f"batch={workload.batch_size}, radius={workload.radius:.4g}, k={workload.k}\n")

    oracle = MethodRunner("LinearScan", dataset)
    oracle.build()
    ground_truth = oracle.index.knn_query_batch(workload.queries, workload.k)

    rows = []
    for method in METHODS:
        runner = MethodRunner(method, dataset)
        build = runner.build()
        if build.failed:
            rows.append({"method": method, "status": build.status})
            continue
        mrq = runner.run_mrq(workload.queries, workload.radius)
        knn = runner.run_knn(workload.queries, workload.k, ground_truth=ground_truth)
        rows.append(
            {
                "method": method,
                "status": "ok",
                "build": format_seconds(build.sim_time),
                "storage": format_bytes(build.storage_bytes),
                "MRQ q/min": format_throughput(mrq.throughput) if mrq.status == "ok" else mrq.status,
                "kNN q/min": format_throughput(knn.throughput),
                "kNN recall": f"{knn.recall:.2f}" if knn.recall is not None else "-",
                "kNN dists": knn.distance_computations,
            }
        )

    columns = ["method", "status", "build", "storage", "MRQ q/min", "kNN q/min", "kNN recall", "kNN dists"]
    print(format_table(rows, columns, title=f"Method comparison on {dataset.name}"))
    print("\nThroughput is simulated-device throughput; 'unsupported' marks the")
    print("special-purpose baselines that cannot index this metric (Table 4's '/').")


if __name__ == "__main__":
    main()
