"""Quickstart: build a GTS index over 2-d points and run batched similarity queries.

Run with::

    python examples/quickstart.py

The script builds the index over a clustered point set (a miniature of the
paper's T-Loc workload), answers a batch of metric range queries and metric
kNN queries, verifies one answer against a brute-force scan, and prints the
simulated-GPU accounting that the evaluation harness uses for its throughput
numbers.
"""

from __future__ import annotations

import numpy as np

from repro import GTS, EuclideanDistance
from repro.gpusim import Device, DeviceSpec, measure


def main() -> None:
    rng = np.random.default_rng(42)

    # --- a clustered 2-d dataset (think: user locations around a few cities)
    centers = rng.uniform(-100, 100, size=(8, 2))
    points = centers[rng.integers(0, 8, size=20_000)] + rng.normal(scale=1.5, size=(20_000, 2))

    # --- build the index on a simulated GPU
    metric = EuclideanDistance()
    device = Device(DeviceSpec())
    index = GTS.build(points, metric, node_capacity=20, device=device)
    print(f"built GTS over {len(index)} points: height={index.height}, "
          f"storage={index.storage_bytes / 1024:.1f} KiB, "
          f"construction={index.build_result.sim_time * 1e3:.3f} ms (simulated)")

    # --- batched metric range queries
    queries = points[rng.integers(0, len(points), size=256)]
    with measure(device, num_queries=len(queries)) as run:
        range_results = index.range_query_batch(queries, radii=1.0)
    hits = sum(len(r) for r in range_results)
    print(f"MRQ batch of {len(queries)}: {hits} total answers, "
          f"{run.sim_time * 1e3:.3f} ms simulated, "
          f"throughput {run.throughput:,.0f} queries/min")

    # --- batched metric kNN queries
    with measure(device, num_queries=len(queries)) as run:
        knn_results = index.knn_query_batch(queries, k=10)
    print(f"MkNNQ batch of {len(queries)} (k=10): "
          f"{run.sim_time * 1e3:.3f} ms simulated, "
          f"throughput {run.throughput:,.0f} queries/min")

    # --- verify one answer against brute force
    q = queries[0]
    brute = np.sort(np.sqrt(((points - q) ** 2).sum(axis=1)))[:10]
    got = np.array([d for _, d in knn_results[0]])
    assert np.allclose(np.sort(got), brute), "GTS answer differs from brute force!"
    print("spot-check against brute force: OK")

    # --- streaming updates through the cache table
    new_id = index.insert(np.array([500.0, 500.0]))
    index.delete(new_id)
    print(f"streaming insert+delete processed; cache size = {index.cache_size}, "
          f"automatic rebuilds so far = {index.automatic_rebuild_count}")

    # --- the cost model's node-capacity recommendation
    recommended = index.recommend_node_capacity(radius=1.0)
    print(f"cost model recommends node capacity Nc = {recommended}")


if __name__ == "__main__":
    main()
