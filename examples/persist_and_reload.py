"""Build once, save, reload and keep serving: index persistence end to end.

Run with::

    python examples/persist_and_reload.py

A DNA-like read collection is indexed under edit distance, saved to a
temporary archive, loaded back on a *fresh* simulated device and queried
again — the answers must be identical.  The reloaded index then keeps
absorbing streaming updates through its cache table, exactly like a freshly
built one.  The same archive format is what ``repro build --output`` /
``repro query --index`` use on the command line.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GTS
from repro.datasets import generate_dna
from repro.gpusim import Device, DeviceSpec


def main() -> None:
    dataset = generate_dna(cardinality=400, seed=3)
    print(f"dataset: {dataset.name} ({dataset.cardinality} reads, metric {dataset.metric.name})")

    index = GTS.build(dataset.objects, dataset.metric, node_capacity=10, seed=3)
    queries = dataset.sample_queries(8, seed=5)
    reference = index.knn_query_batch(queries, 5)
    print(f"built  : height={index.height}, storage={index.storage_bytes / 1024:.1f} KiB")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dna-index.npz"
        written = index.save(path)
        print(f"saved  : {written} ({written.stat().st_size / 1024:.1f} KiB on disk)")

        # load on a brand-new simulated device, as a serving process would
        serving_device = Device(DeviceSpec())
        loaded = GTS.load(written, device=serving_device)
        print(f"loaded : {loaded.num_objects} objects on a fresh device "
              f"({serving_device.stats.bytes_to_device / 1024:.1f} KiB transferred)")

        answers = loaded.knn_query_batch(queries, 5)
        assert answers == reference, "loaded index must answer exactly like the original"
        print("answers after reload: identical to the original index")

        # the loaded index is fully live: streaming updates keep working
        new_id = loaded.insert(dataset.objects[0] + "ACGT")
        got = loaded.knn_query(dataset.objects[0] + "ACGT", 1)
        assert got[0][0] == new_id
        print(f"streaming insert after reload: object {new_id} found at distance {got[0][1]:.0f}")


if __name__ == "__main__":
    main()
