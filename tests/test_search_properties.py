"""Property-based tests: GTS answers always equal brute-force answers.

These are the strongest correctness guarantees in the suite: for random
datasets, random queries, random node capacities and random radii / k, the
index must return exactly the brute-force result (distance multisets for kNN,
id sets for MRQ).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_tree
from repro.core.knn_query import batch_knn_query
from repro.core.range_query import batch_range_query
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EditDistance, EuclideanDistance, ManhattanDistance
from tests.conftest import brute_force_knn, brute_force_range


def _build(objects, metric, nc):
    device = Device(DeviceSpec())
    tree = build_tree(objects, np.arange(len(objects)), metric, nc, device).tree
    return tree, device


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=300),
    nc=st.sampled_from([2, 3, 5, 10, 20]),
    radius=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_mrq_matches_brute_force_on_random_points(seed, n, nc, radius):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    metric = EuclideanDistance()
    tree, device = _build(pts, metric, nc)
    queries = [pts[int(rng.integers(0, n))] + rng.normal(scale=0.1, size=3) for _ in range(3)]
    got = batch_range_query(tree, pts, metric, device, queries, radius)
    for qi, query in enumerate(queries):
        expected = brute_force_range(pts, metric, query, radius)
        assert {o for o, _ in got[qi]} == {o for o, _ in expected}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=300),
    nc=st.sampled_from([2, 4, 16]),
    k=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_mknn_matches_brute_force_on_random_points(seed, n, nc, k):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    metric = ManhattanDistance()
    tree, device = _build(pts, metric, nc)
    query = pts[int(rng.integers(0, n))] + rng.normal(scale=0.05, size=3)
    got = batch_knn_query(tree, pts, metric, device, [query], k)[0]
    expected = brute_force_knn(pts, metric, query, k)
    assert len(got) == len(expected)
    np.testing.assert_allclose(
        sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=120),
    nc=st.sampled_from([2, 4, 8]),
    radius=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_mrq_matches_brute_force_on_random_strings(seed, n, nc, radius):
    rng = np.random.default_rng(seed)
    alphabet = list("abcd")
    words = ["".join(rng.choice(alphabet, size=int(rng.integers(1, 10)))) for _ in range(n)]
    metric = EditDistance(expected_length=6)
    tree, device = _build(words, metric, nc)
    query = "".join(rng.choice(alphabet, size=int(rng.integers(1, 10))))
    got = batch_range_query(tree, words, metric, device, [query], float(radius))[0]
    expected = brute_force_range(words, metric, query, float(radius))
    assert {o for o, _ in got} == {o for o, _ in expected}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    duplicates=st.integers(min_value=2, max_value=30),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_mknn_correct_with_heavy_duplicates(seed, duplicates, k):
    """Duplicate keys may straddle node boundaries (Fig. 10); answers stay exact."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(8, 2))
    pts = np.repeat(base, duplicates, axis=0)
    metric = EuclideanDistance()
    tree, device = _build(pts, metric, 4)
    query = base[0] + 0.01
    got = batch_knn_query(tree, pts, metric, device, [query], k)[0]
    expected = brute_force_knn(pts, metric, query, k)
    np.testing.assert_allclose(
        sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
    )


@given(
    seed=st.integers(min_value=0, max_value=1_000),
    n=st.integers(min_value=10, max_value=200),
    radius=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_mrq_exact_under_memory_pressure(seed, n, radius):
    """Tiny device memory forces the two-stage grouping; answers must not change."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 2))
    metric = EuclideanDistance()
    big = Device(DeviceSpec())
    tree = build_tree(pts, np.arange(n), metric, 4, big).tree
    small = Device(DeviceSpec(memory_bytes=64 * 1024))
    queries = [pts[i] for i in range(min(16, n))]
    got_small = batch_range_query(tree, pts, metric, small, queries, radius)
    got_big = batch_range_query(tree, pts, metric, big, queries, radius)
    for a, b in zip(got_small, got_big):
        assert {o for o, _ in a} == {o for o, _ in b}


@given(seed=st.integers(min_value=0, max_value=1_000), k=st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_knn_subset_of_large_enough_range_query(seed, k):
    """The k-th NN distance defines a radius whose MRQ contains the kNN answer."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(150, 2))
    metric = EuclideanDistance()
    tree, device = _build(pts, metric, 8)
    query = pts[0] + 0.02
    knn = batch_knn_query(tree, pts, metric, device, [query], k)[0]
    kth = max(d for _, d in knn)
    mrq = batch_range_query(tree, pts, metric, device, [query], kth)[0]
    assert {o for o, _ in knn} <= {o for o, _ in mrq} | set()
