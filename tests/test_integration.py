"""End-to-end integration tests across modules.

These tests exercise realistic mini-workflows: build an index over a
generated dataset, run mixed query/update workloads, compare every method's
answers on the same workload, and check that the simulated accounting stays
consistent throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS
from repro.baselines import METHOD_REGISTRY, GTSIndex, LinearScan
from repro.datasets import generate_color, generate_dna, generate_tloc, generate_vector, generate_words
from repro.evalsuite import MethodRunner, make_workload
from repro.gpusim import Device, DeviceSpec, MiB


@pytest.fixture(scope="module")
def datasets_small():
    return {
        "words": generate_words(250, seed=11),
        "tloc": generate_tloc(700, seed=11),
        "vector": generate_vector(150, seed=11),
        "dna": generate_dna(80, seed=11),
        "color": generate_color(250, seed=11),
    }


class TestEndToEndPerDataset:
    @pytest.mark.parametrize("name", ["words", "tloc", "vector", "dna", "color"])
    def test_gts_matches_linear_scan_on_every_paper_dataset(self, datasets_small, name):
        dataset = datasets_small[name]
        workload = make_workload(dataset, num_queries=6, radius_step=8, k=5)
        oracle = LinearScan(dataset.metric)
        oracle.build(dataset.objects)
        gts = GTSIndex(dataset.metric, node_capacity=8)
        gts.build(dataset.objects)

        truth_r = oracle.range_query_batch(workload.queries, workload.radius)
        got_r = gts.range_query_batch(workload.queries, workload.radius)
        for a, b in zip(got_r, truth_r):
            assert {o for o, _ in a} == {o for o, _ in b}

        truth_k = oracle.knn_query_batch(workload.queries, workload.k)
        got_k = gts.knn_query_batch(workload.queries, workload.k)
        for a, b in zip(got_k, truth_k):
            np.testing.assert_allclose(
                sorted(d for _, d in a), sorted(d for _, d in b), atol=1e-9
            )


class TestAllMethodsAgreeOnOneWorkload:
    def test_exact_methods_agree(self, datasets_small):
        dataset = datasets_small["tloc"]
        workload = make_workload(dataset, num_queries=4, radius_step=8, k=5)
        reference = None
        for name in ("LinearScan", "BST", "MVPT", "EGNAT", "GPU-Table", "GPU-Tree", "LBPG-Tree", "GTS"):
            index = METHOD_REGISTRY[name](dataset.metric)
            index.build(dataset.objects)
            answers = index.range_query_batch(workload.queries, workload.radius)
            ids = [frozenset(o for o, _ in a) for a in answers]
            if reference is None:
                reference = ids
            else:
                assert ids == reference, f"{name} disagrees with LinearScan on MRQ"


class TestMixedWorkload:
    def test_interleaved_queries_and_updates_stay_exact(self, datasets_small):
        dataset = datasets_small["tloc"]
        objects = list(np.asarray(dataset.objects))
        gts = GTS.build(objects, dataset.metric, node_capacity=10, cache_capacity_bytes=192)
        oracle: dict[int, np.ndarray] = {i: obj for i, obj in enumerate(objects)}
        rng = np.random.default_rng(99)
        next_obj = len(objects)
        for step in range(60):
            action = rng.random()
            if action < 0.3:
                new = rng.normal(size=2) * 10
                new_id = gts.insert(new)
                oracle[new_id] = new
                next_obj += 1
            elif action < 0.5 and len(oracle) > 10:
                victim = int(rng.choice(list(oracle)))
                gts.delete(victim)
                del oracle[victim]
            else:
                query = rng.normal(size=2) * 10
                k = int(rng.integers(1, 6))
                got = gts.knn_query(query, k)
                ids = np.array(list(oracle))
                objs = np.stack([oracle[i] for i in ids])
                dists = np.sqrt(((objs - query) ** 2).sum(1))
                expected = np.sort(dists)[:k]
                np.testing.assert_allclose(
                    np.array([d for _, d in got]), expected, atol=1e-9
                )
        # the cache must have spilled into at least one rebuild along the way
        assert gts.rebuild_count >= 1

    def test_rebuild_preserves_memory_bounds(self, datasets_small):
        dataset = datasets_small["color"]
        device = Device(DeviceSpec(memory_bytes=64 * MiB))
        # one 282-d float64 object is ~2.2 KB; the cache must be able to hold
        # at least one (a smaller budget now rejects the insert outright)
        gts = GTS.build(list(np.asarray(dataset.objects)), dataset.metric, device=device,
                        cache_capacity_bytes=4096)
        for i in range(40):
            gts.insert(np.asarray(dataset.objects)[i % 50] * 1.01)
        assert device.used_bytes <= device.capacity_bytes
        assert gts.num_objects == dataset.cardinality + 40


class TestRunnerAcrossMethods:
    def test_runner_builds_every_general_method_on_tloc(self, datasets_small):
        dataset = datasets_small["tloc"]
        wl = make_workload(dataset, num_queries=4)
        for method in ("BST", "MVPT", "EGNAT", "GPU-Table", "GPU-Tree", "GTS"):
            runner = MethodRunner(method, dataset)
            build = runner.build()
            assert build.status == "ok", method
            res = runner.run_knn(wl.queries, 3)
            assert res.status == "ok", method
            assert res.sim_time > 0

    def test_gpu_methods_slower_than_gts_on_expensive_metric(self, datasets_small):
        """Headline shape: GTS beats the brute-force GPU table on DNA (expensive metric)."""
        dataset = datasets_small["dna"]
        wl = make_workload(dataset, num_queries=8, radius_step=4)
        gts_runner = MethodRunner("GTS", dataset)
        gts_runner.build()
        table_runner = MethodRunner("GPU-Table", dataset)
        table_runner.build()
        gts_res = gts_runner.run_mrq(wl.queries, wl.radius)
        table_res = table_runner.run_mrq(wl.queries, wl.radius)
        assert gts_res.distance_computations < table_res.distance_computations

    def test_cpu_methods_much_slower_than_gts_on_large_batch(self, datasets_small):
        """Headline shape: batched GTS beats the sequential CPU tree on throughput."""
        dataset = datasets_small["tloc"]
        wl = make_workload(dataset, num_queries=64)
        gts_runner = MethodRunner("GTS", dataset)
        gts_runner.build()
        cpu_runner = MethodRunner("MVPT", dataset)
        cpu_runner.build()
        gts_res = gts_runner.run_mrq(wl.queries, wl.radius)
        cpu_res = cpu_runner.run_mrq(wl.queries, wl.radius)
        assert gts_res.throughput > cpu_res.throughput
