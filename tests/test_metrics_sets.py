"""Tests for the set-valued metrics (Jaccard, Hausdorff) in repro.metrics.sets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GTS
from repro.exceptions import MetricError
from repro.metrics import (
    EuclideanDistance,
    HausdorffDistance,
    JaccardDistance,
    ManhattanDistance,
    available_metrics,
    get_metric,
    hausdorff_distance,
    jaccard_distance,
)

ITEM_SET = st.frozensets(st.integers(min_value=0, max_value=20), max_size=10)
POINT_SET = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
).map(lambda pts: np.asarray(pts, dtype=np.float64))


# --------------------------------------------------------------------------
# Jaccard distance
# --------------------------------------------------------------------------
class TestJaccardExamples:
    def test_known_values(self):
        assert jaccard_distance({1, 2, 3}, {1, 2, 3}) == 0.0
        assert jaccard_distance({1, 2}, {3, 4}) == 1.0
        assert jaccard_distance({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_distance({1}, set()) == 1.0

    def test_accepts_any_iterable(self):
        assert jaccard_distance([1, 2, 2, 3], (3, 2, 1)) == 0.0

    def test_counter_increments(self):
        metric = JaccardDistance()
        metric.pairwise({1, 2}, [{1}, {2}, {3}])
        assert metric.pair_count == 3

    def test_validate_rejects_strings(self):
        with pytest.raises(MetricError):
            JaccardDistance().validate_objects(["abc", "def"])

    def test_validate_rejects_non_iterables(self):
        with pytest.raises(MetricError):
            JaccardDistance().validate_objects([1, 2, 3])

    def test_registered(self):
        assert "jaccard" in available_metrics()
        assert isinstance(get_metric("jaccard"), JaccardDistance)


@given(a=ITEM_SET, b=ITEM_SET)
@settings(max_examples=60, deadline=None)
def test_jaccard_non_negative_symmetric_bounded(a, b):
    d_ab = jaccard_distance(a, b)
    assert 0.0 <= d_ab <= 1.0
    assert d_ab == pytest.approx(jaccard_distance(b, a))


@given(a=ITEM_SET)
@settings(max_examples=40, deadline=None)
def test_jaccard_identity(a):
    assert jaccard_distance(a, a) == 0.0


@given(a=ITEM_SET, b=ITEM_SET, c=ITEM_SET)
@settings(max_examples=80, deadline=None)
def test_jaccard_triangle_inequality(a, b, c):
    assert jaccard_distance(a, b) <= jaccard_distance(a, c) + jaccard_distance(c, b) + 1e-12


class TestJaccardWithIndexes:
    def test_gts_exact_over_tag_sets(self, rng):
        universe = list(range(30))
        objects = [
            frozenset(rng.choice(universe, size=rng.integers(2, 8), replace=False).tolist())
            for _ in range(200)
        ]
        metric = JaccardDistance()
        index = GTS.build(objects, metric, node_capacity=6, seed=11)
        oracle = JaccardDistance()
        query = objects[0]
        got = {o for o, _ in index.range_query(query, 0.4)}
        expected = {
            i for i, obj in enumerate(objects) if oracle.distance(query, obj) <= 0.4
        }
        assert got == expected

    def test_gts_knn_over_tag_sets(self, rng):
        universe = list(range(25))
        objects = [
            frozenset(rng.choice(universe, size=rng.integers(2, 6), replace=False).tolist())
            for _ in range(150)
        ]
        index = GTS.build(objects, JaccardDistance(), node_capacity=6, seed=12)
        oracle = JaccardDistance()
        query = objects[5]
        got = index.knn_query(query, 4)
        brute = sorted(oracle.distance(query, obj) for obj in objects)[:4]
        assert sorted(d for _, d in got) == pytest.approx(brute)


# --------------------------------------------------------------------------
# Hausdorff distance
# --------------------------------------------------------------------------
class TestHausdorffExamples:
    def test_identical_sets(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert hausdorff_distance(a, a) == 0.0

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)

    def test_asymmetric_sets(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[0.0, 0.0]])
        # the farthest point of a from b dominates
        assert hausdorff_distance(a, b) == pytest.approx(10.0)

    def test_both_empty(self):
        assert hausdorff_distance(np.zeros((0, 2)), np.zeros((0, 2))) == 0.0

    def test_one_empty_rejected(self):
        with pytest.raises(MetricError):
            hausdorff_distance(np.zeros((0, 2)), np.array([[1.0, 1.0]]))

    def test_inner_metric_respected(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert hausdorff_distance(a, b, inner=ManhattanDistance()) == pytest.approx(2.0)
        assert hausdorff_distance(a, b, inner=EuclideanDistance()) == pytest.approx(np.sqrt(2))

    def test_metric_class_name_and_cost(self):
        metric = HausdorffDistance(inner=ManhattanDistance())
        assert "l1" in metric.name
        assert metric.unit_cost > ManhattanDistance().unit_cost

    def test_validate_rejects_empty_member(self):
        with pytest.raises(MetricError):
            HausdorffDistance().validate_objects([np.zeros((0, 2))])

    def test_registered(self):
        assert "hausdorff" in available_metrics()
        assert isinstance(get_metric("hausdorff"), HausdorffDistance)


# The vectorised L2 cross-distance kernel uses the quadratic expansion, whose
# floating-point error is on the order of 1e-6 for coordinates around 1e2, so
# the axiom checks allow that much slack.
HAUSDORFF_EPS = 1e-5


@given(a=POINT_SET, b=POINT_SET)
@settings(max_examples=50, deadline=None)
def test_hausdorff_non_negative_and_symmetric(a, b):
    d_ab = hausdorff_distance(a, b)
    assert d_ab >= 0.0
    assert d_ab == pytest.approx(hausdorff_distance(b, a), rel=1e-9, abs=HAUSDORFF_EPS)


@given(a=POINT_SET)
@settings(max_examples=30, deadline=None)
def test_hausdorff_identity(a):
    assert hausdorff_distance(a, a) == pytest.approx(0.0, abs=HAUSDORFF_EPS)


@given(a=POINT_SET, b=POINT_SET, c=POINT_SET)
@settings(max_examples=50, deadline=None)
def test_hausdorff_triangle_inequality(a, b, c):
    d_ab = hausdorff_distance(a, b)
    d_ac = hausdorff_distance(a, c)
    d_cb = hausdorff_distance(c, b)
    assert d_ab <= d_ac + d_cb + HAUSDORFF_EPS


class TestHausdorffWithIndexes:
    def test_gts_exact_over_trajectories(self, rng):
        # short random-walk trajectories: metric search over shape data
        trajectories = []
        for _ in range(120):
            start = rng.normal(scale=5.0, size=2)
            steps = rng.normal(scale=0.4, size=(rng.integers(2, 6), 2))
            trajectories.append(start + np.cumsum(steps, axis=0))
        metric = HausdorffDistance()
        index = GTS.build(trajectories, metric, node_capacity=5, seed=13)
        oracle = HausdorffDistance()
        query = trajectories[3]
        got = index.knn_query(query, 5)
        brute = sorted(oracle.distance(query, t) for t in trajectories)[:5]
        assert sorted(d for _, d in got) == pytest.approx(brute)
