"""Tests for the out-of-core tiered memory subsystem (repro.tier).

The load-bearing property: a tiered GTS — at any device-pool budget, under
any eviction policy, with or without prefetch — returns **byte-identical**
answers and id assignments to a fully-resident GTS across mixed
query/insert/delete batches.  Tiering is a performance trade, never a
correctness one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance, ShardedGTS
from repro.exceptions import MemoryLeakError, TierError
from repro.gpusim import Device, DeviceSpec
from repro.core.construction import objects_nbytes
from repro.tier import (
    BlockPager,
    ClockPolicy,
    LRUPolicy,
    PinnedLRUPolicy,
    TierConfig,
    TieredObjectStore,
    make_eviction_policy,
)
from repro.tier.experiment import experiment_memory_tiering


def make_store(n=64, dim=2, block_objects=4, seed=0):
    rng = np.random.default_rng(seed)
    objects = [row for row in rng.normal(size=(n, dim))]
    per_object = objects_nbytes(objects) // n
    return TieredObjectStore(objects, block_bytes=per_object * block_objects)


# ---------------------------------------------------------------------------
# TierConfig
# ---------------------------------------------------------------------------
class TestTierConfig:
    def test_round_trips_through_dict(self):
        config = TierConfig(
            memory_budget_bytes=4096, block_bytes=512, eviction="clock", prefetch=True
        )
        assert TierConfig.from_dict(config.as_dict()) == config

    def test_rejects_budget_smaller_than_a_block(self):
        with pytest.raises(TierError):
            TierConfig(memory_budget_bytes=100, block_bytes=512)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(TierError):
            TierConfig(memory_budget_bytes=0)
        with pytest.raises(TierError):
            TierConfig(memory_budget_bytes=1024, block_bytes=0)

    def test_memory_budget_kwarg_overrides_config_budget(self):
        tier = TierConfig(memory_budget_bytes=1024, block_bytes=256)
        index = GTS(EuclideanDistance(), tier=tier, memory_budget_bytes=2048)
        assert index.tier_config.memory_budget_bytes == 2048
        assert index.tier_config.block_bytes == 256


# ---------------------------------------------------------------------------
# TieredObjectStore
# ---------------------------------------------------------------------------
class TestTieredObjectStore:
    def test_blocks_cover_the_id_space_exactly_once(self):
        store = make_store(n=61, block_objects=4)
        seen = []
        for bid in range(store.num_blocks):
            seen.extend(store.block_object_ids(bid))
        assert seen == list(range(61))

    def test_block_of_matches_block_ranges(self):
        store = make_store(n=61, block_objects=4)
        for bid in range(store.num_blocks):
            for oid in store.block_object_ids(bid):
                assert store.block_of(oid) == bid

    def test_block_bytes_sum_to_store_payload(self):
        store = make_store(n=61, block_objects=4)
        total = sum(store.block_nbytes(b) for b in range(store.num_blocks))
        assert total == objects_nbytes(store.raw)

    def test_append_extends_tail_and_recomputes_its_size(self):
        store = make_store(n=8, block_objects=4)
        before = store.block_nbytes(store.num_blocks - 1)
        tail = store.append(np.zeros(2))
        assert tail == store.num_blocks - 1
        assert store.block_nbytes(tail) > 0
        assert len(store) == 9
        assert store.block_nbytes(0) >= before  # full blocks unchanged

    def test_blocks_for_deduplicates_and_sorts(self):
        store = make_store(n=32, block_objects=4)
        blocks = store.blocks_for([0, 1, 2, 3, 17, 16, 3])
        assert blocks.tolist() == [0, 4]

    def test_rejects_out_of_range_ids(self):
        store = make_store(n=8)
        with pytest.raises(TierError):
            store.block_of(8)
        with pytest.raises(TierError):
            store.block_object_ids(99)


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------
class TestEvictionPolicies:
    def test_lru_evicts_least_recently_used(self):
        policy = LRUPolicy()
        for bid in (1, 2, 3):
            policy.admit(bid)
        policy.touch(1)
        assert policy.victim(pinned=set(), avoid=set()) == 2

    def test_lru_respects_avoid_set(self):
        policy = LRUPolicy()
        for bid in (1, 2):
            policy.admit(bid)
        assert policy.victim(pinned=set(), avoid={1}) == 2
        assert policy.victim(pinned=set(), avoid={1, 2}) is None

    def test_clock_gives_referenced_blocks_a_second_chance(self):
        policy = ClockPolicy()
        for bid in (1, 2, 3):
            policy.admit(bid)
        # first sweep clears all reference bits, second finds block 1
        assert policy.victim(pinned=set(), avoid=set()) == 1
        policy.forget(1)
        policy.touch(3)
        assert policy.victim(pinned=set(), avoid=set()) == 2

    def test_pinned_lru_skips_pinned_until_forced(self):
        policy = PinnedLRUPolicy()
        for bid in (1, 2, 3):
            policy.admit(bid)
        assert policy.victim(pinned={1}, avoid=set()) == 2
        assert policy.victim(pinned={1, 2, 3}, avoid=set()) == 1  # forced: plain LRU

    def test_registry_rejects_unknown_policy(self):
        with pytest.raises(TierError):
            make_eviction_policy("belady")
        assert make_eviction_policy("pinned_lru").name == "pinned-lru"


# ---------------------------------------------------------------------------
# BlockPager
# ---------------------------------------------------------------------------
class TestBlockPager:
    def make_pager(self, device, budget_blocks=2, eviction="lru", prefetch=False, n=32):
        store = make_store(n=n, block_objects=4)
        block = store.block_nbytes(0)
        config = TierConfig(
            memory_budget_bytes=block * budget_blocks,
            block_bytes=store.block_bytes,
            eviction=eviction,
            prefetch=prefetch,
        )
        return store, BlockPager(device, store, config)

    def test_miss_then_hit_then_eviction(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=2)
        assert pager.access(0) is False  # cold miss
        assert pager.access(0) is True
        pager.access(1)
        pager.access(2)  # evicts block 0 (LRU)
        assert not pager.is_resident(0)
        assert pager.stats.misses == 3 and pager.stats.hits == 1
        assert pager.stats.evictions == 1
        pager.release()

    def test_budget_is_never_exceeded(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=3)
        rng = np.random.default_rng(5)
        for oid in rng.integers(0, len(store), size=200):
            pager.access(store.block_of(int(oid)))
            assert pager.resident_bytes <= pager.budget_bytes
            assert guarded_device.pool_used_bytes("pager") == pager.resident_bytes
        pager.release()

    def test_faults_charge_attributed_h2d_time(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=2)
        pager.access(0)
        pager.access(1)
        stats = guarded_device.stats
        assert stats.transfer_seconds["pager-h2d"] == pytest.approx(
            pager.stats.h2d_seconds
        )
        # two fault transactions → two latency charges on top of the bytes
        expected = 2 * pager.config.fault_latency + (
            pager.stats.bytes_h2d / guarded_device.spec.transfer_bandwidth
        )
        assert pager.stats.h2d_seconds == pytest.approx(expected)
        pager.release()

    def test_prefetch_coalesces_the_fault_latency(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=4, prefetch=True)
        staged = pager.prefetch([0, 1, 2, 3])
        assert staged == 4
        # one transaction: a single latency for all four blocks
        expected = pager.config.fault_latency + (
            pager.stats.bytes_h2d / guarded_device.spec.transfer_bandwidth
        )
        assert pager.stats.h2d_seconds == pytest.approx(expected)
        assert pager.access(2) is True
        assert pager.stats.prefetch_hits == 1
        pager.release()

    def test_prefetch_overflow_is_best_effort(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=2, prefetch=True)
        staged = pager.prefetch([0, 1, 2, 3])
        assert staged == 2  # the rest is skipped, not an error
        assert pager.resident_bytes <= pager.budget_bytes
        pager.release()

    def test_pinned_blocks_survive_under_pinned_lru(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=2, eviction="pinned-lru")
        pager.set_pins({0})
        pager.access(0)
        pager.access(1)
        pager.access(2)  # must evict 1, not the pinned 0
        assert pager.is_resident(0)
        assert not pager.is_resident(1)
        assert pager.stats.forced_evictions == 0
        pager.release()

    def test_invalidate_drops_without_writeback(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=2)
        pager.access(0)
        pager.mark_dirty(0)
        pager.invalidate(0)
        assert pager.stats.invalidations == 1
        assert pager.stats.writebacks == 0
        assert guarded_device.stats.bytes_to_host == 0
        pager.release()

    def test_dirty_eviction_writes_back(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=1)
        pager.access(0)
        pager.mark_dirty(0)
        pager.access(1)  # evicts the dirty block
        assert pager.stats.writebacks == 1
        assert guarded_device.stats.transfer_seconds["pager-d2h"] > 0
        pager.release()

    def test_block_larger_than_budget_raises(self, guarded_device):
        store = make_store(n=32, block_objects=8)
        config = TierConfig(
            memory_budget_bytes=store.block_nbytes(0),
            block_bytes=store.block_bytes,
        )
        pager = BlockPager(guarded_device, store, config)
        pager.budget_bytes = store.block_nbytes(0) - 1
        with pytest.raises(TierError):
            pager.access(0)
        pager.release()

    def test_release_frees_every_allocation(self, guarded_device):
        store, pager = self.make_pager(guarded_device, budget_blocks=4)
        for bid in range(4):
            pager.access(bid)
        pager.release()
        assert pager.resident_bytes == 0
        # guarded_device teardown asserts no leaks


# ---------------------------------------------------------------------------
# Device leak guard + pool accounting
# ---------------------------------------------------------------------------
class TestLeakGuardAndPools:
    def test_assert_no_leaks_names_the_leak(self, device):
        device.allocate(512, "forgotten", pool="pager")
        with pytest.raises(MemoryLeakError, match="forgotten"):
            device.assert_no_leaks()

    def test_leak_guard_scopes_to_the_block(self, device):
        device.allocate(256, "pre-existing")  # outside the guard: ignored
        with device.leak_guard():
            alloc = device.allocate(128, "scoped")
            device.free(alloc)
        with pytest.raises(MemoryLeakError):
            with device.leak_guard():
                device.allocate(128, "leaked")

    def test_pool_peaks_are_tracked_independently(self, device):
        a = device.allocate(1000, pool="tree")
        b = device.allocate(600, pool="pager")
        device.free(b)
        device.allocate(200, pool="pager")
        peaks = device.stats.pool_peak_bytes
        assert peaks["tree"] == 1000
        assert peaks["pager"] == 600
        assert device.stats.peak_memory_bytes == 1600
        assert device.pool_used_bytes("pager") == 200
        device.free(a)

    def test_reset_stats_reseeds_pool_peaks_from_live_usage(self, device):
        device.allocate(300, pool="tree")
        b = device.allocate(700, pool="pager")
        device.free(b)
        device.reset_stats()
        assert device.stats.pool_peak_bytes == {"tree": 300}

    def test_stats_dicts_merge_delta_and_scale(self):
        from repro.gpusim import ExecutionStats

        a = ExecutionStats(
            pool_peak_bytes={"tree": 10, "pager": 5}, transfer_seconds={"pager-h2d": 1.0}
        )
        b = ExecutionStats(
            pool_peak_bytes={"pager": 8}, transfer_seconds={"pager-h2d": 0.5, "x": 2.0}
        )
        merged = a.merge(b)
        assert merged.pool_peak_bytes == {"tree": 10, "pager": 8}
        assert merged.transfer_seconds == {"pager-h2d": 1.5, "x": 2.0}
        delta = merged.delta_since(a)
        assert delta.transfer_seconds["pager-h2d"] == pytest.approx(0.5)
        half = merged.scale(0.5)
        assert half.transfer_seconds["pager-h2d"] == pytest.approx(0.75)
        assert half.pool_peak_bytes == merged.pool_peak_bytes
        copied = merged.copy()
        copied.transfer_seconds["pager-h2d"] = 99.0
        assert merged.transfer_seconds["pager-h2d"] == 1.5


# ---------------------------------------------------------------------------
# Tiered GTS: answers identical to the fully-resident index
# ---------------------------------------------------------------------------
def mixed_batches(points, holdout, num_queries=12):
    """A deterministic mixed workload: queries, inserts, deletes, queries."""
    return [
        [("knn", points[i], 5) for i in range(num_queries)]
        + [("range", points[i], 0.6) for i in range(num_queries)],
        [("insert", holdout[0]), ("knn", holdout[0], 4), ("insert", holdout[1])],
        [("delete", 3), ("range", points[1], 0.8), ("delete", 10), ("knn", points[2], 6)],
        [("insert", holdout[2]), ("delete", len(points)), ("range", holdout[1], 0.7)],
    ]


class TestTieredGTS:
    CAPS = (0.5, 0.25, 0.1)
    POLICIES = ("lru", "clock", "pinned-lru")

    def build_pair(self, objects, metric, tier, node_capacity=8, seed=11):
        resident = GTS.build(objects, metric, node_capacity=node_capacity, seed=seed)
        tiered = GTS.build(
            objects, metric, node_capacity=node_capacity, seed=seed, tier=tier
        )
        assert tiered.tiered and not resident.tiered
        return resident, tiered

    @pytest.mark.parametrize("eviction", POLICIES)
    @pytest.mark.parametrize("cap", CAPS)
    def test_mixed_batches_identical_at_every_cap(self, points_2d, eviction, cap):
        points, holdout = points_2d[:500], points_2d[500:]
        nbytes = objects_nbytes(points)
        tier = TierConfig(
            memory_budget_bytes=max(256, int(nbytes * cap)),
            block_bytes=256,
            eviction=eviction,
        )
        resident, tiered = self.build_pair(points, EuclideanDistance(), tier)
        for batch in mixed_batches(points, holdout):
            expected = resident.execute_batch(batch)
            got = tiered.execute_batch(batch)
            assert got == expected  # answers AND assigned ids, byte-identical
        assert tiered.num_objects == resident.num_objects
        resident.close()
        tiered.close()
        tiered.device.assert_no_leaks()

    def test_prefetch_changes_timing_not_answers(self, points_2d):
        points = points_2d[:400]
        nbytes = objects_nbytes(points)
        base = TierConfig(memory_budget_bytes=nbytes // 4, block_bytes=256)
        resident, tiered = self.build_pair(points, EuclideanDistance(), base)
        prefetching = GTS.build(
            points, EuclideanDistance(), node_capacity=8, seed=11,
            tier=TierConfig(memory_budget_bytes=nbytes // 4, block_bytes=256, prefetch=True),
        )
        queries = [points[i] for i in range(16)]
        expected = resident.knn_query_batch(queries, 6)
        assert tiered.knn_query_batch(queries, 6) == expected
        assert prefetching.knn_query_batch(queries, 6) == expected
        assert prefetching.pager.stats.prefetched_blocks > 0
        for index in (resident, tiered, prefetching):
            index.close()

    def test_budget_below_largest_real_block_fails_at_build(self, word_list, edit_metric):
        # blocks are sized by the *average* payload, so variable-length data
        # can produce a block above block_bytes; that must be a clear build-
        # time error, never a TierError mid-query
        with pytest.raises(TierError, match="largest object block"):
            GTS.build(
                word_list, edit_metric, node_capacity=6,
                tier=TierConfig(memory_budget_bytes=40, block_bytes=40),
            )

    def test_string_dataset_pages_identically(self, word_list, edit_metric):
        nbytes = objects_nbytes(word_list)
        tier = TierConfig(memory_budget_bytes=max(64, nbytes // 5), block_bytes=64)
        resident, tiered = self.build_pair(word_list, edit_metric, tier, node_capacity=6)
        queries = word_list[:8]
        assert tiered.knn_query_batch(queries, 4) == resident.knn_query_batch(queries, 4)
        assert tiered.range_query_batch(queries, 2.0) == resident.range_query_batch(queries, 2.0)
        resident.close()
        tiered.close()

    def test_tight_cap_attributes_pager_traffic(self, points_2d):
        points = points_2d[:500]
        nbytes = objects_nbytes(points)
        tier = TierConfig(memory_budget_bytes=nbytes // 10, block_bytes=256)
        index = GTS.build(points, EuclideanDistance(), node_capacity=8, seed=11, tier=tier)
        index.pager.stats.reset()
        before = index.device.snapshot()
        index.knn_query_batch([points[i] for i in range(12)], 5)
        delta = index.device.stats.delta_since(before)
        assert index.pager.stats.misses > 0
        assert delta.transfer_seconds.get("pager-h2d", 0.0) > 0
        assert delta.transfer_seconds.get("results-d2h", 0.0) > 0
        peaks = index.device.stats.pool_peak_bytes
        assert peaks["pager"] <= tier.memory_budget_bytes
        assert peaks["tree"] > 0
        index.close()

    def test_batch_update_and_rebuild_stay_identical(self, points_2d, rng):
        points = points_2d[:450]
        tier = TierConfig(memory_budget_bytes=2048, block_bytes=256, eviction="pinned-lru")
        resident, tiered = self.build_pair(points, EuclideanDistance(), tier)
        inserts = [rng.normal(size=2) for _ in range(20)]
        resident.batch_update(inserts=inserts, deletes=[1, 5, 9])
        tiered.batch_update(inserts=inserts, deletes=[1, 5, 9])
        resident.rebuild()
        tiered.rebuild()
        queries = [points[i] for i in range(10)]
        assert tiered.knn_query_batch(queries, 6) == resident.knn_query_batch(queries, 6)
        assert tiered.range_query_batch(queries, 0.7) == resident.range_query_batch(queries, 0.7)
        resident.close()
        tiered.close()
        tiered.device.assert_no_leaks()

    def test_get_object_reads_host_side_without_faulting(self, points_2d):
        points = points_2d[:300]
        tier = TierConfig(memory_budget_bytes=1024, block_bytes=256)
        index = GTS.build(points, EuclideanDistance(), node_capacity=8, tier=tier)
        hits, misses = index.pager.stats.hits, index.pager.stats.misses
        np.testing.assert_array_equal(index.get_object(5), points[5])
        assert (index.pager.stats.hits, index.pager.stats.misses) == (hits, misses)
        index.close()

    def test_close_releases_pool_and_tree(self, points_2d):
        device = Device(DeviceSpec())
        tier = TierConfig(memory_budget_bytes=2048, block_bytes=256)
        index = GTS.build(
            points_2d[:300], EuclideanDistance(), node_capacity=8, device=device, tier=tier
        )
        assert device.pool_used_bytes("pager") > 0
        index.close()
        device.assert_no_leaks()

    def test_persistence_round_trips_tier_config(self, points_2d, tmp_path):
        points = points_2d[:300]
        tier = TierConfig(
            memory_budget_bytes=2048, block_bytes=256, eviction="pinned-lru", prefetch=True
        )
        index = GTS.build(points, EuclideanDistance(), node_capacity=8, seed=5, tier=tier)
        queries = [points[i] for i in range(8)]
        expected = index.knn_query_batch(queries, 5)
        path = index.save(tmp_path / "tiered.npz")
        loaded = GTS.load(path)
        assert loaded.tier_config == tier
        assert loaded.tiered and loaded.pager is not None
        assert loaded.pager.policy.name == "pinned-lru"
        assert loaded.knn_query_batch(queries, 5) == expected
        index.close()
        loaded.close()

    def test_loading_never_faults_device_blocks(self, points_2d, tmp_path):
        points = points_2d[:300]
        tier = TierConfig(memory_budget_bytes=1024, block_bytes=256)
        index = GTS.build(points, EuclideanDistance(), node_capacity=8, tier=tier)
        index.insert(np.array([0.5, 0.5]))  # populate the cache table
        path = index.save(tmp_path / "cached.npz")
        loaded = GTS.load(path)
        # serialisation and cache repopulation are host-side reads: a fresh
        # load must start with a cold, untouched pager
        assert loaded.pager.stats.misses == 0 and loaded.pager.stats.hits == 0
        assert loaded.pager.resident_bytes == 0
        assert loaded.cache_size == 1
        index.close()
        loaded.close()

    def test_resident_archives_still_load_resident(self, points_2d, tmp_path):
        index = GTS.build(points_2d[:300], EuclideanDistance(), node_capacity=8)
        path = index.save(tmp_path / "resident.npz")
        loaded = GTS.load(path)
        assert loaded.tier_config is None and loaded.pager is None
        index.close()
        loaded.close()


# ---------------------------------------------------------------------------
# Tiered index behind the serving layer and the shard layer
# ---------------------------------------------------------------------------
class TestTieredServing:
    def test_service_over_tiered_index_matches_sequential_replay(self, points_2d):
        from repro.service import GTSService
        from repro.service.experiment import sequential_replay

        points, holdout = points_2d[:400], points_2d[400:]
        nbytes = objects_nbytes(points)
        tier = TierConfig(memory_budget_bytes=nbytes // 4, block_bytes=256)
        tiered = GTS.build(points, EuclideanDistance(), node_capacity=8, seed=9, tier=tier)
        service = GTSService(tiered)
        for i in range(10):
            service.submit("knn", points[i], k=4)
        service.submit("insert", holdout[0])
        service.submit("range", points[3], radius=0.5)
        service.submit("delete", 7)
        service.submit("knn", points[5], k=3)
        responses = service.flush()

        oracle = GTS.build(points, EuclideanDistance(), node_capacity=8, seed=9)
        requests = [r.request for r in responses]
        assert [r.result for r in responses] == sequential_replay(oracle, requests)
        tiered.close()
        oracle.close()

    def test_sharded_tiered_matches_resident_sharded(self, points_2d):
        points = points_2d[:480]
        nbytes = objects_nbytes(points)
        resident = ShardedGTS.build(
            points, EuclideanDistance(), num_shards=3, node_capacity=8, seed=13
        )
        tiered = ShardedGTS.build(
            points, EuclideanDistance(), num_shards=3, node_capacity=8, seed=13,
            tier=TierConfig(memory_budget_bytes=max(512, nbytes // 8), block_bytes=256),
        )
        assert tiered.tiered
        queries = [points[i] for i in range(12)]
        assert tiered.knn_query_batch(queries, 5) == resident.knn_query_batch(queries, 5)
        assert tiered.range_query_batch(queries, 0.6) == resident.range_query_batch(queries, 0.6)
        stats = tiered.pager_stats()
        assert stats["misses"] > 0 and 0.0 <= stats["hit_rate"] <= 1.0
        # the coordinating timeline absorbed the shards' attributed traffic
        assert tiered.device.stats.transfer_seconds.get("pager-h2d", 0.0) > 0
        resident.close()
        tiered.close()

    def test_resident_sharded_reports_no_pager_stats(self, points_2d):
        index = ShardedGTS.build(points_2d[:300], EuclideanDistance(), num_shards=2, node_capacity=8)
        assert index.pager_stats() is None
        index.close()


# ---------------------------------------------------------------------------
# Experiment + CLI
# ---------------------------------------------------------------------------
class TestMemoryTieringExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_memory_tiering(
            cardinality=600,
            num_queries=12,
            k=5,
            cap_fractions=(1.0, 0.25),
            evictions=("lru", "pinned-lru"),
        )

    def test_every_cell_is_exact(self, result):
        assert len(result.rows) == 6  # resident + 2x2 sweep + prefetch ablation
        assert all(row["status"] == "ok" and row["correct"] for row in result.rows)

    def test_tight_caps_pay_attributed_transfer_time(self, result):
        full = next(r for r in result.rows if r["eviction"] == "lru" and r["cap_fraction"] == 1.0)
        tight = next(r for r in result.rows if r["eviction"] == "lru" and r["cap_fraction"] == 0.25)
        assert tight["hit_rate"] < full["hit_rate"]
        assert tight["h2d_seconds"] > full["h2d_seconds"]
        assert tight["knn_slowdown"] > 1.0
        assert tight["pager_peak_bytes"] <= tight["budget_bytes"]
        assert all(row["tree_peak_bytes"] > 0 for row in result.rows)

    def test_registered_in_the_cli(self):
        from repro.cli import EXPERIMENT_REGISTRY

        assert "memory-tiering" in EXPERIMENT_REGISTRY


class TestServeSimTiered:
    def test_serve_sim_with_device_memory_cap_verifies(self, capsys):
        from repro.cli import main

        code = main([
            "serve-sim", "--dataset", "tloc", "--cardinality", "400",
            "--clients", "2", "--rate", "30000", "--duration", "0.001",
            "--device-memory", "0.002", "--block-kb", "0.25",
            "--eviction", "pinned-lru", "--max-batch", "16", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiering" in out
        assert "pager" in out
        assert "hit rate" in out
        assert "identical to sequential replay" in out

    def test_serve_sim_sharded_and_tiered(self, capsys):
        from repro.cli import main

        code = main([
            "serve-sim", "--dataset", "tloc", "--cardinality", "400",
            "--clients", "2", "--rate", "30000", "--duration", "0.001",
            "--shards", "2", "--device-memory", "0.002", "--block-kb", "0.25",
            "--max-batch", "16", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pager" in out
        assert "identical to sequential replay" in out
