"""Tests for the synthetic dataset generators and dataset utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    DEFAULT_CARDINALITIES,
    Dataset,
    available_datasets,
    generate_color,
    generate_dna,
    generate_tloc,
    generate_vector,
    generate_words,
    get_dataset,
    make_duplicates,
)
from repro.exceptions import DatasetError
from repro.metrics import AngularDistance, EditDistance, EuclideanDistance, ManhattanDistance


class TestGenerators:
    def test_all_five_paper_datasets_registered(self):
        assert set(available_datasets()) == {"words", "tloc", "vector", "dna", "color"}

    def test_words_properties(self):
        ds = generate_words(300)
        assert ds.cardinality == 300
        assert isinstance(ds.metric, EditDistance)
        assert all(isinstance(w, str) and 1 <= len(w) <= 34 for w in ds.objects)
        assert ds.paper_cardinality == 611_756

    def test_tloc_properties(self):
        ds = generate_tloc(500)
        assert isinstance(ds.metric, EuclideanDistance)
        assert np.asarray(ds.objects).shape == (500, 2)

    def test_vector_properties(self):
        ds = generate_vector(200)
        assert isinstance(ds.metric, AngularDistance)
        arr = np.asarray(ds.objects)
        assert arr.shape == (200, 300)
        np.testing.assert_allclose(np.linalg.norm(arr, axis=1), 1.0, atol=1e-9)

    def test_dna_properties(self):
        ds = generate_dna(150)
        assert isinstance(ds.metric, EditDistance)
        assert all(set(read) <= set("ACGT") for read in ds.objects)
        lengths = [len(r) for r in ds.objects]
        assert 90 <= np.mean(lengths) <= 120

    def test_color_properties(self):
        ds = generate_color(250)
        assert isinstance(ds.metric, ManhattanDistance)
        arr = np.asarray(ds.objects)
        assert arr.shape == (250, 282)
        assert np.all(arr >= 0)

    def test_default_cardinalities_preserve_paper_ordering(self):
        assert DEFAULT_CARDINALITIES["tloc"] > DEFAULT_CARDINALITIES["color"]
        assert DEFAULT_CARDINALITIES["color"] > DEFAULT_CARDINALITIES["vector"]

    def test_generators_deterministic(self):
        a = generate_words(100, seed=7)
        b = generate_words(100, seed=7)
        assert list(a.objects) == list(b.objects)
        c = generate_tloc(100, seed=7)
        d = generate_tloc(100, seed=7)
        np.testing.assert_array_equal(np.asarray(c.objects), np.asarray(d.objects))

    def test_different_seeds_differ(self):
        a = generate_words(100, seed=1)
        b = generate_words(100, seed=2)
        assert list(a.objects) != list(b.objects)

    def test_cardinality_validation(self):
        with pytest.raises(DatasetError):
            generate_words(1)

    def test_get_dataset_by_name(self):
        ds = get_dataset("tloc", cardinality=123, seed=5)
        assert ds.cardinality == 123

    def test_get_dataset_unknown_name(self):
        with pytest.raises(DatasetError):
            get_dataset("unknown")

    def test_registry_factories_callable(self):
        for name, factory in DATASET_REGISTRY.items():
            ds = factory(cardinality=64)
            assert ds.cardinality == 64, name


class TestDatasetUtilities:
    def test_subsample_fraction(self):
        ds = generate_tloc(400)
        sub = ds.subsample(0.25)
        assert sub.cardinality == 100
        assert sub.metric.name == ds.metric.name

    def test_subsample_of_string_dataset(self):
        ds = generate_words(200)
        sub = ds.subsample(0.5)
        assert sub.cardinality == 100
        assert set(sub.objects) <= set(ds.objects)

    def test_subsample_invalid_fraction(self):
        ds = generate_tloc(100)
        with pytest.raises(DatasetError):
            ds.subsample(0.0)
        with pytest.raises(DatasetError):
            ds.subsample(1.5)

    def test_sample_queries_count_and_type(self):
        ds = generate_words(200)
        queries = ds.sample_queries(10)
        assert len(queries) == 10
        assert all(isinstance(q, str) for q in queries)

    def test_sample_queries_perturbation_optional(self):
        ds = generate_tloc(200)
        exact = ds.sample_queries(5, perturb=False)
        data = np.asarray(ds.objects)
        for q in exact:
            assert any(np.allclose(q, row) for row in data)

    def test_sample_queries_deterministic_given_seed(self):
        ds = generate_tloc(200)
        a = ds.sample_queries(5, seed=3)
        b = ds.sample_queries(5, seed=3)
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_make_duplicates_keeps_cardinality(self):
        ds = generate_tloc(300)
        dup = make_duplicates(ds, 0.2)
        assert dup.cardinality == 300
        arr = np.asarray(dup.objects)
        unique_rows = np.unique(arr, axis=0)
        assert len(unique_rows) <= 0.25 * 300

    def test_make_duplicates_full_fraction_is_identityish(self):
        ds = generate_tloc(100)
        dup = make_duplicates(ds, 1.0)
        assert dup.cardinality == 100

    def test_make_duplicates_invalid_fraction(self):
        ds = generate_tloc(100)
        with pytest.raises(DatasetError):
            make_duplicates(ds, 0.0)

    def test_make_duplicates_strings(self):
        ds = generate_words(200)
        dup = make_duplicates(ds, 0.3)
        assert dup.cardinality == 200
        assert len(set(dup.objects)) <= len(set(ds.objects))

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(name="x", objects=[], metric=EuclideanDistance(), seed=0)

    def test_len_and_repr(self):
        ds = generate_tloc(50)
        assert len(ds) == 50
        assert "tloc" in repr(ds)


class TestDatasetStructure:
    def test_tloc_is_clustered(self):
        """Clustered data: the nearest-neighbour distance is far below the mean distance."""
        ds = generate_tloc(1000)
        arr = np.asarray(ds.objects)
        rng = np.random.default_rng(0)
        idx = rng.choice(1000, size=50, replace=False)
        sample = arr[idx]
        d = np.sqrt(((sample[:, None, :] - arr[None, :500, :]) ** 2).sum(-1))
        np.fill_diagonal(d[:, :50], np.inf)
        assert np.median(d.min(axis=1)) < 0.1 * np.median(d)

    def test_dna_reads_cluster_around_references(self):
        ds = generate_dna(120)
        metric = ds.metric
        # a read should have at least one other read within a small edit distance
        d = metric.pairwise(ds.objects[0], ds.objects[1:60])
        assert d.min() < 25

    def test_color_distances_have_spread(self):
        """Pivot pruning needs a non-degenerate distance distribution."""
        ds = generate_color(400)
        arr = np.asarray(ds.objects)
        d = np.abs(arr[:50, None, :] - arr[None, 50:150, :]).sum(-1)
        assert d.std() > 0.05 * d.mean()
