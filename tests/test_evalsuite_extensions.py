"""Tests for the extension experiments (repro.evalsuite.extensions)."""

from __future__ import annotations

import pytest

from repro.evalsuite import (
    experiment_approximate_tradeoff,
    experiment_extended_baselines,
)
from repro.evalsuite.runner import STATUS_OK


class TestExtendedBaselinesExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_extended_baselines(
            datasets=("tloc",),
            methods=("MVPT", "LAESA", "LC", "GTS"),
            num_queries=6,
            cardinalities={"tloc": 350},
        )

    def test_every_method_reports_a_row(self, result):
        methods = {row["method"] for row in result.rows}
        assert methods == {"MVPT", "LAESA", "LC", "GTS"}

    def test_all_rows_ok_on_small_workload(self, result):
        assert all(row["status"] == STATUS_OK for row in result.rows)

    def test_every_index_prunes_the_scan(self, result):
        # the throughput ordering at full scale is the benchmark's job; at this
        # tiny cardinality the unit test only checks that no exact index does
        # materially more distance work than a per-query linear scan (the
        # pivot/table overhead allows a small constant on top of n per query)
        for row in result.rows:
            assert 0 < row["mknn_distances"] < 2 * 6 * 350, row["method"]

    def test_rows_carry_all_measurements(self, result):
        for row in result.rows:
            for key in ("build_time_s", "storage_mb", "mrq_throughput", "mknn_throughput", "mknn_distances"):
                assert key in row, f"missing {key} in {row['method']}"
                assert row[key] >= 0

    def test_text_rendering(self, result):
        text = result.to_text()
        assert "extended-baselines" in text
        assert "GTS" in text


class TestApproximateTradeoffExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_approximate_tradeoff(
            dataset_name="tloc",
            beam_widths=(1, 512),
            leaf_budgets=(1, 4),
            num_queries=8,
            num_training_queries=8,
            node_capacity=8,
            cardinality=400,
        )

    def test_exact_reference_row(self, result):
        exact = result.filter(strategy="exact")
        assert len(exact) == 1
        assert exact[0]["recall"] == 1.0

    def test_beam_rows_present_and_bounded(self, result):
        beam = {row["parameter"]: row for row in result.filter(strategy="beam")}
        assert set(beam) == {1, 512}
        for row in beam.values():
            assert 0.0 <= row["recall"] <= 1.0

    def test_unbounded_beam_is_exact(self, result):
        beam = {row["parameter"]: row for row in result.filter(strategy="beam")}
        assert beam[512]["recall"] == pytest.approx(1.0)

    def test_narrow_beam_cheaper_than_exact(self, result):
        exact = result.filter(strategy="exact")[0]
        beam = {row["parameter"]: row for row in result.filter(strategy="beam")}
        assert beam[1]["distances"] < exact["distances"]

    def test_learned_rows_monotone_in_budget(self, result):
        learned = {row["parameter"]: row for row in result.filter(strategy="learned")}
        assert set(learned) == {1, 4}
        assert learned[4]["recall"] >= learned[1]["recall"] - 1e-9
        assert learned[4]["distances"] >= learned[1]["distances"]

    def test_throughputs_positive(self, result):
        for row in result.rows:
            assert row["throughput"] > 0
