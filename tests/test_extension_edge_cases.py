"""Failure-injection and edge-case tests for the extension subsystems.

These tests complement the per-module suites: they exercise the corners a
downstream user hits first — tiny datasets that collapse the tree to a single
leaf, memory-starved devices, indexes whose content changed after an
approximate helper was attached, and CLI / persistence misuse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EuclideanDistance
from repro.approx import ApproximateGTS, LearnedLeafRouter
from repro.baselines import GNAT, LAESA, ExtremePivotsTable, ListOfClusters, MTree
from repro.core import load_index
from repro.exceptions import DeviceMemoryError, MetricError, QueryError
from repro.gpusim import Device, DeviceSpec
from repro.metrics import HausdorffDistance, JaccardDistance


# --------------------------------------------------------------------------
# Tiny datasets: the tree degenerates to a single (over-full) root leaf
# --------------------------------------------------------------------------
class TestTinyDatasets:
    @pytest.fixture
    def tiny_index(self) -> GTS:
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        return GTS.build(points, EuclideanDistance(), node_capacity=20)

    def test_tiny_tree_is_a_single_leaf(self, tiny_index):
        assert tiny_index.height == 0
        assert len(tiny_index.tree.leaves()) == 1

    def test_approximate_beam_on_single_leaf_is_exact(self, tiny_index):
        approx = ApproximateGTS(tiny_index, beam_width=1)
        assert approx.knn_query([0.0, 0.0], 2) == tiny_index.knn_query([0.0, 0.0], 2)

    def test_learned_router_on_single_leaf_is_exact(self, tiny_index):
        router = LearnedLeafRouter(tiny_index, leaf_budget=1, training_queries=[[0.5, 0.5]])
        assert router.knn_query([0.0, 0.0], 2) == tiny_index.knn_query([0.0, 0.0], 2)

    def test_k_larger_than_dataset(self, tiny_index):
        approx = ApproximateGTS(tiny_index, beam_width=4)
        assert len(approx.knn_query([0.0, 0.0], 50)) == 3

    @pytest.mark.parametrize("cls", [LAESA, ListOfClusters, ExtremePivotsTable, MTree, GNAT])
    def test_extended_baselines_on_two_objects(self, cls):
        index = cls(EuclideanDistance())
        index.build(np.array([[0.0, 0.0], [5.0, 5.0]]))
        got = index.knn_query([0.1, 0.1], 1)
        assert got[0][0] == 0
        assert {o for o, _ in index.range_query([0.0, 0.0], 100.0)} == {0, 1}


# --------------------------------------------------------------------------
# Memory pressure on the simulated device
# --------------------------------------------------------------------------
class TestMemoryPressure:
    def test_loading_into_too_small_device_raises(self, points_2d, tmp_path):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8)
        path = index.save(tmp_path / "index.npz")
        starved = Device(DeviceSpec(memory_bytes=1024))
        with pytest.raises(DeviceMemoryError):
            load_index(path, device=starved)

    def test_approximate_search_works_on_small_device(self, points_2d):
        # the beam verifies only a handful of leaves, so a small result buffer
        # is enough even when the exact search would need grouping
        device = Device(DeviceSpec(memory_bytes=4 * 1024 * 1024))
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8, device=device)
        approx = ApproximateGTS(index, beam_width=2)
        queries = [points_2d[i] for i in range(16)]
        results = approx.knn_query_batch(queries, 5)
        assert all(len(r) == 5 for r in results)


# --------------------------------------------------------------------------
# Content changes after attaching approximate helpers
# --------------------------------------------------------------------------
class TestApproxAfterUpdates:
    def test_beam_sees_tombstones_immediately(self, points_2d):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8)
        approx = ApproximateGTS(index, beam_width=10_000)
        target = approx.knn_query(points_2d[5], 1)[0][0]
        index.delete(target)
        assert target not in {o for o, _ in approx.knn_query(points_2d[5], 3)}

    def test_router_over_rebuilt_index_must_be_recreated(self, points_2d):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8)
        router = LearnedLeafRouter(index, leaf_budget=2, training_queries=points_2d[:8])
        index.batch_update(inserts=[np.array([1000.0, 1000.0])])
        fresh = LearnedLeafRouter(index, leaf_budget=2, training_queries=points_2d[:8])
        got = fresh.knn_query(np.array([1000.0, 1000.0]), 1)
        assert got[0][1] == pytest.approx(0.0, abs=1e-9)
        # the stale router still answers (its leaves reference the old tree is
        # not guaranteed), so the supported contract is: recreate after rebuilds
        assert router.leaf_budget == 2


# --------------------------------------------------------------------------
# Metric misuse
# --------------------------------------------------------------------------
class TestMetricMisuse:
    def test_jaccard_rejects_plain_numbers(self):
        with pytest.raises((MetricError, TypeError)):
            JaccardDistance().validate_objects([1, 2, 3])

    def test_hausdorff_rejects_empty_member_set(self):
        with pytest.raises(MetricError):
            HausdorffDistance().validate_objects([np.zeros((0, 2))])

    def test_unknown_prune_mode_rejected(self, points_2d):
        with pytest.raises(QueryError):
            GTS.build(points_2d[:10], EuclideanDistance(), prune_mode="sideways")


# --------------------------------------------------------------------------
# Persistence corners
# --------------------------------------------------------------------------
class TestPersistenceCorners:
    def test_round_trip_after_many_updates_and_rebuild(self, points_2d, tmp_path):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8,
                          cache_capacity_bytes=256)
        rng = np.random.default_rng(0)
        for i in range(40):
            index.insert(rng.normal(scale=20.0, size=2))
            if i % 7 == 0:
                index.delete(i)
        assert index.rebuild_count > 0
        path = index.save(tmp_path / "churned.npz")
        loaded = GTS.load(path)
        queries = [points_2d[3], np.array([0.0, 0.0])]
        assert loaded.knn_query_batch(queries, 6) == index.knn_query_batch(queries, 6)

    def test_round_trip_of_jaccard_index(self, tmp_path, rng):
        objects = [frozenset(rng.choice(20, size=4, replace=False).tolist()) for _ in range(80)]
        index = GTS.build(objects, JaccardDistance(), node_capacity=6)
        path = index.save(tmp_path / "tags.npz")
        loaded = GTS.load(path)  # jaccard is a registered metric: no explicit metric needed
        assert loaded.knn_query(objects[0], 3) == index.knn_query(objects[0], 3)
