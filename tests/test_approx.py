"""Tests for the approximate-search extension (repro.approx)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance
from repro.approx import (
    ApproximateGTS,
    LearnedLeafRouter,
    knn_recall,
    mean_knn_recall,
    mean_range_recall,
    range_recall,
)
from repro.exceptions import QueryError
from tests.conftest import brute_force_knn, brute_force_range


def _ids(results):
    return {o for o, _ in results}


@pytest.fixture
def built_index(points_2d) -> GTS:
    return GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=3)


@pytest.fixture
def word_index(word_list) -> GTS:
    return GTS.build(word_list, EditDistance(), node_capacity=8, seed=3)


class TestApproximateGTS:
    def test_invalid_beam_width(self, built_index):
        with pytest.raises(QueryError):
            ApproximateGTS(built_index, beam_width=0)

    def test_knn_returns_true_distances(self, built_index, points_2d, l2_metric):
        approx = ApproximateGTS(built_index, beam_width=2)
        query = points_2d[7] + 0.01
        for obj_id, dist in approx.knn_query(query, 5):
            assert dist == pytest.approx(l2_metric.distance(query, points_2d[obj_id]))

    def test_knn_result_size(self, built_index, points_2d):
        approx = ApproximateGTS(built_index, beam_width=2)
        got = approx.knn_query(points_2d[0], 5)
        assert len(got) == 5

    def test_wide_beam_matches_exact(self, built_index, points_2d, l2_metric):
        # a beam at least as wide as the number of leaves cannot drop anything
        wide = ApproximateGTS(built_index, beam_width=10_000)
        query = points_2d[13] + 0.02
        got = wide.knn_query(query, 8)
        expected = brute_force_knn(points_2d, l2_metric, query, 8)
        assert sorted(d for _, d in got) == pytest.approx(sorted(d for _, d in expected))

    def test_range_results_are_subset_of_exact(self, built_index, points_2d, l2_metric):
        approx = ApproximateGTS(built_index, beam_width=2)
        query = points_2d[21] + 0.05
        got = approx.range_query(query, 1.0)
        exact = brute_force_range(points_2d, l2_metric, query, 1.0)
        assert _ids(got) <= _ids(exact)
        for obj_id, dist in got:
            assert dist <= 1.0

    def test_wide_beam_range_matches_exact(self, built_index, points_2d, l2_metric):
        wide = ApproximateGTS(built_index, beam_width=10_000)
        query = points_2d[33] + 0.02
        got = wide.range_query(query, 0.8)
        exact = brute_force_range(points_2d, l2_metric, query, 0.8)
        assert _ids(got) == _ids(exact)

    def test_recall_improves_with_beam_width(self, built_index, points_2d):
        queries = [points_2d[i] + 0.01 for i in (5, 50, 150, 250)]
        exact = built_index.knn_query_batch(queries, 10)
        recalls = []
        for width in (1, 4, 64):
            approx = ApproximateGTS(built_index, beam_width=width)
            got = approx.knn_query_batch(queries, 10)
            recalls.append(mean_knn_recall(got, exact))
        assert recalls[0] <= recalls[-1] + 1e-9
        assert recalls[-1] == pytest.approx(1.0)

    def test_fewer_distances_than_exact(self, points_2d):
        metric = EuclideanDistance()
        index = GTS.build(points_2d, metric, node_capacity=8, seed=3)
        queries = [points_2d[i] + 0.3 for i in (10, 20, 30)]
        metric.reset_counter()
        index.knn_query_batch(queries, 10)
        exact_pairs = metric.pair_count
        metric.reset_counter()
        ApproximateGTS(index, beam_width=1).knn_query_batch(queries, 10)
        approx_pairs = metric.pair_count
        assert approx_pairs < exact_pairs

    def test_batch_invalid_k(self, built_index, points_2d):
        approx = ApproximateGTS(built_index, beam_width=2)
        with pytest.raises(QueryError):
            approx.knn_query_batch([points_2d[0]], 0)

    def test_negative_radius_rejected(self, built_index, points_2d):
        approx = ApproximateGTS(built_index, beam_width=2)
        with pytest.raises(QueryError):
            approx.range_query(points_2d[0], -1.0)

    def test_string_metric_space(self, word_index, word_list):
        approx = ApproximateGTS(word_index, beam_width=4)
        got = approx.knn_query("metric", 3)
        metric = EditDistance()
        for obj_id, dist in got:
            assert dist == metric.distance("metric", word_list[obj_id])

    def test_respects_deletions(self, points_2d):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=3)
        index.delete(0)
        approx = ApproximateGTS(index, beam_width=10_000)
        got = approx.knn_query(points_2d[0], 5)
        assert 0 not in _ids(got)

    def test_charges_simulated_device_time(self, built_index, points_2d):
        before = built_index.device.stats.sim_time
        ApproximateGTS(built_index, beam_width=2).knn_query(points_2d[0], 3)
        assert built_index.device.stats.sim_time > before

    def test_cost_ratio_estimate_bounds(self, built_index):
        narrow = ApproximateGTS(built_index, beam_width=1)
        wide = ApproximateGTS(built_index, beam_width=10_000)
        assert 0.0 < narrow.cost_ratio_estimate() <= 1.0
        assert wide.cost_ratio_estimate() == pytest.approx(1.0)

    def test_empty_batch(self, built_index):
        approx = ApproximateGTS(built_index, beam_width=2)
        assert approx.knn_query_batch([], 3) == []
        assert approx.range_query_batch([], 1.0) == []


class TestLearnedLeafRouter:
    def test_invalid_budget(self, built_index):
        with pytest.raises(QueryError):
            LearnedLeafRouter(built_index, leaf_budget=0)

    def test_unfitted_query_rejected(self, built_index, points_2d):
        router = LearnedLeafRouter(built_index, leaf_budget=2)
        assert not router.is_fitted
        with pytest.raises(QueryError):
            router.knn_query(points_2d[0], 3)

    def test_fit_on_empty_training_set_rejected(self, built_index):
        router = LearnedLeafRouter(built_index, leaf_budget=2)
        with pytest.raises(QueryError):
            router.fit([])

    def test_returns_true_distances(self, built_index, points_2d, l2_metric, rng):
        train = points_2d[rng.choice(len(points_2d), size=16, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=3, training_queries=train)
        query = points_2d[9] + 0.01
        for obj_id, dist in router.knn_query(query, 4):
            assert dist == pytest.approx(l2_metric.distance(query, points_2d[obj_id]))

    def test_full_budget_matches_exact(self, built_index, points_2d, l2_metric, rng):
        num_leaves = len(built_index.tree.leaves())
        train = points_2d[rng.choice(len(points_2d), size=8, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=num_leaves, training_queries=train)
        query = points_2d[40] + 0.02
        got = router.knn_query(query, 6)
        expected = brute_force_knn(points_2d, l2_metric, query, 6)
        assert sorted(d for _, d in got) == pytest.approx(sorted(d for _, d in expected))

    def test_rank_leaves_returns_all_leaves(self, built_index, points_2d, rng):
        train = points_2d[rng.choice(len(points_2d), size=8, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=2, training_queries=train)
        ranked = router.rank_leaves(points_2d[0])
        assert sorted(ranked.tolist()) == sorted(built_index.tree.leaves().tolist())

    def test_range_results_are_subset_of_exact(self, built_index, points_2d, l2_metric, rng):
        train = points_2d[rng.choice(len(points_2d), size=8, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=2, training_queries=train)
        query = points_2d[60] + 0.03
        got = router.range_query(query, 1.0)
        exact = brute_force_range(points_2d, l2_metric, query, 1.0)
        assert _ids(got) <= _ids(exact)

    def test_reasonable_recall_on_clustered_data(self, built_index, points_2d, rng):
        """Routing by learned pivot features should beat random leaf choice."""
        train = points_2d[rng.choice(len(points_2d), size=32, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=4, training_queries=train)
        queries = [points_2d[i] + 0.01 for i in (3, 33, 111, 222)]
        exact = built_index.knn_query_batch(queries, 5)
        got = router.knn_query_batch(queries, 5)
        assert mean_knn_recall(got, exact) >= 0.5

    def test_batch_wrappers(self, built_index, points_2d, rng):
        train = points_2d[rng.choice(len(points_2d), size=8, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=2, training_queries=train)
        queries = [points_2d[0], points_2d[1]]
        assert len(router.knn_query_batch(queries, 3)) == 2
        assert len(router.range_query_batch(queries, 0.5)) == 2

    def test_negative_radius_rejected(self, built_index, points_2d, rng):
        train = points_2d[rng.choice(len(points_2d), size=8, replace=False)]
        router = LearnedLeafRouter(built_index, leaf_budget=2, training_queries=train)
        with pytest.raises(QueryError):
            router.range_query(points_2d[0], -0.5)


class TestRecallUtilities:
    def test_perfect_recall(self):
        exact = [(1, 0.1), (2, 0.2), (3, 0.3)]
        assert knn_recall(exact, exact) == 1.0
        assert range_recall(exact, exact) == 1.0

    def test_partial_recall(self):
        exact = [(1, 0.1), (2, 0.2), (3, 0.3), (4, 0.4)]
        approx = [(1, 0.1), (3, 0.3)]
        assert knn_recall(approx, exact) == pytest.approx(0.5)
        assert range_recall(approx, exact) == pytest.approx(0.5)

    def test_empty_exact_answer(self):
        assert knn_recall([], []) == 1.0
        assert range_recall([(1, 0.5)], []) == 1.0

    def test_tie_tolerance(self):
        # a different id at exactly the k-th distance is an equally valid answer
        exact = [(1, 0.1), (2, 0.5)]
        approx = [(1, 0.1), (9, 0.5)]
        assert knn_recall(approx, exact) == 1.0

    def test_mean_recall_batch_mismatch(self):
        with pytest.raises(QueryError):
            mean_knn_recall([[(1, 0.1)]], [])
        with pytest.raises(QueryError):
            mean_range_recall([], [[(1, 0.1)]])

    def test_mean_recall_values(self):
        exact = [[(1, 0.1), (2, 0.2)], [(3, 0.3), (4, 0.4)]]
        approx = [[(1, 0.1), (2, 0.2)], [(3, 0.3)]]
        assert mean_knn_recall(approx, exact) == pytest.approx(0.75)
        assert mean_range_recall(approx, exact) == pytest.approx(0.75)

    def test_empty_batches(self):
        assert mean_knn_recall([], []) == 1.0
        assert mean_range_recall([], []) == 1.0
