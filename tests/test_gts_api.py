"""Tests for the public GTS facade: lifecycle, queries, errors and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance
from repro.exceptions import IndexError_, QueryError, UpdateError
from repro.gpusim import Device, DeviceSpec
from tests.conftest import brute_force_knn, brute_force_range


@pytest.fixture
def index(points_2d, l2_metric):
    return GTS.build(points_2d, l2_metric, node_capacity=8)


class TestLifecycle:
    def test_build_classmethod(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric)
        assert index.num_objects == len(points_2d)
        assert index.height >= 1

    def test_unbuilt_index_rejects_queries(self, l2_metric):
        index = GTS(l2_metric)
        with pytest.raises(IndexError_):
            index.range_query([0.0, 0.0], 1.0)

    def test_empty_bulk_load_rejected(self, l2_metric):
        index = GTS(l2_metric)
        with pytest.raises(IndexError_):
            index.bulk_load([])

    def test_invalid_node_capacity_rejected(self, l2_metric):
        with pytest.raises(IndexError_):
            GTS(l2_metric, node_capacity=1)

    def test_storage_and_build_result_exposed(self, index):
        assert index.storage_bytes > 0
        assert index.build_result.sim_time > 0
        assert index.build_result.distance_computations > 0

    def test_tree_invariants_after_build(self, index):
        index.tree.check_invariants()

    def test_close_releases_device_memory(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        index = GTS.build(points_2d, l2_metric, device=device)
        assert device.used_bytes > 0
        index.close()
        assert device.used_bytes == 0

    def test_len_and_repr(self, index, points_2d):
        assert len(index) == len(points_2d)
        assert "GTS" in repr(index)

    def test_get_object_roundtrip(self, index, points_2d):
        np.testing.assert_array_equal(index.get_object(5), points_2d[5])
        with pytest.raises(IndexError_):
            index.get_object(10_000)

    def test_string_dataset(self, word_list):
        index = GTS.build(word_list, EditDistance(), node_capacity=4)
        hits = index.range_query("metric", 1)
        assert all(isinstance(o, int) for o, _ in hits)


class TestQueries:
    def test_single_range_query_matches_brute_force(self, index, points_2d, l2_metric):
        got = index.range_query(points_2d[0], 1.0)
        expected = brute_force_range(points_2d, l2_metric, points_2d[0], 1.0)
        assert {o for o, _ in got} == {o for o, _ in expected}

    def test_batch_range_query(self, index, points_2d, l2_metric):
        queries = [points_2d[i] for i in range(5)]
        got = index.range_query_batch(queries, 0.8)
        assert len(got) == 5
        for qi, q in enumerate(queries):
            expected = brute_force_range(points_2d, l2_metric, q, 0.8)
            assert {o for o, _ in got[qi]} == {o for o, _ in expected}

    def test_single_knn_matches_brute_force(self, index, points_2d, l2_metric):
        got = index.knn_query(points_2d[3], 7)
        expected = brute_force_knn(points_2d, l2_metric, points_2d[3], 7)
        np.testing.assert_allclose(
            sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
        )

    def test_batch_knn_query_lengths(self, index, points_2d):
        got = index.knn_query_batch([points_2d[0], points_2d[1]], 3)
        assert [len(r) for r in got] == [3, 3]

    def test_invalid_k_rejected(self, index, points_2d):
        with pytest.raises(QueryError):
            index.knn_query(points_2d[0], 0)

    def test_prune_mode_option(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, prune_mode="one-sided")
        got = index.range_query(points_2d[0], 0.5)
        expected = brute_force_range(points_2d, l2_metric, points_2d[0], 0.5)
        assert {o for o, _ in got} == {o for o, _ in expected}

    def test_recommend_node_capacity_returns_candidate(self, index):
        nc = index.recommend_node_capacity(radius=0.5, candidates=(10, 20, 40))
        assert nc in (10, 20, 40)

    def test_distance_distribution_summary(self, index):
        dist = index.distance_distribution(sample_size=64)
        assert dist.mean > 0 and dist.std >= 0 and dist.max >= dist.mean


class TestStreamingUpdates:
    def test_insert_visible_in_queries(self, index):
        new = np.array([123.0, 456.0])
        obj_id = index.insert(new)
        hits = index.range_query(new, 0.1)
        assert (obj_id, 0.0) in hits

    def test_insert_goes_to_cache_first(self, index):
        before = index.num_indexed
        index.insert(np.array([1.0, 1.0]))
        assert index.cache_size == 1
        assert index.num_indexed == before

    def test_delete_hides_object(self, index, points_2d):
        index.delete(0)
        hits = index.range_query(points_2d[0], 0.001)
        assert 0 not in {o for o, _ in hits}
        assert not index.is_live(0)

    def test_delete_cached_object(self, index):
        obj_id = index.insert(np.array([9.0, 9.0]))
        index.delete(obj_id)
        assert index.cache_size == 0
        assert 0 not in {o for o, _ in index.range_query(np.array([9.0, 9.0]), 0.01)}

    def test_double_delete_rejected(self, index):
        index.delete(1)
        with pytest.raises(UpdateError):
            index.delete(1)

    def test_delete_unknown_id_rejected(self, index):
        with pytest.raises(UpdateError):
            index.delete(999_999)

    def test_update_replaces_object(self, index, points_2d):
        new_id = index.update(2, np.array([50.0, 50.0]))
        assert not index.is_live(2)
        hits = index.range_query(np.array([50.0, 50.0]), 0.01)
        assert new_id in {o for o, _ in hits}

    def test_num_objects_tracks_updates(self, index, points_2d):
        n = len(points_2d)
        index.insert(np.array([0.0, 0.0]))
        assert index.num_objects == n + 1
        index.delete(0)
        assert index.num_objects == n

    def test_cache_overflow_triggers_rebuild(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=64)
        inserted = []
        for i in range(10):
            inserted.append(index.insert(np.array([100.0 + i, 100.0])))
        assert index.rebuild_count >= 1
        # after the rebuild the objects are in the tree, not the cache
        assert index.cache_size < 10
        hits = index.range_query(np.array([100.0, 100.0]), 0.01)
        assert inserted[0] in {o for o, _ in hits}

    def test_queries_merge_cache_and_tree(self, index, points_2d, l2_metric):
        new = points_2d[0] + 0.001
        new_id = index.insert(new)
        got = index.knn_query(points_2d[0], 3)
        ids = {o for o, _ in got}
        assert new_id in ids

    def test_knn_after_many_deletes_still_exact(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, node_capacity=8)
        for victim in range(0, 50):
            index.delete(victim)
        remaining = points_2d[50:]
        got = index.knn_query(points_2d[60], 5)
        expected = brute_force_knn(remaining, l2_metric, points_2d[60], 5)
        np.testing.assert_allclose(
            sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
        )


class TestBatchUpdatesAndRebuild:
    def test_manual_rebuild_clears_tombstones_and_cache(self, index):
        index.delete(0)
        index.insert(np.array([77.0, 77.0]))
        index.rebuild()
        assert index.cache_size == 0
        assert index.num_indexed == index.num_objects

    def test_batch_update_insert_and_delete(self, index, points_2d):
        inserts = [np.array([200.0 + i, 0.0]) for i in range(5)]
        index.batch_update(inserts=inserts, deletes=[0, 1, 2])
        assert index.num_objects == len(points_2d) - 3 + 5
        hits = index.range_query(np.array([200.0, 0.0]), 0.01)
        assert len(hits) == 1

    def test_batch_update_unknown_delete_rejected(self, index):
        with pytest.raises(UpdateError):
            index.batch_update(deletes=[123_456])

    def test_rebuild_count_increments(self, index):
        assert index.rebuild_count == 0
        index.rebuild()
        assert index.rebuild_count == 1

    def test_queries_exact_after_batch_update(self, index, points_2d, l2_metric):
        index.batch_update(deletes=list(range(10)))
        remaining = points_2d[10:]
        got = index.range_query(points_2d[20], 1.0)
        expected = brute_force_range(remaining, l2_metric, points_2d[20], 1.0)
        # ids are preserved, so shift the expected ids by the deleted prefix
        expected_ids = {o + 10 for o, _ in expected}
        assert {o for o, _ in got} == expected_ids

    def test_device_memory_stable_across_rebuilds(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        index = GTS.build(points_2d, l2_metric, device=device)
        used_after_build = device.used_bytes
        for _ in range(3):
            index.rebuild()
        assert device.used_bytes == pytest.approx(used_after_build, rel=0.05)


class TestUpdateAccounting:
    """Failed updates must not advance the simulated clock (PR 2 fixes)."""

    def test_failed_delete_is_stats_neutral(self, index):
        before = index.device.stats.copy()
        with pytest.raises(UpdateError):
            index.delete(10_000)
        with pytest.raises(UpdateError):
            index.delete(-3)
        after = index.device.stats
        assert after.sim_time == before.sim_time
        assert after.kernel_launches == before.kernel_launches
        assert after.total_ops == before.total_ops

    def test_double_delete_is_stats_neutral(self, index):
        index.delete(4)
        before = index.device.stats.copy()
        with pytest.raises(UpdateError):
            index.delete(4)
        after = index.device.stats
        assert after.sim_time == before.sim_time
        assert after.kernel_launches == before.kernel_launches

    def test_successful_delete_still_charges_one_kernel(self, index):
        before = index.device.stats.copy()
        index.delete(4)
        after = index.device.stats
        assert after.kernel_launches == before.kernel_launches + 1
        assert after.sim_time > before.sim_time

    def test_batch_update_rejects_tombstoned_ids(self, index):
        index.delete(6)
        with pytest.raises(UpdateError):
            index.batch_update(deletes=[6])
        # a mixed batch with one bad id is rejected atomically
        before_rebuilds = index.rebuild_count
        with pytest.raises(UpdateError):
            index.batch_update(deletes=[7, 6])
        assert index.rebuild_count == before_rebuilds
        assert index.is_live(7)

    def test_get_object_covers_cached_and_tombstoned_ids(self, index, points_2d):
        new_id = index.insert(np.array([321.0, -321.0]))
        np.testing.assert_array_equal(index.get_object(new_id), [321.0, -321.0])
        index.delete(8)
        # tombstoned objects stay addressable until a rebuild drops them
        np.testing.assert_array_equal(index.get_object(8), points_2d[8])
        with pytest.raises(IndexError_):
            index.get_object(10_000_000)


class TestQueryParamValidation:
    """Malformed radii/k raise QueryError on every path (PR 2 fixes)."""

    def test_wrong_length_radii_rejected(self, index, points_2d):
        queries = [points_2d[0], points_2d[1], points_2d[2]]
        with pytest.raises(QueryError, match="radii"):
            index.range_query_batch(queries, [0.5, 0.5])
        with pytest.raises(QueryError, match=r"\(3,\)"):
            index.range_query_batch(queries, [0.5] * 4)

    def test_wrong_length_radii_rejected_with_cached_entries(self, index, points_2d):
        # the cache-empty fast path used to be the only validated one
        index.insert(np.array([5.0, 5.0]))
        assert index.cache_size > 0
        with pytest.raises(QueryError, match="radii"):
            index.range_query_batch([points_2d[0], points_2d[1]], [0.5, 0.5, 0.5])

    def test_non_numeric_radii_rejected(self, index, points_2d):
        with pytest.raises(QueryError, match="radii"):
            index.range_query_batch([points_2d[0]], "wide")

    def test_wrong_length_k_rejected(self, index, points_2d):
        queries = [points_2d[0], points_2d[1], points_2d[2]]
        with pytest.raises(QueryError, match="k must"):
            index.knn_query_batch(queries, [3, 3])

    def test_non_numeric_k_rejected(self, index, points_2d):
        with pytest.raises(QueryError, match="k must"):
            index.knn_query_batch([points_2d[0]], "five")

    def test_scalar_and_per_query_params_still_accepted(self, index, points_2d):
        queries = [points_2d[0], points_2d[1]]
        assert len(index.range_query_batch(queries, 0.5)) == 2
        assert len(index.range_query_batch(queries, [0.5, 0.7])) == 2
        assert len(index.knn_query_batch(queries, 3)) == 2
        assert len(index.knn_query_batch(queries, [3, 5])) == 2
