"""Unit and property tests for the tree storage, distance encoding and pivots."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import decode_distances, encode_distances, segment_ids_from_offsets
from repro.core.nodes import (
    NO_PIVOT,
    TreeStructure,
    level_size,
    level_start,
    total_nodes,
    tree_height,
)
from repro.core.pivots import available_pivot_strategies, get_pivot_selector
from repro.exceptions import ConstructionError, IndexError_


class TestTreeHeight:
    def test_single_object(self):
        assert tree_height(1, 20) == 0

    def test_fits_in_one_node(self):
        assert tree_height(10, 20) == 0

    def test_paper_example(self):
        # Fig. 3: 10 objects, capacity 2 -> max_h = ceil(log2 11) - 1 = 3,
        # height bound h = max_h - ... the formula gives ceil(log2(11)) - 1 = 3
        assert tree_height(10, 2) == 3

    def test_powers_of_capacity(self):
        # Nc^h >= n+1 boundary handling
        assert tree_height(19, 20) == 0
        assert tree_height(20, 20) == 1
        assert tree_height(399, 20) == 1
        assert tree_height(400, 20) == 2

    def test_invalid_capacity(self):
        with pytest.raises(IndexError_):
            tree_height(10, 1)

    def test_negative_objects(self):
        with pytest.raises(IndexError_):
            tree_height(-1, 4)

    @given(n=st.integers(min_value=1, max_value=100_000), nc=st.integers(min_value=2, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_height_bound_property(self, n, nc):
        h = tree_height(n, nc)
        # h is the largest integer with nc**h < n + 1 (so the last level may be over-full)
        assert nc ** h < n + 1 or h == 0
        assert nc ** (h + 1) >= n + 1


class TestNodeArithmetic:
    def test_total_nodes(self):
        assert total_nodes(0, 20) == 1
        assert total_nodes(1, 2) == 3
        assert total_nodes(3, 2) == 15

    def test_level_start_and_size(self):
        assert level_start(0, 4) == 0
        assert level_start(1, 4) == 1
        assert level_start(2, 4) == 5
        assert level_size(2, 4) == 16

    def test_children_and_parent_roundtrip(self):
        tree = TreeStructure.empty(100, 4)
        for node in range(0, 5):
            for child in tree.children_of(node):
                assert tree.parent_of(int(child)) == node

    def test_root_has_no_parent(self):
        tree = TreeStructure.empty(10, 2)
        with pytest.raises(IndexError_):
            tree.parent_of(0)

    def test_level_of(self):
        tree = TreeStructure.empty(100, 4)
        assert tree.level_of(0) == 0
        assert tree.level_of(1) == 1
        assert tree.level_of(4) == 1
        assert tree.level_of(5) == 2

    def test_level_slice_covers_all_nodes(self):
        tree = TreeStructure.empty(500, 5)
        covered = 0
        for level in tree.iter_levels():
            sl = tree.level_slice(level)
            covered += sl.stop - sl.start
        assert covered == tree.num_nodes

    def test_empty_structure_shapes(self):
        tree = TreeStructure.empty(50, 5)
        assert len(tree.obj_ids) == 50
        assert tree.pivot[0] == NO_PIVOT
        assert np.isinf(tree.min_dis[0])

    def test_storage_bytes_positive_and_linear(self):
        small = TreeStructure.empty(100, 10).storage_bytes()
        large = TreeStructure.empty(1000, 10).storage_bytes()
        assert 0 < small < large


class TestEncoding:
    def test_round_trip(self, rng):
        dists = rng.uniform(0, 7, size=200)
        segments = np.sort(rng.integers(0, 5, size=200))
        encoded = encode_distances(dists, segments, max_dis=7.0)
        decoded = decode_distances(encoded, segments, max_dis=7.0)
        np.testing.assert_allclose(decoded, dists, atol=1e-9)

    def test_segments_never_interleave_after_sort(self, rng):
        dists = rng.uniform(0, 10, size=500)
        segments = np.sort(rng.integers(0, 8, size=500))
        encoded = encode_distances(dists, segments, max_dis=10.0)
        order = np.argsort(encoded, kind="stable")
        sorted_segments = segments[order]
        assert np.all(np.diff(sorted_segments) >= 0)

    def test_within_segment_order_is_by_distance(self, rng):
        dists = rng.uniform(0, 3, size=100)
        segments = np.zeros(100, dtype=np.int64)
        encoded = encode_distances(dists, segments, max_dis=3.0)
        order = np.argsort(encoded, kind="stable")
        assert np.all(np.diff(dists[order]) >= -1e-12)

    def test_rejects_negative_distances(self):
        with pytest.raises(ConstructionError):
            encode_distances(np.array([-1.0]), np.array([0]), max_dis=1.0)

    def test_rejects_max_smaller_than_distances(self):
        with pytest.raises(ConstructionError):
            encode_distances(np.array([5.0]), np.array([0]), max_dis=1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConstructionError):
            encode_distances(np.array([1.0, 2.0]), np.array([0]), max_dis=3.0)

    def test_segment_ids_from_offsets(self):
        ids = segment_ids_from_offsets(np.array([0, 3, 5]), total=8)
        np.testing.assert_array_equal(ids, [0, 0, 0, 1, 1, 2, 2, 2])

    def test_segment_ids_empty(self):
        assert len(segment_ids_from_offsets(np.array([]), total=0)) == 0

    @given(
        dists=st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), min_size=1, max_size=50),
        num_segments=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_encoding_roundtrip_property(self, dists, num_segments):
        dists = np.asarray(dists)
        segments = np.sort(np.arange(len(dists)) % num_segments)
        max_dis = float(dists.max())
        encoded = encode_distances(dists, segments, max_dis)
        decoded = decode_distances(encoded, segments, max_dis)
        np.testing.assert_allclose(decoded, dists, atol=1e-6)
        # integer part identifies the segment
        np.testing.assert_array_equal(np.floor(encoded).astype(int), segments)


class TestPivotSelectors:
    def test_available_strategies(self):
        assert set(available_pivot_strategies()) >= {"fft", "random", "center"}

    def test_unknown_strategy_raises(self):
        with pytest.raises(ConstructionError):
            get_pivot_selector("nope")

    def test_fft_picks_farthest(self, rng):
        selector = get_pivot_selector("fft")
        dists = np.array([0.5, 3.0, 1.0, 2.0])
        assert selector(dists, is_root=False, rng=rng) == 1

    def test_fft_root_is_random_but_valid(self, rng):
        selector = get_pivot_selector("fft")
        choice = selector(np.zeros(10), is_root=True, rng=rng)
        assert 0 <= choice < 10

    def test_center_picks_nearest(self, rng):
        selector = get_pivot_selector("center")
        dists = np.array([0.5, 3.0, 0.1, 2.0])
        assert selector(dists, is_root=False, rng=rng) == 2

    def test_random_in_range(self, rng):
        selector = get_pivot_selector("random")
        for _ in range(20):
            assert 0 <= selector(np.zeros(7), is_root=False, rng=rng) < 7

    def test_empty_node_rejected(self, rng):
        selector = get_pivot_selector("fft")
        with pytest.raises(ConstructionError):
            selector(np.zeros(0), is_root=False, rng=rng)
