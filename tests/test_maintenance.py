"""Tests for the non-blocking update path (DESIGN.md §9).

Covers the incremental maintenance subsystem (generation-swap rebuilds in
bounded slices), the batched cache-table scans, the update-path bugfixes
(oversized inserts, no-op batch updates, the automatic/forced rebuild-count
split), the serving-layer maintenance hook, and the staggered shard
schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance
from repro.core import MaintenanceConfig
from repro.core.cache_table import CacheTable
from repro.exceptions import UpdateError
from repro.gpusim import Device, DeviceSpec
from repro.service import (
    GTSService,
    MaintenanceHook,
    WorkloadSpec,
    generate_workload,
    summarize,
)
from repro.service.experiment import UPDATE_HEAVY_MIX, sequential_replay
from repro.shard import ShardedGTS
from repro.tier import TierConfig


# --------------------------------------------------------------------------
# Batched cache scans
# --------------------------------------------------------------------------
class TestBatchedCacheScans:
    @pytest.fixture
    def cache(self, rng, device):
        cache = CacheTable(1 << 20, device=device)
        for i in range(37):
            cache.insert(100 + i, rng.normal(size=4))
        return cache

    def test_range_scan_batch_matches_per_query(self, cache, rng, device):
        metric = EuclideanDistance()
        queries = [rng.normal(size=4) for _ in range(9)]
        radii = np.linspace(0.5, 3.0, num=9)
        expected = [
            cache.range_scan(metric, q, float(r), device)
            for q, r in zip(queries, radii)
        ]
        assert cache.range_scan_batch(metric, queries, radii, device) == expected

    def test_knn_scan_batch_matches_per_query(self, cache, rng, device):
        metric = EuclideanDistance()
        queries = [rng.normal(size=4) for _ in range(7)]
        ks = np.array([1, 2, 3, 5, 8, 37, 100])
        expected = [
            cache.knn_scan(metric, q, int(k), device) for q, k in zip(queries, ks)
        ]
        assert cache.knn_scan_batch(metric, queries, ks, device) == expected

    def test_batch_scan_launches_one_kernel_and_same_pairs(self, cache, rng, device):
        metric = EuclideanDistance()
        queries = [rng.normal(size=4) for _ in range(11)]
        before_kernels = device.stats.kernel_launches
        before_pairs = metric.pair_count
        cache.range_scan_batch(metric, queries, np.full(11, 1.0), device)
        assert device.stats.kernel_launches == before_kernels + 1
        assert metric.pair_count == before_pairs + 11 * len(cache)

    def test_string_payload_batch_scan(self, device):
        cache = CacheTable(1 << 20, device=device)
        words = ["metric", "metrics", "space", "spade", "tree"]
        for i, w in enumerate(words):
            cache.insert(50 + i, w)
        metric = EditDistance()
        queries = ["metric", "spice"]
        expected = [cache.knn_scan(metric, q, 3, device) for q in queries]
        assert cache.knn_scan_batch(metric, queries, [3, 3], device) == expected

    def test_knn_scan_topk_with_ties(self, device):
        cache = CacheTable(1 << 20, device=device)
        # equidistant objects: the top-k must break ties by ascending id
        for i in range(8):
            cache.insert(i, np.array([1.0, 0.0]))
        got = cache.knn_scan(EuclideanDistance(), np.zeros(2), 3, device)
        assert got == [(0, 1.0), (1, 1.0), (2, 1.0)]

    def test_gts_query_batch_merges_cache_identically(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, node_capacity=8)
        for i in range(6):
            index.insert(points_2d[i] + 0.01)
        queries = [points_2d[i] for i in range(10)]
        batch = index.knn_query_batch(queries, 5)
        singles = [index.knn_query(q, 5) for q in queries]
        assert batch == singles
        batch_r = index.range_query_batch(queries, 0.5)
        singles_r = [index.range_query(q, 0.5) for q in queries]
        assert batch_r == singles_r
        index.close()

    def test_query_batch_adds_one_cache_scan_kernel(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, node_capacity=8)
        queries = [points_2d[i] for i in range(8)]
        before = index.device.stats.kernel_launches
        index.knn_query_batch(queries, 3)
        without_cache = index.device.stats.kernel_launches - before
        for i in range(4):
            index.insert(points_2d[i] + 1000.0)  # far away: answers unaffected
        before = index.device.stats.kernel_launches
        index.knn_query_batch(queries, 3)
        with_cache = index.device.stats.kernel_launches - before
        # the whole batch's cache merge is exactly one extra cache-scan
        # kernel, not one per query
        assert with_cache == without_cache + 1
        index.close()


# --------------------------------------------------------------------------
# Update-path bugfixes
# --------------------------------------------------------------------------
class TestOversizedInsert:
    def test_cache_table_rejects_oversized_object(self, device):
        cache = CacheTable(64, device=device)
        with pytest.raises(UpdateError, match="exceeds the whole cache"):
            cache.insert(0, np.zeros(100))
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_gts_insert_rejects_oversized_and_stays_stats_neutral(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=64)
        before = index.device.stats.copy()
        n_before = index.num_objects
        with pytest.raises(UpdateError):
            index.insert(np.zeros(100))
        assert index.device.stats.sim_time == before.sim_time
        assert index.device.stats.kernel_launches == before.kernel_launches
        assert index.num_objects == n_before
        # the id was not consumed and valid inserts still work
        new_id = index.insert(np.array([1.0, 2.0]))
        assert new_id == len(points_2d)
        index.close()

    def test_sharded_insert_rejects_oversized_and_stays_stats_neutral(self, points_2d, l2_metric):
        index = ShardedGTS.build(points_2d, l2_metric, num_shards=2, cache_capacity_bytes=64)
        before = index.device.stats.copy()
        with pytest.raises(UpdateError):
            index.insert(np.zeros(100))
        assert index.device.stats.sim_time == before.sim_time
        index.close()

    def test_update_with_oversized_replacement_is_atomic(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=64)
        before = index.device.stats.copy()
        with pytest.raises(UpdateError):
            index.update(3, np.zeros(100))
        # the old version must survive a rejected replacement, stats-neutrally
        assert index.is_live(3)
        assert index.device.stats.sim_time == before.sim_time
        index.close()

    def test_sharded_update_with_oversized_replacement_is_atomic(self, points_2d, l2_metric):
        index = ShardedGTS.build(points_2d, l2_metric, num_shards=2, cache_capacity_bytes=64)
        with pytest.raises(UpdateError):
            index.update(3, np.zeros(100))
        assert index.is_live(3)
        index.close()


class TestNoopBatchUpdate:
    def test_gts_noop_batch_update_is_free(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, node_capacity=8)
        before = index.device.stats.copy()
        result = index.batch_update(inserts=(), deletes=())
        # a zero-cost result over the standing tree: no construction ran
        assert result.tree is index.tree
        assert result.sim_time == 0.0 and result.distance_computations == 0
        assert index.rebuild_count == 0
        assert index.forced_rebuild_count == 0
        assert index.device.stats.sim_time == before.sim_time
        assert index.device.stats.kernel_launches == before.kernel_launches
        index.close()

    def test_sharded_noop_batch_update_is_free(self, points_2d, l2_metric):
        index = ShardedGTS.build(points_2d, l2_metric, num_shards=2)
        before = index.device.stats.copy()
        report = index.batch_update(inserts=(), deletes=())
        assert report.per_shard == [] and report.sim_time == 0.0
        assert index.rebuild_count == 0
        assert index.device.stats.sim_time == before.sim_time
        index.close()

    def test_non_noop_batch_update_still_rebuilds(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, node_capacity=8)
        index.batch_update(deletes=[0, 1])
        assert index.forced_rebuild_count == 1
        index.close()


class TestRebuildCounterSplit:
    def test_forced_vs_automatic(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=64)
        index.rebuild()
        assert (index.forced_rebuild_count, index.automatic_rebuild_count) == (1, 0)
        index.batch_update(inserts=[np.array([9.0, 9.0])])
        assert index.forced_rebuild_count == 2
        while index.automatic_rebuild_count == 0:
            index.insert(np.array([1.0, 1.0]))
        assert index.rebuild_count == index.forced_rebuild_count + index.automatic_rebuild_count
        assert index.automatic_rebuild_count >= 1
        index.close()

    def test_sharded_aggregates_split_counters(self, points_2d, l2_metric):
        index = ShardedGTS.build(points_2d, l2_metric, num_shards=2, cache_capacity_bytes=64)
        index.shards[0].rebuild()
        while index.automatic_rebuild_count == 0:
            index.insert(np.array([2.0, 2.0]))
        assert index.forced_rebuild_count == 1
        assert index.rebuild_count == 1 + index.automatic_rebuild_count
        index.close()

    def test_persistence_round_trips_split_counters(self, points_2d, l2_metric, tmp_path):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=64)
        index.rebuild()
        while index.automatic_rebuild_count == 0:
            index.insert(np.array([3.0, 3.0]))
        path = index.save(tmp_path / "counters.npz")
        loaded = GTS.load(path)
        assert loaded.automatic_rebuild_count == index.automatic_rebuild_count
        assert loaded.forced_rebuild_count == index.forced_rebuild_count
        assert loaded.rebuild_count == index.rebuild_count
        index.close()
        loaded.close()


# --------------------------------------------------------------------------
# Generation-swap rebuilds
# --------------------------------------------------------------------------
def _mixed_stream(points, rng, length):
    """A deterministic mixed insert/delete/range/knn op stream, batched."""
    ops = []
    next_id = len(points)
    deletable = []
    for _ in range(length):
        kind = rng.choice(["insert", "delete", "range", "knn"], p=[0.45, 0.1, 0.2, 0.25])
        if kind == "insert":
            ops.append(("insert", rng.normal(scale=10.0, size=2)))
            deletable.append(next_id)
            next_id += 1
        elif kind == "delete" and deletable:
            ops.append(("delete", deletable.pop(int(rng.integers(len(deletable))))))
        elif kind == "range":
            ops.append(("range", points[int(rng.integers(len(points)))], 1.0))
        else:
            ops.append(("knn", points[int(rng.integers(len(points)))], 4))
    # split into micro-batches of 7 ops
    return [ops[i : i + 7] for i in range(0, len(ops), 7)]


def _normalize(results):
    out = []
    for r in results:
        if isinstance(r, list):
            out.append([(int(o), float(d)) for o, d in r])
        else:
            out.append(r)
    return out


class TestGenerationSwapEquivalence:
    """Generation-swap answers are byte-identical to stop-the-world rebuilds
    across resident, tiered (cap 0.25) and 2-shard configurations."""

    CONFIGS = ("resident", "tiered", "sharded")

    def _build_pair(self, config, points):
        kwargs = dict(node_capacity=8, cache_capacity_bytes=128, seed=5)
        if config == "resident":
            make = lambda: GTS.build(points, EuclideanDistance(), **kwargs)
        elif config == "tiered":
            from repro.core.construction import objects_nbytes

            budget = max(2048, objects_nbytes(points) // 4)
            tier = TierConfig(memory_budget_bytes=budget, block_bytes=512)
            make = lambda: GTS.build(points, EuclideanDistance(), tier=tier, **kwargs)
        else:
            make = lambda: ShardedGTS.build(
                points, EuclideanDistance(), num_shards=2, **kwargs
            )
        return make(), make()

    @pytest.mark.parametrize("config", CONFIGS)
    def test_streamed_batches_identical_to_blocking(self, config, points_2d):
        points = points_2d[:300]
        blocking, nonblocking = self._build_pair(config, points)
        nonblocking.enable_incremental_maintenance(
            MaintenanceConfig(levels_per_slice=1, hard_overflow_factor=None)
        )
        batches = _mixed_stream(points, np.random.default_rng(42), 140)
        swapped_any = False
        for batch in batches:
            expected = _normalize(blocking.execute_batch(batch))
            got = _normalize(nonblocking.execute_batch(batch))
            assert got == expected
            # advance maintenance between micro-batches, like the service
            report = nonblocking.run_maintenance_slice()
            if report is not None and report.swapped:
                swapped_any = True
        # the stream must actually have exercised the non-blocking rebuild
        assert blocking.automatic_rebuild_count >= 1
        assert swapped_any or nonblocking.maintenance_due
        # drain and re-compare a final query batch
        while nonblocking.maintenance_due:
            if nonblocking.run_maintenance_slice() is None:
                break
        queries = [points[i] for i in range(12)]
        assert _normalize(
            [r for r in nonblocking.knn_query_batch(queries, 6)]
        ) == _normalize([r for r in blocking.knn_query_batch(queries, 6)])
        assert nonblocking.automatic_rebuild_count >= 1
        blocking.close()
        nonblocking.close()

    def test_deletes_during_rebuild_carry_over(self, points_2d, l2_metric):
        points = points_2d[:200]
        index = GTS.build(points, l2_metric, node_capacity=8, cache_capacity_bytes=128)
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=None)
        )
        cached_ids = []
        while not index.maintenance_due:
            cached_ids.append(index.insert(points[0] + 0.01))
        # start the rebuild and advance one level, then delete mid-flight:
        # one indexed object and one snapshot-cached object
        index.run_maintenance_slice()
        assert index.maintenance.in_flight
        index.delete(7)
        index.delete(cached_ids[0])
        while index.maintenance_due:
            index.run_maintenance_slice()
        assert index.automatic_rebuild_count == 1
        assert not index.is_live(7) and not index.is_live(cached_ids[0])
        hits = {o for o, _ in index.range_query(points[7], 1e-9)}
        assert 7 not in hits
        # the other snapshot inserts were folded into the tree
        assert index.is_live(cached_ids[1])
        assert index.cache_size == 0
        index.close()

    def test_forced_rebuild_aborts_generation_without_leaks(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        index = GTS.build(
            points_2d, l2_metric, device=device, cache_capacity_bytes=128
        )
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=None)
        )
        while not index.maintenance_due:
            index.insert(np.array([5.0, 5.0]))
        index.run_maintenance_slice()
        assert index.maintenance.in_flight
        index.rebuild()
        assert not index.maintenance.in_flight and not index.maintenance_due
        assert index.forced_rebuild_count == 1
        index.close()
        assert device.used_bytes == 0

    def test_close_with_inflight_generation_frees_everything(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        index = GTS.build(points_2d, l2_metric, device=device, cache_capacity_bytes=128)
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=None)
        )
        while not index.maintenance_due:
            index.insert(np.array([5.0, 5.0]))
        index.run_maintenance_slice()
        index.close()
        assert device.used_bytes == 0

    def test_hard_overflow_valve_finishes_synchronously(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=128)
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=2.0)
        )
        # never run a slice: once the cache exceeds 2x its budget the next
        # insert must complete the rebuild on its own
        while index.automatic_rebuild_count == 0:
            index.insert(np.array([6.0, 6.0]))
        assert index.cache_size * 16 <= 2 * 128 + 16
        index.close()

    def test_maintenance_slices_attributed_in_stats(self, points_2d, l2_metric):
        index = GTS.build(points_2d, l2_metric, cache_capacity_bytes=128)
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=None)
        )
        while not index.maintenance_due:
            index.insert(np.array([7.0, 7.0]))
        assert index.device.stats.maintenance_seconds == 0.0
        while index.maintenance_due:
            index.run_maintenance_slice()
        assert index.device.stats.maintenance_seconds > 0.0
        assert index.device.stats.maintenance_seconds <= index.device.stats.sim_time
        index.close()


class TestShardedStaggering:
    def test_at_most_one_shard_in_maintenance(self, points_2d, l2_metric):
        index = ShardedGTS.build(
            points_2d, l2_metric, num_shards=3, cache_capacity_bytes=96, seed=2
        )
        index.enable_incremental_maintenance(
            MaintenanceConfig(hard_overflow_factor=None)
        )
        # make every shard maintenance-due
        rng = np.random.default_rng(8)
        while not all(s.maintenance_due for s in index.shards):
            index.insert(rng.normal(scale=10.0, size=2))
        swaps = 0
        while index.maintenance_due:
            report = index.run_maintenance_slice()
            assert report is not None
            in_flight = sum(
                1 for s in index.shards if s.maintenance is not None and s.maintenance.in_flight
            )
            assert in_flight <= 1
            swaps += int(report.swapped)
        assert swaps >= 3
        index.close()


# --------------------------------------------------------------------------
# Serving-layer hook
# --------------------------------------------------------------------------
class TestServiceMaintenanceHook:
    def _workload(self, points, num_indexed, seed=13):
        spec = WorkloadSpec(
            num_clients=4,
            rate_per_client=150_000.0,
            duration=2e-3,
            mix=dict(UPDATE_HEAVY_MIX),
            radius=0.8,
            seed=seed,
        )
        return generate_workload(points, num_indexed, spec)

    def test_served_answers_match_sequential_replay(self, points_2d, l2_metric):
        num_indexed = 500
        workload = self._workload(points_2d, num_indexed)
        oracle = GTS.build(points_2d[:num_indexed], l2_metric, cache_capacity_bytes=256, seed=3)
        expected = sequential_replay(oracle, workload.requests)
        oracle.close()

        index = GTS.build(points_2d[:num_indexed], l2_metric, cache_capacity_bytes=256, seed=3)
        service = GTSService(index, maintenance=MaintenanceHook())
        responses = service.serve(workload.requests)
        assert [r.result for r in responses] == expected
        assert service.maintenance_records, "no maintenance slice ever ran"
        report = summarize(responses, service.batches, service.maintenance_records)
        assert report.num_maintenance_slices == len(service.maintenance_records)
        assert report.maintenance_time > 0
        assert report.rebuilds_completed == index.automatic_rebuild_count >= 1
        assert "maintenance" in report.to_text()
        index.close()

    def test_hook_auto_enables_maintenance(self, points_2d, l2_metric):
        index = GTS.build(points_2d[:300], l2_metric)
        assert not index.maintenance_enabled
        GTSService(index, maintenance=MaintenanceHook())
        assert index.maintenance_enabled
        index.close()

    def test_deferral_under_load(self, points_2d, l2_metric):
        # a hook that may never run a slice while requests are pending only
        # fires in idle gaps / the end-of-stream drain
        num_indexed = 400
        workload = self._workload(points_2d, num_indexed, seed=21)
        index = GTS.build(points_2d[:num_indexed], l2_metric, cache_capacity_bytes=256, seed=3)
        hook = MaintenanceHook(defer_queue_threshold=1, max_deferrals=10_000)
        service = GTSService(index, maintenance=hook)
        service.serve(workload.requests)
        assert all(record.idle for record in service.maintenance_records)
        index.close()

    def test_sharded_service_with_maintenance(self, points_2d, l2_metric):
        num_indexed = 500
        workload = self._workload(points_2d, num_indexed, seed=5)
        oracle = GTS.build(points_2d[:num_indexed], l2_metric, cache_capacity_bytes=256, seed=3)
        expected = sequential_replay(oracle, workload.requests)
        oracle.close()
        index = ShardedGTS.build(
            points_2d[:num_indexed], l2_metric, num_shards=2, cache_capacity_bytes=256, seed=3
        )
        service = GTSService(index, maintenance=MaintenanceHook())
        responses = service.serve(workload.requests)
        assert [r.result for r in responses] == expected
        index.close()
