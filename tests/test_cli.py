"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.baselines import available_methods
from repro.cli import EXPERIMENT_REGISTRY, build_parser, main
from repro.datasets import available_datasets
from repro.metrics import available_metrics


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([])
        assert exc.value.code == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_experiment_names_match_registry(self):
        args = build_parser().parse_args(["experiment", "table4"])
        assert args.name == "table4"
        for name in EXPERIMENT_REGISTRY:
            build_parser().parse_args(["experiment", name])


class TestListCommand:
    @pytest.mark.parametrize(
        "what, expected",
        [
            ("datasets", available_datasets),
            ("methods", available_methods),
            ("metrics", available_metrics),
            ("experiments", lambda: sorted(EXPERIMENT_REGISTRY)),
        ],
    )
    def test_lists_registries(self, capsys, what, expected):
        assert main(["list", what]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == list(expected())


class TestBuildAndQuery:
    def test_build_prints_summary(self, capsys):
        code = main(["build", "--dataset", "tloc", "--cardinality", "300", "--node-capacity", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "300 objects" in out
        assert "build time" in out
        assert "storage" in out

    def test_build_save_query_round_trip(self, capsys, tmp_path):
        index_path = tmp_path / "tloc.npz"
        assert main([
            "build", "--dataset", "tloc", "--cardinality", "300",
            "--node-capacity", "8", "--output", str(index_path),
        ]) == 0
        assert index_path.exists()
        capsys.readouterr()

        assert main([
            "query", "--index", str(index_path),
            "--num-queries", "4", "--k", "3", "--radius", "0.5", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "kNN batch" in out
        assert "MRQ batch" in out
        assert "query " in out

    def test_build_words_dataset(self, capsys, tmp_path):
        index_path = tmp_path / "words.npz"
        assert main([
            "build", "--dataset", "words", "--cardinality", "200", "--output", str(index_path),
        ]) == 0
        capsys.readouterr()
        assert main(["query", "--index", str(index_path), "--num-queries", "3", "--k", "2"]) == 0
        assert "kNN batch" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_table(self, capsys):
        code = main([
            "compare", "--dataset", "tloc", "--cardinality", "300",
            "--methods", "GTS,MVPT,LAESA", "--num-queries", "4", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for method in ("GTS", "MVPT", "LAESA"):
            assert method in out
        assert "kNN thpt" in out

    def test_compare_unknown_method(self, capsys):
        code = main([
            "compare", "--dataset", "tloc", "--cardinality", "200", "--methods", "GTS,NoSuchMethod",
        ])
        assert code == 2
        assert "unknown methods" in capsys.readouterr().err

    def test_compare_with_memory_limit(self, capsys):
        code = main([
            "compare", "--dataset", "tloc", "--cardinality", "300",
            "--methods", "GTS,GPU-Table", "--num-queries", "4", "--device-memory-mb", "64",
        ])
        assert code == 0
        assert "GPU-Table" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_cost_model_ablation_and_writes_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        code = main([
            "experiment", "ablation-cost-model", "--scale", "0.02",
            "--num-queries", "4", "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "node_capacity" in out
        assert csv_path.exists()
        assert "node_capacity" in csv_path.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestServeSimCommand:
    def test_serves_workload_and_verifies(self, capsys):
        code = main([
            "serve-sim", "--dataset", "tloc", "--cardinality", "600",
            "--clients", "3", "--rate", "60000", "--duration", "0.001",
            "--max-batch", "16", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "micro-batches" in out
        assert "identical to sequential replay" in out

    def test_deadline_policy_reports_miss_rate(self, capsys):
        code = main([
            "serve-sim", "--dataset", "tloc", "--cardinality", "400",
            "--clients", "3", "--rate", "50000", "--duration", "0.001",
            "--policy", "deadline", "--deadline", "0.0005",
        ])
        assert code == 0
        assert "deadline miss rate" in capsys.readouterr().out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--policy", "fifo"])

    def test_serves_sharded_index_and_verifies(self, capsys):
        code = main([
            "serve-sim", "--dataset", "tloc", "--cardinality", "600",
            "--clients", "3", "--rate", "60000", "--duration", "0.001",
            "--shards", "3", "--max-batch", "16", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 shards (round-robin)" in out
        assert "identical to sequential replay" in out

    def test_rejects_non_positive_shards(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--shards", "0"])

    def test_rejects_unknown_shard_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--shard-policy", "hash-ring"])
