"""Tests for the streaming-update cache table and the Section 5.3 cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache_table import CacheTable
from repro.core.cost_model import (
    DistanceDistribution,
    estimate_construction_cost,
    estimate_distance_distribution,
    estimate_query_cost,
    recommend_node_capacity,
    survival_probability,
)
from repro.exceptions import QueryError, UpdateError
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EuclideanDistance


class TestCacheTable:
    def test_insert_and_contains(self):
        cache = CacheTable(1024)
        cache.insert(1, "hello")
        assert 1 in cache and len(cache) == 1
        assert cache.object_ids() == [1]

    def test_duplicate_insert_rejected(self):
        cache = CacheTable(1024)
        cache.insert(1, "a")
        with pytest.raises(UpdateError):
            cache.insert(1, "b")

    def test_remove(self):
        cache = CacheTable(1024)
        cache.insert(3, "abc")
        assert cache.remove(3)
        assert not cache.remove(3)
        assert len(cache) == 0

    def test_used_bytes_tracks_payload(self):
        cache = CacheTable(1024)
        cache.insert(0, "abcd")
        cache.insert(1, np.zeros(4))
        assert cache.used_bytes == 4 + 32
        cache.remove(0)
        assert cache.used_bytes == 32

    def test_is_full_when_budget_exceeded(self):
        cache = CacheTable(10)
        cache.insert(0, "12345678")
        assert not cache.is_full
        cache.insert(1, "12345678")
        assert cache.is_full

    def test_clear(self):
        cache = CacheTable(100)
        cache.insert(0, "x")
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(UpdateError):
            CacheTable(0)

    def test_device_allocation_and_release(self):
        device = Device(DeviceSpec())
        cache = CacheTable(2048, device=device)
        assert device.used_bytes == 2048
        cache.release()
        assert device.used_bytes == 0

    def test_range_scan_matches_brute_force(self, rng):
        metric = EuclideanDistance()
        cache = CacheTable(1 << 20)
        pts = rng.normal(size=(20, 2))
        for i, p in enumerate(pts):
            cache.insert(100 + i, p)
        hits = cache.range_scan(metric, pts[0], 0.5)
        expected = {100 + i for i, p in enumerate(pts) if np.linalg.norm(p - pts[0]) <= 0.5}
        assert {o for o, _ in hits} == expected

    def test_knn_scan_returns_k_smallest(self, rng):
        metric = EuclideanDistance()
        cache = CacheTable(1 << 20)
        pts = rng.normal(size=(20, 2))
        for i, p in enumerate(pts):
            cache.insert(i, p)
        got = cache.knn_scan(metric, pts[0], 3)
        dists = sorted(np.linalg.norm(pts - pts[0], axis=1))[:3]
        np.testing.assert_allclose(sorted(d for _, d in got), dists, atol=1e-9)

    def test_scans_on_empty_cache(self):
        cache = CacheTable(100)
        assert cache.range_scan(EuclideanDistance(), np.zeros(2), 1.0) == []
        assert cache.knn_scan(EuclideanDistance(), np.zeros(2), 3) == []

    def test_scan_charges_device_time(self, rng):
        device = Device(DeviceSpec())
        cache = CacheTable(1 << 16, device=device)
        for i in range(10):
            cache.insert(i, rng.normal(size=2))
        before = device.stats.kernel_launches
        cache.range_scan(EuclideanDistance(), np.zeros(2), 1.0)
        assert device.stats.kernel_launches == before + 1


class TestSurvivalProbability:
    def test_bounds(self):
        assert 0.02 <= survival_probability(1.0, 0.5) <= 1.0
        assert survival_probability(0.0, 1.0) == 1.0

    def test_monotone_in_radius(self):
        assert survival_probability(1.0, 2.0) >= survival_probability(1.0, 1.0)

    def test_zero_radius_floor(self):
        assert survival_probability(1.0, 0.0) == pytest.approx(0.02)


class TestQueryCostModel:
    def test_zero_objects_costs_nothing(self):
        assert estimate_query_cost(0, 20, DeviceSpec(), 1.0, 1.0) == 0.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(QueryError):
            estimate_query_cost(100, 1, DeviceSpec(), 1.0, 1.0)

    def test_cost_increases_with_dataset_size(self):
        spec = DeviceSpec()
        small = estimate_query_cost(1_000, 20, spec, sigma=1.0, radius=0.5)
        large = estimate_query_cost(1_000_000, 20, spec, sigma=1.0, radius=0.5)
        assert large > small

    def test_cost_increases_with_metric_cost(self):
        spec = DeviceSpec()
        cheap = estimate_query_cost(10_000, 20, spec, 1.0, 0.5, metric_unit_cost=1.0)
        expensive = estimate_query_cost(10_000, 20, spec, 1.0, 0.5, metric_unit_cost=500.0)
        assert expensive > cheap

    def test_more_cores_never_slower(self):
        few = estimate_query_cost(100_000, 20, DeviceSpec(cores=64), 1.0, 0.5)
        many = estimate_query_cost(100_000, 20, DeviceSpec(cores=8192), 1.0, 0.5)
        assert many <= few

    def test_construction_cost_scales_superlinearly_at_fixed_cores(self):
        # measure the work term alone (no fixed kernel-launch overhead)
        spec = DeviceSpec(cores=1024, kernel_launch_overhead=1e-15)
        c1 = estimate_construction_cost(10_000, 20, spec)
        c2 = estimate_construction_cost(100_000, 20, spec)
        assert c2 > 10 * c1 * 0.5  # at least roughly linear growth

    def test_construction_cost_zero_for_empty(self):
        assert estimate_construction_cost(0, 20, DeviceSpec()) == 0.0

    def test_recommend_node_capacity_from_candidates(self):
        spec = DeviceSpec()
        nc = recommend_node_capacity(50_000, spec, sigma=1.0, radius=0.3, candidates=(10, 20, 40, 80))
        assert nc in (10, 20, 40, 80)

    def test_recommend_requires_candidates(self):
        with pytest.raises(QueryError):
            recommend_node_capacity(1000, DeviceSpec(), 1.0, 1.0, candidates=())

    def test_recommendation_prefers_small_capacity_when_selective(self):
        """Strong pruning plus an expensive metric and n >> C favour deeper trees
        (small Nc): the extra levels are cheap next to the leaf verifications
        they avoid — the paper's "n >> C" regime of Section 5.3."""
        spec = DeviceSpec(cores=64)
        selective = recommend_node_capacity(
            1_000_000, spec, sigma=5.0, radius=1.0, candidates=(10, 320),
            metric_unit_cost=10_000.0,
        )
        assert selective == 10

    def test_recommendation_prefers_large_capacity_when_pruning_is_useless(self):
        """With no pruning signal, a shallow tree (large Nc) wins: more levels
        only add synchronisation without removing any verification work —
        the paper's "n << C" discussion of Section 5.3."""
        spec = DeviceSpec(cores=64)
        unselective = recommend_node_capacity(
            100_000, spec, sigma=0.01, radius=10.0, candidates=(10, 320),
            metric_unit_cost=1.0,
        )
        assert unselective == 320


class TestDistanceDistribution:
    def test_estimate_from_points(self, points_2d, l2_metric):
        dist = estimate_distance_distribution(points_2d, l2_metric, sample_size=64)
        assert dist.mean > 0 and dist.std > 0 and dist.max >= dist.mean
        assert dist.sample_size > 0

    def test_variance_property(self):
        d = DistanceDistribution(mean=1.0, std=2.0, max=5.0, sample_size=10)
        assert d.variance == pytest.approx(4.0)

    def test_requires_two_objects(self, l2_metric):
        with pytest.raises(QueryError):
            estimate_distance_distribution(np.zeros((1, 2)), l2_metric)

    def test_deterministic_given_rng(self, points_2d, l2_metric):
        a = estimate_distance_distribution(points_2d, l2_metric, rng=np.random.default_rng(1))
        b = estimate_distance_distribution(points_2d, l2_metric, rng=np.random.default_rng(1))
        assert a.mean == b.mean and a.std == b.std
