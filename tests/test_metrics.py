"""Unit tests for the distance metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics import (
    AngularDistance,
    ChebyshevDistance,
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    ManhattanDistance,
    MinkowskiDistance,
    available_metrics,
    edit_distance,
    get_metric,
    hamming_distance,
    register_metric,
)
from repro.metrics.base import Metric, MetricCounter


class TestEditDistanceFunction:
    def test_identical_strings(self):
        assert edit_distance("kitten", "kitten") == 0

    def test_empty_vs_word(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_both_empty(self):
        assert edit_distance("", "") == 0

    def test_classic_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_single_insertion(self):
        assert edit_distance("cat", "cart") == 1

    def test_single_deletion(self):
        assert edit_distance("cart", "cat") == 1

    def test_symmetry(self):
        assert edit_distance("sunday", "saturday") == edit_distance("saturday", "sunday")

    def test_completely_different(self):
        assert edit_distance("abc", "xyz") == 3

    def test_prefix(self):
        assert edit_distance("metric", "metrics") == 1

    def test_long_strings_match_reference(self):
        # reference implementation: classic full DP
        def reference(a, b):
            dp = np.zeros((len(a) + 1, len(b) + 1), dtype=int)
            dp[:, 0] = np.arange(len(a) + 1)
            dp[0, :] = np.arange(len(b) + 1)
            for i in range(1, len(a) + 1):
                for j in range(1, len(b) + 1):
                    cost = 0 if a[i - 1] == b[j - 1] else 1
                    dp[i, j] = min(dp[i - 1, j] + 1, dp[i, j - 1] + 1, dp[i - 1, j - 1] + cost)
            return int(dp[-1, -1])

        rng = np.random.default_rng(5)
        for _ in range(20):
            a = "".join(rng.choice(list("ACGT"), size=int(rng.integers(0, 30))))
            b = "".join(rng.choice(list("ACGT"), size=int(rng.integers(0, 30))))
            assert edit_distance(a, b) == reference(a, b)

    def test_length_difference_lower_bound(self):
        assert edit_distance("a", "abcdef") >= 5


class TestHammingDistance:
    def test_equal_strings(self):
        assert hamming_distance("abc", "abc") == 0

    def test_counts_mismatches(self):
        assert hamming_distance("abcd", "abzd") == 1
        assert hamming_distance("aaaa", "bbbb") == 4

    def test_rejects_unequal_lengths(self):
        with pytest.raises(MetricError):
            hamming_distance("abc", "ab")


class TestVectorMetrics:
    def test_euclidean_simple(self):
        m = EuclideanDistance()
        assert m.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan_simple(self):
        m = ManhattanDistance()
        assert m.distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev_simple(self):
        m = ChebyshevDistance()
        assert m.distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_p3(self):
        m = MinkowskiDistance(p=3)
        expected = (3 ** 3 + 4 ** 3) ** (1 / 3)
        assert m.distance([0, 0], [3, 4]) == pytest.approx(expected)

    def test_minkowski_rejects_p_below_one(self):
        with pytest.raises(MetricError):
            MinkowskiDistance(p=0.5)

    def test_dimension_mismatch_raises(self):
        m = EuclideanDistance()
        with pytest.raises(MetricError):
            m.distance([1, 2], [1, 2, 3])

    def test_pairwise_matches_individual(self, rng):
        m = EuclideanDistance()
        pts = rng.normal(size=(50, 4))
        q = rng.normal(size=4)
        pair = m.pairwise(q, pts)
        individual = np.array([m.distance(q, p) for p in pts])
        np.testing.assert_allclose(pair, individual, atol=1e-12)

    def test_matrix_matches_pairwise(self, rng):
        m = ManhattanDistance()
        xs = rng.normal(size=(10, 6))
        ys = rng.normal(size=(20, 6))
        mat = m.matrix(xs, ys)
        for i in range(10):
            np.testing.assert_allclose(mat[i], m.pairwise(xs[i], ys), atol=1e-12)

    def test_euclidean_matrix_uses_stable_formula(self, rng):
        m = EuclideanDistance()
        xs = rng.normal(size=(5, 3))
        mat = m.matrix(xs, xs)
        assert np.all(np.diag(mat) < 1e-6)
        assert np.all(mat >= 0)

    def test_unit_cost_scales_with_dimension(self, rng):
        m = ManhattanDistance()
        m.pairwise(rng.normal(size=282), rng.normal(size=(3, 282)))
        assert m.unit_cost == pytest.approx(2.0 * 282)

    def test_angular_identical_vectors(self):
        m = AngularDistance()
        v = np.array([1.0, 2.0, 3.0])
        assert m.distance(v, v) == pytest.approx(0.0, abs=1e-9)

    def test_angular_orthogonal_vectors(self):
        m = AngularDistance()
        assert m.distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.5)

    def test_angular_opposite_vectors(self):
        m = AngularDistance()
        assert m.distance([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(1.0)

    def test_angular_bounded(self, rng):
        m = AngularDistance()
        a = rng.normal(size=(30, 8))
        mat = m.matrix(a, a)
        assert np.all(mat >= -1e-12) and np.all(mat <= 1.0 + 1e-12)

    def test_angular_zero_vector_handled(self):
        m = AngularDistance()
        assert m.distance([0.0, 0.0], [0.0, 0.0]) == 0.0


class TestEditDistanceMetric:
    def test_unit_cost_quadratic_in_length(self):
        assert EditDistance(expected_length=108).unit_cost == pytest.approx(108 ** 2)

    def test_rejects_non_strings(self):
        m = EditDistance()
        with pytest.raises(MetricError):
            m.distance(1, "abc")

    def test_rejects_non_positive_expected_length(self):
        with pytest.raises(MetricError):
            EditDistance(expected_length=0)

    def test_pairwise(self, word_list):
        m = EditDistance()
        d = m.pairwise("metric", word_list[:10])
        assert len(d) == 10
        assert all(x >= 0 for x in d)


class TestMetricCounting:
    def test_counter_counts_pairs(self):
        m = EuclideanDistance()
        m.distance([0, 0], [1, 1])
        m.pairwise([0, 0], [[1, 1], [2, 2], [3, 3]])
        m.matrix([[0, 0]], [[1, 1], [2, 2]])
        assert m.pair_count == 1 + 3 + 2
        assert m.counter.calls == 3

    def test_reset_counter(self):
        m = EuclideanDistance()
        m.distance([0, 0], [1, 1])
        m.reset_counter()
        assert m.pair_count == 0

    def test_empty_pairwise_returns_empty(self):
        m = EuclideanDistance()
        assert len(m.pairwise([0, 0], [])) == 0

    def test_counter_snapshot(self):
        c = MetricCounter()
        c.record(5)
        assert c.snapshot() == {"calls": 1, "pairs": 5}


class TestRegistry:
    def test_get_known_metrics(self):
        assert isinstance(get_metric("l2"), EuclideanDistance)
        assert isinstance(get_metric("l1"), ManhattanDistance)
        assert isinstance(get_metric("edit"), EditDistance)
        assert isinstance(get_metric("angular"), AngularDistance)
        assert isinstance(get_metric("hamming"), HammingDistance)

    def test_get_metric_case_insensitive(self):
        assert isinstance(get_metric("  L2 "), EuclideanDistance)

    def test_get_metric_with_kwargs(self):
        m = get_metric("edit", expected_length=108)
        assert m.expected_length == 108

    def test_unknown_metric_raises(self):
        with pytest.raises(MetricError):
            get_metric("no-such-metric")

    def test_available_metrics_sorted(self):
        names = available_metrics()
        assert names == sorted(names)
        assert "l2" in names

    def test_register_duplicate_rejected(self):
        with pytest.raises(MetricError):
            register_metric("l2", EuclideanDistance)

    def test_register_custom_metric(self):
        class Constant(Metric):
            name = "constant"

            def _distance(self, a, b):
                return 0.0 if a == b else 1.0

        register_metric("constant-test-metric", Constant)
        m = get_metric("constant-test-metric")
        assert m.distance("a", "b") == 1.0
