"""Unit tests for the simulated GPU / CPU execution substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeviceMemoryError, KernelError
from repro.gpusim import (
    CPUExecutor,
    CPUSpec,
    Device,
    DeviceSpec,
    ExecutionStats,
    MiB,
    distance_kernel,
    distance_matrix_kernel,
    elementwise_kernel,
    measure,
    reduce_kernel,
    sort_kernel,
    throughput_per_minute,
    topk_kernel,
)
from repro.metrics import EuclideanDistance


class TestDeviceSpec:
    def test_defaults_reasonable(self):
        spec = DeviceSpec()
        assert spec.cores > 0 and spec.memory_bytes > 0

    def test_with_memory_returns_copy(self):
        spec = DeviceSpec()
        smaller = spec.with_memory(1 * MiB)
        assert smaller.memory_bytes == 1 * MiB
        assert spec.memory_bytes != smaller.memory_bytes

    def test_with_cores(self):
        assert DeviceSpec().with_cores(128).cores == 128

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(cores=0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(memory_bytes=0)

    def test_cpu_spec_validation(self):
        with pytest.raises(ValueError):
            CPUSpec(op_time=0)


class TestDeviceMemory:
    def test_allocate_and_free(self, device):
        alloc = device.allocate(1024, "buf")
        assert device.used_bytes == 1024
        device.free(alloc)
        assert device.used_bytes == 0

    def test_free_is_idempotent(self, device):
        alloc = device.allocate(100)
        device.free(alloc)
        device.free(alloc)
        assert device.used_bytes == 0

    def test_out_of_memory_raises(self):
        device = Device(DeviceSpec(memory_bytes=1000))
        with pytest.raises(DeviceMemoryError):
            device.allocate(2000)

    def test_oom_error_carries_sizes(self):
        device = Device(DeviceSpec(memory_bytes=1000))
        device.allocate(600)
        with pytest.raises(DeviceMemoryError) as err:
            device.allocate(500)
        assert err.value.requested == 500
        assert err.value.available == 400
        assert err.value.capacity == 1000

    def test_negative_allocation_rejected(self, device):
        with pytest.raises(KernelError):
            device.allocate(-1)

    def test_peak_memory_tracked(self, device):
        a = device.allocate(1000)
        b = device.allocate(2000)
        device.free(a)
        device.free(b)
        assert device.stats.peak_memory_bytes == 3000

    def test_free_all(self, device):
        device.allocate(100)
        device.allocate(200)
        device.free_all()
        assert device.used_bytes == 0
        assert device.live_allocations() == []

    def test_alloc_array_charges_bytes(self, device):
        arr = device.alloc_array((10, 10), dtype=np.float64, label="m")
        assert arr.nbytes == 800
        assert device.used_bytes == 800
        arr.free()
        assert device.used_bytes == 0

    def test_device_array_use_after_free_raises(self, device):
        arr = device.alloc_array(4)
        arr.free()
        with pytest.raises(KernelError):
            _ = arr.data

    def test_to_device_copies_and_charges(self, device):
        host = np.arange(100, dtype=np.float64)
        dev = device.to_device(host)
        assert device.used_bytes == host.nbytes
        assert device.stats.bytes_to_device == host.nbytes
        np.testing.assert_array_equal(dev.data, host)


class TestDeviceTiming:
    def test_parallel_steps_ceiling(self):
        device = Device(DeviceSpec(cores=100))
        assert device.parallel_steps_for(1) == 1
        assert device.parallel_steps_for(100) == 1
        assert device.parallel_steps_for(101) == 2
        assert device.parallel_steps_for(0) == 0

    def test_launch_kernel_accumulates_time(self):
        device = Device(DeviceSpec(cores=10, op_time=1e-9, kernel_launch_overhead=1e-6))
        elapsed = device.launch_kernel(work_items=25, op_cost=2.0)
        assert elapsed == pytest.approx(1e-6 + 3 * 2.0 * 1e-9)
        assert device.stats.kernel_launches == 1
        assert device.stats.parallel_steps == 3

    def test_launch_kernel_zero_work_costs_only_overhead(self, device):
        elapsed = device.launch_kernel(0)
        assert elapsed == pytest.approx(device.spec.kernel_launch_overhead)

    def test_negative_work_rejected(self, device):
        with pytest.raises(KernelError):
            device.launch_kernel(-1)

    def test_sort_cost_includes_log_factor(self):
        device = Device(DeviceSpec(cores=16, op_time=1e-9, kernel_launch_overhead=0.000001))
        device.sort_cost(1024)
        # ceil(1024/16) * log2(1024) = 64 * 10 = 640 steps
        assert device.stats.parallel_steps == 640
        assert device.stats.sorted_elements == 1024

    def test_sort_of_one_element_is_free(self, device):
        assert device.sort_cost(1) == 0.0

    def test_transfer_costs(self):
        device = Device(DeviceSpec(transfer_bandwidth=1e9))
        t = device.transfer_to_device(1e6)
        assert t == pytest.approx(1e-3)
        t = device.transfer_to_host(2e6)
        assert t == pytest.approx(2e-3)
        assert device.stats.bytes_to_device == 1_000_000
        assert device.stats.bytes_to_host == 2_000_000

    def test_reset_stats_keeps_live_memory(self, device):
        device.allocate(512)
        device.launch_kernel(10)
        device.reset_stats()
        assert device.stats.kernel_launches == 0
        assert device.used_bytes == 512
        assert device.stats.peak_memory_bytes == 512


class TestExecutionStats:
    def test_delta_since(self, device):
        device.launch_kernel(100)
        before = device.snapshot()
        device.launch_kernel(200)
        delta = device.stats.delta_since(before)
        assert delta.kernel_launches == 1

    def test_merge(self):
        a = ExecutionStats(kernel_launches=2, sim_time=1.0, peak_memory_bytes=10)
        b = ExecutionStats(kernel_launches=3, sim_time=0.5, peak_memory_bytes=20)
        merged = a.merge(b)
        assert merged.kernel_launches == 5
        assert merged.sim_time == pytest.approx(1.5)
        assert merged.peak_memory_bytes == 20

    def test_as_dict_roundtrip(self):
        stats = ExecutionStats(kernel_launches=1, total_ops=5.0)
        d = stats.as_dict()
        assert d["kernel_launches"] == 1 and d["total_ops"] == 5.0

    def test_reset(self):
        stats = ExecutionStats(kernel_launches=4, sim_time=2.0)
        stats.reset()
        assert stats.kernel_launches == 0 and stats.sim_time == 0.0


class TestKernels:
    def test_distance_kernel_returns_distances_and_charges(self, device, rng):
        metric = EuclideanDistance()
        pts = rng.normal(size=(64, 3))
        d = distance_kernel(device, metric, pts[0], pts)
        assert len(d) == 64
        assert d[0] == pytest.approx(0.0, abs=1e-12)
        assert device.stats.kernel_launches == 1
        assert device.stats.total_ops == pytest.approx(64 * metric.unit_cost)

    def test_distance_matrix_kernel(self, device, rng):
        metric = EuclideanDistance()
        xs = rng.normal(size=(5, 3))
        ys = rng.normal(size=(7, 3))
        table = distance_matrix_kernel(device, metric, xs, ys)
        assert table.shape == (5, 7)
        assert device.stats.total_ops == pytest.approx(35 * metric.unit_cost)

    def test_elementwise_kernel(self, device):
        arr = np.arange(10.0)
        out = elementwise_kernel(device, lambda x: x * 2, arr)
        np.testing.assert_array_equal(out, arr * 2)
        assert device.stats.kernel_launches == 1

    def test_sort_kernel_returns_argsort(self, device, rng):
        keys = rng.normal(size=100)
        order = sort_kernel(device, keys)
        assert np.all(np.diff(keys[order]) >= 0)
        assert device.stats.sorted_elements == 100

    def test_reduce_kernel(self, device, rng):
        arr = rng.normal(size=50)
        assert reduce_kernel(device, np.max, arr) == pytest.approx(arr.max())

    def test_topk_kernel_smallest(self, device, rng):
        values = rng.normal(size=200)
        idx = topk_kernel(device, values, 5)
        expected = np.sort(values)[:5]
        np.testing.assert_allclose(np.sort(values[idx]), expected)

    def test_topk_kernel_k_larger_than_n(self, device):
        values = np.array([3.0, 1.0, 2.0])
        idx = topk_kernel(device, values, 10)
        assert len(idx) == 3

    def test_topk_kernel_k_zero(self, device):
        assert len(topk_kernel(device, np.array([1.0]), 0)) == 0


class TestCPUExecutor:
    def test_execute_charges_sequential_time(self):
        cpu = CPUExecutor(CPUSpec(cores=1, op_time=1e-9))
        elapsed = cpu.execute(1000)
        assert elapsed == pytest.approx(1e-6)
        assert cpu.stats.total_ops == 1000

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            CPUExecutor().execute(-5)

    def test_distances_helper(self, rng):
        cpu = CPUExecutor()
        metric = EuclideanDistance()
        pts = rng.normal(size=(10, 2))
        d = cpu.distances(metric, pts[0], pts)
        assert len(d) == 10
        assert cpu.stats.total_ops > 0

    def test_snapshot_and_reset(self):
        cpu = CPUExecutor()
        cpu.execute(10)
        snap = cpu.snapshot()
        cpu.execute(10)
        assert cpu.stats.total_ops == 20 and snap.total_ops == 10
        cpu.reset_stats()
        assert cpu.stats.total_ops == 0


class TestTiming:
    def test_throughput_per_minute(self):
        assert throughput_per_minute(60, 60.0) == pytest.approx(60.0)
        assert throughput_per_minute(0, 10.0) == 0.0
        assert throughput_per_minute(10, 0.0) == float("inf")

    def test_measure_context_captures_delta(self, device):
        device.launch_kernel(10)
        with measure(device, num_queries=4) as run:
            device.launch_kernel(10)
            device.launch_kernel(10)
        assert run.stats.kernel_launches == 2
        assert run.num_queries == 4
        assert run.throughput > 0
