"""Tests for the level-synchronous GTS construction (Algorithms 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import build_tree, objects_nbytes, take_objects
from repro.core.nodes import NO_PIVOT, tree_height
from repro.exceptions import ConstructionError
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EditDistance, EuclideanDistance


def _build(objects, metric, nc=8, device=None, **kwargs):
    device = device or Device(DeviceSpec())
    ids = np.arange(len(objects))
    return build_tree(objects, ids, metric, nc, device, **kwargs), device


class TestBuildBasics:
    def test_empty_dataset_rejected(self, l2_metric, device):
        with pytest.raises(ConstructionError):
            build_tree(np.zeros((0, 2)), np.zeros(0, dtype=int), l2_metric, 4, device)

    def test_invalid_node_capacity_rejected(self, points_2d, l2_metric, device):
        with pytest.raises(ConstructionError):
            build_tree(points_2d, np.arange(len(points_2d)), l2_metric, 1, device)

    def test_height_matches_formula(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        assert result.tree.height == tree_height(len(points_2d), 8)

    def test_invariants_hold(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        result.tree.check_invariants()

    def test_invariants_hold_for_strings(self, word_list, edit_metric):
        result, _ = _build(word_list, edit_metric, nc=4)
        result.tree.check_invariants()

    def test_table_list_is_permutation(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        assert sorted(result.tree.obj_ids.tolist()) == list(range(len(points_2d)))

    def test_single_object_dataset(self, l2_metric):
        result, _ = _build(np.array([[1.0, 2.0]]), l2_metric, nc=4)
        assert result.tree.height == 0
        assert result.tree.size[0] == 1

    def test_tiny_dataset_fits_in_root(self, l2_metric, rng):
        pts = rng.normal(size=(3, 2))
        result, _ = _build(pts, l2_metric, nc=8)
        assert result.tree.height == 0
        result.tree.check_invariants()

    def test_duplicate_objects_allowed(self, l2_metric):
        pts = np.tile(np.array([[1.0, 1.0]]), (40, 1))
        result, _ = _build(pts, l2_metric, nc=4)
        result.tree.check_invariants()
        assert result.tree.size[0] == 40

    def test_build_deterministic_given_seed(self, points_2d, l2_metric):
        r1, _ = _build(points_2d, l2_metric, nc=8, rng=np.random.default_rng(3))
        r2, _ = _build(points_2d, l2_metric, nc=8, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(r1.tree.obj_ids, r2.tree.obj_ids)
        np.testing.assert_array_equal(r1.tree.pivot, r2.tree.pivot)


class TestStructureSemantics:
    def test_internal_nodes_have_pivots_from_their_objects(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        tree = result.tree
        for level in range(tree.height):
            for node in tree.active_nodes(level):
                pivot = int(tree.pivot[node])
                assert pivot != NO_PIVOT
                assert pivot in set(tree.node_objects(int(node)).tolist())

    def test_leaves_have_no_pivot(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        tree = result.tree
        for node in tree.leaves():
            assert tree.pivot[node] == NO_PIVOT

    def test_child_distance_bounds_are_correct(self, points_2d, l2_metric):
        """min_dis / max_dis of a child really bound d(parent pivot, child objects)."""
        result, _ = _build(points_2d, l2_metric, nc=8)
        tree = result.tree
        metric = l2_metric
        for level in range(tree.height):
            for node in tree.active_nodes(level):
                pivot_obj = points_2d[int(tree.pivot[node])]
                for child in tree.children_of(int(node)):
                    child = int(child)
                    if tree.size[child] == 0:
                        continue
                    dists = metric.pairwise(pivot_obj, points_2d[tree.node_objects(child)])
                    assert dists.min() >= tree.min_dis[child] - 1e-9
                    assert dists.max() <= tree.max_dis[child] + 1e-9

    def test_children_sorted_by_distance_ranges(self, points_2d, l2_metric):
        """Sibling distance ranges are non-decreasing (the global sort worked)."""
        result, _ = _build(points_2d, l2_metric, nc=8)
        tree = result.tree
        for level in range(tree.height):
            for node in tree.active_nodes(level):
                last_max = -np.inf
                for child in tree.children_of(int(node)):
                    child = int(child)
                    if tree.size[child] == 0:
                        continue
                    assert tree.min_dis[child] >= last_max - 1e-9
                    last_max = tree.min_dis[child]

    def test_balanced_partitioning(self, l2_metric, rng):
        """Children of one node differ in size by at most the remainder rule."""
        pts = rng.normal(size=(640, 2))
        result, _ = _build(pts, l2_metric, nc=8)
        tree = result.tree
        for node in tree.active_nodes(0):
            sizes = tree.size[tree.children_of(int(node))]
            sizes = sizes[sizes > 0]
            avg = int(tree.size[node]) // 8
            assert np.all(sizes[:-1] == avg)

    def test_pivot_strategy_selectable(self, points_2d, l2_metric):
        r_fft, _ = _build(points_2d, l2_metric, nc=8, pivot_strategy="fft")
        r_rand, _ = _build(points_2d, l2_metric, nc=8, pivot_strategy="random")
        r_center, _ = _build(points_2d, l2_metric, nc=8, pivot_strategy="center")
        for r in (r_fft, r_rand, r_center):
            r.tree.check_invariants()

    def test_unknown_pivot_strategy_rejected(self, points_2d, l2_metric, device):
        with pytest.raises(ConstructionError):
            build_tree(points_2d, np.arange(len(points_2d)), l2_metric, 8, device, pivot_strategy="nope")

    def test_subset_of_ids_indexed(self, points_2d, l2_metric, device):
        ids = np.arange(0, len(points_2d), 2)
        result = build_tree(points_2d, ids, l2_metric, 8, device)
        assert sorted(result.tree.obj_ids.tolist()) == ids.tolist()
        result.tree.check_invariants()


class TestBuildAccounting:
    def test_distance_computations_roughly_n_per_level(self, points_2d, l2_metric):
        result, _ = _build(points_2d, l2_metric, nc=8)
        n = len(points_2d)
        h = result.tree.height
        assert result.distance_computations == n * h

    def test_device_memory_charged_and_released(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        result = build_tree(points_2d, np.arange(len(points_2d)), l2_metric, 8, device)
        assert device.used_bytes > 0
        for alloc in result.allocations:
            device.free(alloc)
        assert device.used_bytes == 0

    def test_no_storage_allocation_mode(self, points_2d, l2_metric):
        device = Device(DeviceSpec())
        result = build_tree(
            points_2d, np.arange(len(points_2d)), l2_metric, 8, device, allocate_storage=False
        )
        assert result.allocations == []
        assert device.used_bytes == 0

    def test_sim_time_positive_and_scales(self, l2_metric, rng):
        small, _ = _build(rng.normal(size=(100, 2)), EuclideanDistance(), nc=8)
        large, _ = _build(rng.normal(size=(3000, 2)), EuclideanDistance(), nc=8)
        assert 0 < small.sim_time
        assert small.sim_time < large.sim_time

    def test_kernel_launches_scale_with_levels_not_objects(self, l2_metric, rng):
        d1 = Device(DeviceSpec())
        d2 = Device(DeviceSpec())
        build_tree(rng.normal(size=(500, 2)), np.arange(500), EuclideanDistance(), 8, d1)
        build_tree(rng.normal(size=(4000, 2)), np.arange(4000), EuclideanDistance(), 8, d2)
        # one extra level at most => launch counts stay within a small factor
        assert d2.stats.kernel_launches <= d1.stats.kernel_launches * 3


class TestHelpers:
    def test_take_objects_array(self, rng):
        pts = rng.normal(size=(10, 2))
        out = take_objects(pts, [1, 3])
        np.testing.assert_array_equal(out, pts[[1, 3]])

    def test_take_objects_list(self):
        assert take_objects(["a", "b", "c"], [2, 0]) == ["c", "a"]

    def test_objects_nbytes_vectors(self, rng):
        pts = rng.normal(size=(10, 4))
        assert objects_nbytes(pts) == 10 * 4 * 8
        assert objects_nbytes(pts, ids=[0, 1]) == 2 * 4 * 8

    def test_objects_nbytes_strings(self):
        assert objects_nbytes(["ab", "cde"]) == 5
        assert objects_nbytes(["ab", "cde"], ids=[1]) == 3
