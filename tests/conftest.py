"""Shared fixtures for the test suite.

Fixtures deliberately use small cardinalities: correctness is what the tests
establish; performance shapes are the benchmarks' job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_color, generate_dna, generate_tloc, generate_vector, generate_words
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EditDistance, EuclideanDistance, ManhattanDistance


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def device() -> Device:
    return Device(DeviceSpec())


@pytest.fixture
def guarded_device():
    """A device that fails the test if it ends with live allocations.

    Use for code paths that own their cleanup (index ``close()``, pager
    ``release()``); the teardown assertion turns a forgotten ``free`` into a
    :class:`~repro.exceptions.MemoryLeakError` test failure.
    """
    device = Device(DeviceSpec())
    yield device
    device.assert_no_leaks()


@pytest.fixture
def small_device() -> Device:
    """A device with very little memory, for memory-pressure tests."""
    return Device(DeviceSpec(memory_bytes=256 * 1024))


@pytest.fixture
def points_2d(rng) -> np.ndarray:
    """Clustered 2-d points (T-Loc-like)."""
    centers = rng.normal(scale=10.0, size=(6, 2))
    assignment = rng.integers(0, 6, size=600)
    return centers[assignment] + rng.normal(scale=0.5, size=(600, 2))


@pytest.fixture
def points_highdim(rng) -> np.ndarray:
    """Clustered 20-d points (Color-like, but small for speed)."""
    centers = rng.normal(scale=3.0, size=(4, 20))
    assignment = rng.integers(0, 4, size=300)
    return centers[assignment] + rng.normal(scale=0.3, size=(300, 20))


@pytest.fixture
def word_list(rng) -> list[str]:
    """A small word-like string collection for edit-distance tests."""
    roots = ["metric", "space", "index", "tree", "pivot", "query", "batch", "gpu"]
    suffixes = ["", "s", "ing", "ed", "er"]
    words = []
    for i in range(250):
        w = roots[int(rng.integers(0, len(roots)))] + suffixes[int(rng.integers(0, len(suffixes)))]
        if rng.random() < 0.3:
            w += "".join(chr(97 + int(c)) for c in rng.integers(0, 26, size=int(rng.integers(1, 4))))
        words.append(w)
    return words


@pytest.fixture
def l2_metric() -> EuclideanDistance:
    return EuclideanDistance()


@pytest.fixture
def l1_metric() -> ManhattanDistance:
    return ManhattanDistance()


@pytest.fixture
def edit_metric() -> EditDistance:
    return EditDistance(expected_length=8)


def brute_force_range(objects, metric, query, radius):
    """Reference range query used for correctness checks."""
    dists = metric.pairwise(query, objects)
    hits = [(int(i), float(d)) for i, d in enumerate(dists) if d <= radius]
    return sorted(hits, key=lambda p: (p[1], p[0]))


def brute_force_knn(objects, metric, query, k):
    """Reference kNN query used for correctness checks."""
    dists = metric.pairwise(query, objects)
    order = np.lexsort((np.arange(len(dists)), dists))[:k]
    return [(int(i), float(dists[i])) for i in order]


@pytest.fixture
def oracles():
    """Expose the brute-force reference implementations to tests."""
    return brute_force_range, brute_force_knn
