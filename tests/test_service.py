"""Tests of the concurrent query-serving layer (repro.service).

The load-bearing property is *sequential equivalence*: whatever the
scheduling policy does, the answers a served stream receives must be
identical to replaying the same stream one request at a time against a bare
index.  The rest covers the policies' dispatch decisions, the workload
generator's determinism/skew, the latency accounting, and the scheduler's
edge cases (empty streams, oversized batches, tiny devices).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import GTS, EuclideanDistance
from repro.exceptions import QueryError
from repro.gpusim import Device, DeviceSpec, ExecutionStats, PhaseTimer
from repro.service import (
    DeadlineAwarePolicy,
    GreedyBatchPolicy,
    GTSService,
    Request,
    WorkloadSpec,
    generate_workload,
    make_policy,
    sequential_replay,
    summarize,
)


@pytest.fixture
def pool(rng) -> np.ndarray:
    """Clustered points: the first 400 are indexed, the rest insertable."""
    centers = rng.normal(scale=8.0, size=(5, 2))
    return centers[rng.integers(0, 5, size=450)] + rng.normal(scale=0.4, size=(450, 2))


NUM_INDEXED = 400


def build_index(pool, **kwargs) -> GTS:
    kwargs.setdefault("node_capacity", 16)
    kwargs.setdefault("seed", 5)
    return GTS.build(pool[:NUM_INDEXED], EuclideanDistance(), **kwargs)


def make_stream(pool, *, duration=1.5e-3, deadline=None, seed=3, mix=None) -> list:
    spec = WorkloadSpec(
        num_clients=4,
        rate_per_client=40_000.0,
        duration=duration,
        radius=0.8,
        k=6,
        mix=mix or {"range": 0.35, "knn": 0.35, "insert": 0.2, "delete": 0.1},
        deadline=deadline,
        seed=seed,
    )
    return generate_workload(pool, NUM_INDEXED, spec).requests


# ---------------------------------------------------------------------------
# GTS.execute_batch — the mixed-batch entry point
# ---------------------------------------------------------------------------
class TestExecuteBatch:
    def test_matches_individual_calls(self, pool):
        index = build_index(pool)
        q = pool[:3]
        ops = [("range", q[0], 0.9), ("knn", q[1], 5), ("range", q[2], 0.4)]
        got = index.execute_batch(ops)
        assert got[0] == index.range_query(q[0], 0.9)
        assert got[1] == index.knn_query(q[1], 5)
        assert got[2] == index.range_query(q[2], 0.4)

    def test_updates_are_barriers(self, pool):
        index = build_index(pool)
        new_obj = pool[NUM_INDEXED]
        before, insert_result, after = index.execute_batch(
            [("knn", new_obj, 1), ("insert", new_obj), ("knn", new_obj, 1)]
        )
        assert insert_result == NUM_INDEXED  # ids are append-ordered
        # the query after the insert sees the new object at distance 0 ...
        assert after[0] == (NUM_INDEXED, 0.0)
        # ... the query before it does not
        assert before[0] != (NUM_INDEXED, 0.0)

    def test_delete_filters_results(self, pool):
        index = build_index(pool)
        target = int(index.knn_query(pool[0], 1)[0][0])
        results = index.execute_batch([("delete", target), ("knn", pool[0], 1)])
        assert results[0] is None
        assert results[1][0][0] != target

    def test_unknown_kind_rejected(self, pool):
        index = build_index(pool)
        with pytest.raises(QueryError):
            index.execute_batch([("frobnicate", pool[0], 1)])

    def test_empty_batch(self, pool):
        index = build_index(pool)
        assert index.execute_batch([]) == []

    def test_per_query_parameters(self, pool):
        index = build_index(pool)
        ops = [("knn", pool[0], 2), ("knn", pool[1], 7)]
        got = index.execute_batch(ops)
        assert len(got[0]) == 2 and len(got[1]) == 7


# ---------------------------------------------------------------------------
# Sequential equivalence — the serving contract
# ---------------------------------------------------------------------------
class TestSequentialEquivalence:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: GreedyBatchPolicy(max_batch_size=1, max_wait=0.0),
            lambda: GreedyBatchPolicy(max_batch_size=7, max_wait=50e-6),
            lambda: GreedyBatchPolicy(max_batch_size=64, max_wait=400e-6),
            lambda: DeadlineAwarePolicy(max_batch_size=32, max_wait=200e-6),
        ],
    )
    def test_interleaved_clients_match_direct_calls(self, pool, policy_factory):
        stream = make_stream(pool, deadline=1e-3)
        assert len({r.client_id for r in stream}) >= 3
        kinds = {r.kind for r in stream}
        assert {"range", "knn", "insert"} <= kinds

        service = GTSService(build_index(pool), policy=policy_factory())
        responses = service.serve(stream)
        expected = sequential_replay(build_index(pool), stream)

        assert len(responses) == len(stream)
        assert [r.result for r in responses] == expected

    def test_insert_visible_to_later_query_across_batches(self, pool):
        index = build_index(pool)
        service = GTSService(index, GreedyBatchPolicy(max_batch_size=2, max_wait=1e-6))
        new_obj = pool[NUM_INDEXED]
        service.submit("insert", new_obj, arrival_time=0.0)
        service.submit("knn", new_obj, k=1, arrival_time=1e-3)
        responses = service.flush()
        assert responses[0].result == NUM_INDEXED
        assert responses[1].result[0] == (NUM_INDEXED, 0.0)


# ---------------------------------------------------------------------------
# Scheduling policies
# ---------------------------------------------------------------------------
def req(request_id, arrival, deadline=None) -> Request:
    return Request(
        request_id=request_id,
        client_id=0,
        kind="knn",
        arrival_time=arrival,
        payload=None,
        k=1,
        deadline=deadline,
    )


class TestGreedyPolicy:
    def test_waits_while_batch_fills(self):
        policy = GreedyBatchPolicy(max_batch_size=4, max_wait=100e-6)
        decision = policy.decide([req(0, 0.0)], now=10e-6, next_arrival=20e-6)
        assert not decision.batch
        assert decision.wake_at == pytest.approx(100e-6)

    def test_dispatches_on_full_batch(self):
        policy = GreedyBatchPolicy(max_batch_size=2, max_wait=1.0)
        pending = [req(0, 0.0), req(1, 0.0), req(2, 0.0)]
        decision = policy.decide(pending, now=0.0, next_arrival=None)
        assert [r.request_id for r in decision.batch] == [0, 1]

    def test_dispatches_on_max_wait(self):
        policy = GreedyBatchPolicy(max_batch_size=64, max_wait=100e-6)
        decision = policy.decide([req(0, 0.0)], now=150e-6, next_arrival=1.0)
        assert len(decision.batch) == 1

    def test_flushes_when_stream_drained(self):
        policy = GreedyBatchPolicy(max_batch_size=64, max_wait=1.0)
        decision = policy.decide([req(0, 0.0)], now=0.0, next_arrival=None)
        assert len(decision.batch) == 1

    def test_empty_queue_sleeps(self):
        policy = GreedyBatchPolicy()
        decision = policy.decide([], now=0.0, next_arrival=5.0)
        assert not decision.batch and decision.wake_at == math.inf

    def test_rejects_bad_parameters(self):
        with pytest.raises(QueryError):
            GreedyBatchPolicy(max_batch_size=0)
        with pytest.raises(QueryError):
            GreedyBatchPolicy(max_wait=-1.0)


class TestDeadlinePolicy:
    def test_dispatches_before_deadline_unmeetable(self):
        policy = DeadlineAwarePolicy(
            max_batch_size=64,
            max_wait=10.0,
            initial_request_estimate=10e-6,
            initial_overhead_estimate=10e-6,
            safety=1.0,
        )
        pending = [req(0, 0.0, deadline=100e-6)]
        est = policy.estimated_service_time(1)
        # well before (deadline - est) the policy keeps waiting ...
        early = policy.decide(pending, now=0.0, next_arrival=1.0)
        assert not early.batch and early.wake_at == pytest.approx(100e-6 - est)
        # ... and at the latest viable start it cuts the batch
        late = policy.decide(pending, now=100e-6 - est, next_arrival=1.0)
        assert len(late.batch) == 1

    def test_observe_learns_service_time(self):
        policy = DeadlineAwarePolicy(
            initial_request_estimate=1e-6, initial_overhead_estimate=0.0, smoothing=1.0
        )
        policy.observe(batch_size=10, service_time=100e-6)
        assert policy.estimated_service_time(10) > 100e-6  # safety-inflated

    def test_meets_deadlines_where_lazy_greedy_misses(self, pool):
        stream = make_stream(pool, deadline=120e-6, mix={"range": 0.5, "knn": 0.5})
        lazy = GTSService(
            build_index(pool), GreedyBatchPolicy(max_batch_size=256, max_wait=2e-3)
        )
        lazy_report = summarize(lazy.serve(stream), lazy.batches)
        aware = GTSService(
            build_index(pool), DeadlineAwarePolicy(max_batch_size=256, max_wait=2e-3)
        )
        aware_report = summarize(aware.serve(stream), aware.batches)

        assert lazy_report.deadline_miss_rate > 0
        assert aware_report.deadline_miss_rate < lazy_report.deadline_miss_rate
        # deadline pressure forces smaller, earlier batches
        assert aware_report.mean_batch_size < lazy_report.mean_batch_size

    def test_registry(self):
        assert isinstance(make_policy("greedy", max_batch_size=3), GreedyBatchPolicy)
        assert isinstance(make_policy("deadline"), DeadlineAwarePolicy)
        with pytest.raises(QueryError):
            make_policy("nope")


# ---------------------------------------------------------------------------
# Scheduler / service edge cases
# ---------------------------------------------------------------------------
class TestServiceEdgeCases:
    def test_empty_stream(self, pool):
        service = GTSService(build_index(pool))
        assert service.serve([]) == []
        assert service.batches == []
        report = summarize([], service.batches)
        assert report.num_requests == 0 and report.throughput == 0.0
        assert "0 micro-batches" in report.to_text()

    def test_empty_dispatch_rejected(self, pool):
        service = GTSService(build_index(pool))
        with pytest.raises(QueryError):
            service._dispatch([], now=0.0)

    def test_non_prefix_policy_rejected(self, pool):
        # a policy violating the arrival-order prefix contract must fail
        # loudly, not silently drop/duplicate requests
        class SkipAheadPolicy(GreedyBatchPolicy):
            def decide(self, pending, now, next_arrival):
                decision = super().decide(pending, now, next_arrival)
                if len(decision.batch) > 1:
                    decision.batch.reverse()
                return decision

        service = GTSService(build_index(pool), SkipAheadPolicy(max_batch_size=8))
        with pytest.raises(QueryError, match="non-prefix"):
            service.serve(make_stream(pool))

    def test_oversized_wave_is_chunked(self, pool):
        # 300 requests arriving at the same instant, budget 32: the scheduler
        # must cut ceil(300/32) batches, not crash or drop requests.
        stream = [
            Request(request_id=i, client_id=i % 5, kind="knn",
                    arrival_time=0.0, payload=pool[i % NUM_INDEXED], k=3)
            for i in range(300)
        ]
        service = GTSService(build_index(pool), GreedyBatchPolicy(max_batch_size=32))
        responses = service.serve(stream)
        assert len(responses) == 300
        assert max(b.size for b in service.batches) <= 32
        assert len(service.batches) == math.ceil(300 / 32)

    def test_big_batch_on_tiny_device_uses_two_stage_grouping(self, pool):
        # A batch far beyond the device's intermediate-table budget must still
        # be answered (the index's two-stage grouping splits it internally).
        device = Device(DeviceSpec(memory_bytes=256 * 1024))
        index = build_index(pool, device=device)
        stream = [
            Request(request_id=i, client_id=0, kind="range",
                    arrival_time=0.0, payload=pool[i % NUM_INDEXED], radius=0.8)
            for i in range(128)
        ]
        service = GTSService(index, GreedyBatchPolicy(max_batch_size=128))
        responses = service.serve(stream)
        expected = sequential_replay(build_index(pool), stream)
        assert [r.result for r in responses] == expected

    def test_latency_accounting_consistent(self, pool):
        service = GTSService(build_index(pool), GreedyBatchPolicy(max_batch_size=8))
        responses = service.serve(make_stream(pool))
        for response in responses:
            assert response.queue_time >= 0
            assert response.latency == pytest.approx(
                response.queue_time + response.dispatch_time + response.kernel_time
            )
            assert response.completed_at == pytest.approx(
                response.request.arrival_time + response.latency
            )
        # per-request attribution sums back to the batch totals
        for record in service.batches:
            share = sum(
                r.attributed_stats.sim_time
                for r in responses
                if r.batch_id == record.batch_id
            )
            assert share == pytest.approx(record.service_time, rel=1e-9)

    def test_batches_never_overlap_in_time(self, pool):
        service = GTSService(build_index(pool), GreedyBatchPolicy(max_batch_size=16))
        service.serve(make_stream(pool))
        records = service.batches
        for earlier, later in zip(records, records[1:]):
            assert later.dispatched_at >= earlier.completed_at


# ---------------------------------------------------------------------------
# Workload generator
# ---------------------------------------------------------------------------
class TestWorkloadGenerator:
    def test_deterministic(self, pool):
        a = make_stream(pool, seed=9)
        b = make_stream(pool, seed=9)
        assert len(a) == len(b) > 0
        for x, y in zip(a, b):
            assert (x.kind, x.arrival_time, x.client_id) == (y.kind, y.arrival_time, y.client_id)

    def test_arrival_order_and_rate(self, pool):
        stream = make_stream(pool, duration=2e-3)
        arrivals = [r.arrival_time for r in stream]
        assert arrivals == sorted(arrivals)
        assert all(0 < t <= 2e-3 for t in arrivals)
        # 4 clients x 40k/s x 2ms = 320 expected; allow generous Poisson noise
        assert 200 <= len(stream) <= 480

    def test_hot_key_skew(self, pool):
        spec = WorkloadSpec(
            num_clients=2, rate_per_client=300_000.0, duration=2e-3,
            mix={"knn": 1.0}, radius=0.5, zipf_theta=1.2, seed=4,
        )
        requests = generate_workload(pool, NUM_INDEXED, spec).requests
        counts: dict = {}
        for r in requests:
            counts[r.payload.tobytes()] = counts.get(r.payload.tobytes(), 0) + 1
        top = sorted(counts.values(), reverse=True)
        # the hottest key dominates a uniform draw's expectation many-fold
        assert top[0] > 5 * len(requests) / NUM_INDEXED

    def test_deletes_only_target_prior_inserts(self, pool):
        stream = make_stream(pool, seed=21)
        inserted_so_far = set()
        next_id = NUM_INDEXED
        for r in stream:
            if r.kind == "insert":
                inserted_so_far.add(next_id)
                next_id += 1
            elif r.kind == "delete":
                assert r.payload in inserted_so_far
                inserted_so_far.discard(r.payload)

    def test_invalid_specs_rejected(self):
        with pytest.raises(QueryError):
            WorkloadSpec(num_clients=0)
        with pytest.raises(QueryError):
            WorkloadSpec(zipf_theta=0.5)
        with pytest.raises(QueryError):
            WorkloadSpec(mix={"teleport": 1.0})
        with pytest.raises(QueryError):
            WorkloadSpec(mix={})


# ---------------------------------------------------------------------------
# Stats attribution primitives (gpusim)
# ---------------------------------------------------------------------------
class TestStatsAttribution:
    def test_scale_splits_additive_counters(self):
        stats = ExecutionStats(
            kernel_launches=4, total_ops=100.0, sim_time=8.0, peak_memory_bytes=512
        )
        share = stats.scale(0.25)
        assert share.kernel_launches == 1
        assert share.total_ops == pytest.approx(25.0)
        assert share.sim_time == pytest.approx(2.0)
        assert share.peak_memory_bytes == 512  # high-water mark, not additive

    def test_scale_shares_sum_to_batch_totals(self):
        # counters stay fractional so n shares reproduce the batch exactly
        stats = ExecutionStats(kernel_launches=5, bytes_to_device=100, allocations=3)
        n = 64
        share = stats.scale(1.0 / n)
        assert share.kernel_launches * n == pytest.approx(5)
        assert share.bytes_to_device * n == pytest.approx(100)
        assert share.allocations * n == pytest.approx(3)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            ExecutionStats().scale(-1.0)

    def test_phase_timer_accumulates(self, device):
        timer = PhaseTimer(device)
        with timer.phase("a"):
            device.launch_kernel(work_items=100)
        with timer.phase("b"):
            device.launch_kernel(work_items=200)
        with timer.phase("a"):
            device.launch_kernel(work_items=100)
        assert timer.stats["a"].kernel_launches == 2
        assert timer.stats["b"].kernel_launches == 1
        assert timer.sim_time("a") > 0
        assert timer.sim_time("missing") == 0.0
        assert timer.total_sim_time == pytest.approx(
            timer.sim_time("a") + timer.sim_time("b")
        )


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------
class TestReport:
    def test_percentiles_monotone_and_breakdown_sums(self, pool):
        service = GTSService(build_index(pool), GreedyBatchPolicy(max_batch_size=16))
        responses = service.serve(make_stream(pool, deadline=5e-3))
        report = summarize(responses, service.batches)
        s = report.latency
        assert 0 <= s.p50 <= s.p90 <= s.p99 <= s.max
        assert report.num_requests == len(responses)
        assert set(report.per_kind) == {r.request.kind for r in responses}
        assert report.throughput > 0 and report.capacity > 0
        assert report.device_busy_time <= report.makespan + 1e-12
        assert report.deadline_miss_rate == 0.0
        text = report.to_text("unit test")
        assert "p99" in text and "micro-batches" in text
