"""Correctness tests for batch MRQ (Algorithm 4) and batch MkNNQ (Algorithm 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import build_tree
from repro.core.knn_query import batch_knn_query
from repro.core.range_query import batch_range_query
from repro.core.searchcommon import PruneMode
from repro.exceptions import QueryError
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EditDistance, EuclideanDistance
from tests.conftest import brute_force_knn, brute_force_range


def _build(objects, metric, nc=8):
    device = Device(DeviceSpec())
    result = build_tree(objects, np.arange(len(objects)), metric, nc, device)
    return result.tree, device


class TestRangeQueryCorrectness:
    @pytest.mark.parametrize("nc", [2, 4, 20, 64])
    def test_matches_brute_force_2d(self, points_2d, l2_metric, nc):
        tree, device = _build(points_2d, l2_metric, nc=nc)
        queries = [points_2d[i] + 0.05 for i in range(10)]
        radius = 1.0
        got = batch_range_query(tree, points_2d, l2_metric, device, queries, radius)
        for qi, query in enumerate(queries):
            expected = brute_force_range(points_2d, l2_metric, query, radius)
            assert [o for o, _ in got[qi]] == [o for o, _ in expected]

    def test_matches_brute_force_strings(self, word_list, edit_metric):
        tree, device = _build(word_list, edit_metric, nc=4)
        queries = ["metric", "pivott", "xyz"]
        got = batch_range_query(tree, word_list, edit_metric, device, queries, 2.0)
        for qi, query in enumerate(queries):
            expected = brute_force_range(word_list, edit_metric, query, 2.0)
            assert set(o for o, _ in got[qi]) == set(o for o, _ in expected)

    def test_per_query_radii(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        queries = [points_2d[0], points_2d[1]]
        radii = [0.5, 2.0]
        got = batch_range_query(tree, points_2d, l2_metric, device, queries, radii)
        for qi in range(2):
            expected = brute_force_range(points_2d, l2_metric, queries[qi], radii[qi])
            assert set(o for o, _ in got[qi]) == set(o for o, _ in expected)

    def test_zero_radius_returns_exact_duplicates_only(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_range_query(tree, points_2d, l2_metric, device, [points_2d[7]], 0.0)
        assert all(d == 0.0 for _, d in got[0])
        assert 7 in {o for o, _ in got[0]}

    def test_radius_larger_than_diameter_returns_everything(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]], 1e9)
        assert len(got[0]) == len(points_2d)

    def test_results_sorted_by_distance(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]], 3.0)[0]
        dists = [d for _, d in got]
        assert dists == sorted(dists)

    def test_negative_radius_rejected(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        with pytest.raises(QueryError):
            batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]], -1.0)

    def test_empty_query_batch(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        assert batch_range_query(tree, points_2d, l2_metric, device, [], 1.0) == []

    def test_exclude_hides_objects(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        query = points_2d[11]
        full = batch_range_query(tree, points_2d, l2_metric, device, [query], 1.0)[0]
        assert 11 in {o for o, _ in full}
        hidden = batch_range_query(
            tree, points_2d, l2_metric, device, [query], 1.0, exclude={11}
        )[0]
        assert 11 not in {o for o, _ in hidden}
        assert {o for o, _ in hidden} == {o for o, _ in full} - {11}

    def test_one_sided_mode_still_exact(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        queries = [points_2d[i] for i in range(5)]
        two = batch_range_query(tree, points_2d, l2_metric, device, queries, 1.0, prune_mode="two-sided")
        one = batch_range_query(tree, points_2d, l2_metric, device, queries, 1.0, prune_mode="one-sided")
        for a, b in zip(two, one):
            assert set(o for o, _ in a) == set(o for o, _ in b)

    def test_one_sided_mode_computes_more_distances(self, points_highdim, l1_metric):
        tree, device = _build(points_highdim, l1_metric, nc=4)
        queries = [points_highdim[i] for i in range(8)]
        l1_metric.reset_counter()
        batch_range_query(tree, points_highdim, l1_metric, device, queries, 2.0, prune_mode="two-sided")
        two_sided = l1_metric.pair_count
        l1_metric.reset_counter()
        batch_range_query(tree, points_highdim, l1_metric, device, queries, 2.0, prune_mode="one-sided")
        one_sided = l1_metric.pair_count
        assert one_sided >= two_sided

    def test_pruning_reduces_distance_computations(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric, nc=8)
        l2_metric.reset_counter()
        batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]], 0.5)
        assert l2_metric.pair_count < len(points_2d)

    def test_duplicate_heavy_dataset_exact(self, l2_metric, rng):
        base = rng.normal(size=(30, 2))
        pts = base[rng.integers(0, 30, size=400)]
        tree, device = _build(pts, l2_metric, nc=4)
        got = batch_range_query(tree, pts, l2_metric, device, [pts[0]], 0.2)[0]
        expected = brute_force_range(pts, l2_metric, pts[0], 0.2)
        assert set(o for o, _ in got) == set(o for o, _ in expected)

    def test_unknown_prune_mode_rejected(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        with pytest.raises(QueryError):
            batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]], 1.0, prune_mode="bogus")


class TestKnnQueryCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_distances_match_brute_force(self, points_2d, l2_metric, k):
        tree, device = _build(points_2d, l2_metric)
        queries = [points_2d[i] + 0.03 for i in range(8)]
        got = batch_knn_query(tree, points_2d, l2_metric, device, queries, k)
        for qi, query in enumerate(queries):
            expected = brute_force_knn(points_2d, l2_metric, query, k)
            np.testing.assert_allclose(
                sorted(d for _, d in got[qi]), sorted(d for _, d in expected), atol=1e-9
            )

    def test_string_knn(self, word_list, edit_metric):
        tree, device = _build(word_list, edit_metric, nc=4)
        got = batch_knn_query(tree, word_list, edit_metric, device, ["metric"], 5)[0]
        expected = brute_force_knn(word_list, edit_metric, "metric", 5)
        assert sorted(d for _, d in got) == sorted(d for _, d in expected)

    def test_k_exceeding_dataset_returns_all(self, l2_metric, rng):
        pts = rng.normal(size=(20, 2))
        tree, device = _build(pts, l2_metric, nc=4)
        got = batch_knn_query(tree, pts, l2_metric, device, [pts[0]], 100)[0]
        assert len(got) == 20

    def test_k_one_returns_nearest(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[5]], 1)[0]
        assert got[0][0] == 5 and got[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_per_query_k(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[0], points_2d[1]], [1, 4])
        assert len(got[0]) == 1 and len(got[1]) == 4

    def test_invalid_k_rejected(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        with pytest.raises(QueryError):
            batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[0]], 0)

    def test_results_sorted_and_unique(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[0]], 10)[0]
        ids = [o for o, _ in got]
        dists = [d for _, d in got]
        assert len(set(ids)) == len(ids)
        assert dists == sorted(dists)

    def test_exclude_hides_objects(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        got = batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[3]], 5, exclude={3})[0]
        assert 3 not in {o for o, _ in got}
        assert len(got) == 5

    def test_one_sided_mode_still_exact(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        queries = [points_2d[i] for i in range(5)]
        two = batch_knn_query(tree, points_2d, l2_metric, device, queries, 7, prune_mode="two-sided")
        one = batch_knn_query(tree, points_2d, l2_metric, device, queries, 7, prune_mode="one-sided")
        for a, b in zip(two, one):
            np.testing.assert_allclose([d for _, d in a], [d for _, d in b], atol=1e-9)

    def test_pruning_reduces_distance_computations(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric, nc=8)
        l2_metric.reset_counter()
        batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[0]], 3)
        assert l2_metric.pair_count < len(points_2d)

    def test_empty_query_batch(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        assert batch_knn_query(tree, points_2d, l2_metric, device, [], 3) == []

    def test_degenerate_single_leaf_tree(self, l2_metric, rng):
        pts = rng.normal(size=(5, 2))
        tree, device = _build(pts, l2_metric, nc=16)
        assert tree.height == 0
        got = batch_knn_query(tree, pts, l2_metric, device, [pts[2]], 2)[0]
        expected = brute_force_knn(pts, l2_metric, pts[2], 2)
        np.testing.assert_allclose([d for _, d in got], [d for _, d in expected])


class TestDeviceAccountingDuringQueries:
    def test_intermediate_memory_is_released(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        used_before = device.used_bytes
        batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]] * 16, 1.0)
        batch_knn_query(tree, points_2d, l2_metric, device, [points_2d[0]] * 16, 5)
        assert device.used_bytes == used_before

    def test_kernel_launches_recorded(self, points_2d, l2_metric):
        tree, device = _build(points_2d, l2_metric)
        before = device.stats.kernel_launches
        batch_range_query(tree, points_2d, l2_metric, device, [points_2d[0]] * 8, 1.0)
        assert device.stats.kernel_launches > before

    def test_batch_cheaper_than_sequential_per_query(self, points_2d, l2_metric):
        """Answering 32 queries in one batch takes less simulated time than 32 batches of 1."""
        tree, device = _build(points_2d, l2_metric)
        queries = [points_2d[i] for i in range(32)]
        before = device.stats.sim_time
        batch_range_query(tree, points_2d, l2_metric, device, queries, 1.0)
        batched = device.stats.sim_time - before
        before = device.stats.sim_time
        for q in queries:
            batch_range_query(tree, points_2d, l2_metric, device, [q], 1.0)
        sequential = device.stats.sim_time - before
        assert batched < sequential
