"""Correctness tests for the related-work CPU baselines.

LAESA, List of Clusters (LC), Extreme Pivots (EPT), M-tree and GNAT are the
CPU metric indexes the paper's Section 2 surveys; they share the
:class:`~repro.baselines.base.SimilarityIndex` surface, so this module runs
the same exactness/update battery as ``test_baselines_cpu`` plus a handful of
method-specific checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GNAT,
    LAESA,
    ExtremePivotsTable,
    LinearScan,
    ListOfClusters,
    MTree,
    available_methods,
    get_method,
)
from repro.exceptions import BaselineError
from repro.metrics import EditDistance, EuclideanDistance
from tests.conftest import brute_force_knn, brute_force_range

EXTENDED_CLASSES = [LAESA, ListOfClusters, ExtremePivotsTable, MTree, GNAT]


def _ids(results):
    return {o for o, _ in results}


@pytest.mark.parametrize("cls", EXTENDED_CLASSES)
class TestExtendedBaselineCorrectness:
    def test_range_query_matches_brute_force(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        for qi in (0, 17, 101):
            query = points_2d[qi] + 0.02
            got = index.range_query(query, 0.9)
            expected = brute_force_range(points_2d, l2_metric, query, 0.9)
            assert _ids(got) == _ids(expected)

    def test_range_query_various_radii(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        query = points_2d[50] * 1.01
        for radius in (0.0, 0.25, 2.0, 50.0):
            got = index.range_query(query, radius)
            expected = brute_force_range(points_2d, l2_metric, query, radius)
            assert _ids(got) == _ids(expected)

    def test_knn_matches_brute_force(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        for qi in (3, 42):
            got = index.knn_query(points_2d[qi] + 0.01, 6)
            expected = brute_force_knn(points_2d, l2_metric, points_2d[qi] + 0.01, 6)
            np.testing.assert_allclose(
                sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
            )

    def test_knn_batch_matches_single(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        queries = [points_2d[5], points_2d[77] + 0.1]
        batch = index.knn_query_batch(queries, 4)
        singles = [index.knn_query(q, 4) for q in queries]
        for got, expected in zip(batch, singles):
            assert sorted(d for _, d in got) == pytest.approx(sorted(d for _, d in expected))

    def test_string_dataset(self, cls, word_list):
        index = cls(EditDistance())
        index.build(word_list)
        oracle_metric = EditDistance()
        got = index.range_query("metric", 1)
        expected = brute_force_range(word_list, oracle_metric, "metric", 1)
        assert _ids(got) == _ids(expected)

    def test_highdim_dataset(self, cls, points_highdim, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_highdim)
        query = points_highdim[11] + 0.05
        got = index.range_query(query, 1.5)
        expected = brute_force_range(points_highdim, l2_metric, query, 1.5)
        assert _ids(got) == _ids(expected)

    def test_empty_build_rejected(self, cls):
        with pytest.raises(BaselineError):
            cls(EuclideanDistance()).build([])

    def test_query_before_build_rejected(self, cls):
        index = cls(EuclideanDistance())
        with pytest.raises(BaselineError):
            index.range_query([0.0, 0.0], 1.0)

    def test_insert_visible(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        new = np.array([500.0, 500.0])
        obj_id = index.insert(new)
        got = index.range_query(new, 0.1)
        assert obj_id in _ids(got)

    def test_insert_then_knn_exact(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        inserted = [np.array([40.0 + i, -40.0]) for i in range(5)]
        for obj in inserted:
            index.insert(obj)
        got = index.knn_query(np.array([42.0, -40.0]), 3)
        all_points = list(points_2d) + inserted
        expected = brute_force_knn(all_points, l2_metric, np.array([42.0, -40.0]), 3)
        assert sorted(d for _, d in got) == pytest.approx(sorted(d for _, d in expected))

    def test_delete_hides_object(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        index.delete(0)
        got = index.range_query(points_2d[0], 1e-9)
        assert 0 not in _ids(got)
        assert index.num_objects == len(points_2d) - 1

    def test_delete_unknown_rejected(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        with pytest.raises(BaselineError):
            index.delete(10_000)

    def test_delete_twice_rejected(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        index.delete(3)
        with pytest.raises(BaselineError):
            index.delete(3)

    def test_batch_update_then_query_exact(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        index.batch_update(inserts=[np.array([300.0, 300.0])], deletes=[0, 1])
        got = index.knn_query(np.array([300.0, 300.0]), 1)
        assert got[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_range_after_delete_matches_brute_force(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        removed = {2, 7, 11}
        for obj_id in removed:
            index.delete(obj_id)
        query = points_2d[2] + 0.01
        got = index.range_query(query, 1.0)
        survivors = [p for i, p in enumerate(points_2d) if i not in removed]
        expected = brute_force_range(survivors, l2_metric, query, 1.0)
        assert len(got) == len(expected)
        assert not (_ids(got) & removed)

    def test_sim_stats_accumulate(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        before = index.sim_stats.sim_time
        index.knn_query(points_2d[0], 3)
        assert index.sim_stats.sim_time >= before

    def test_storage_reported(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        assert index.storage_bytes > 0

    def test_prunes_distance_computations(self, cls, points_2d):
        metric = EuclideanDistance()
        index = cls(metric)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query(points_2d[0], 0.3)
        assert metric.pair_count < len(points_2d)

    def test_duplicate_objects_handled(self, cls, rng):
        pts = np.tile(rng.normal(size=(5, 2)), (30, 1))
        metric = EuclideanDistance()
        index = cls(metric)
        index.build(pts)
        got = index.knn_query(pts[0], 4)
        assert len(got) == 4
        assert all(d == pytest.approx(0.0, abs=1e-12) for _, d in got)

    def test_registered_in_method_registry(self, cls):
        registered = {type(get_method(name, EuclideanDistance())) for name in available_methods()}
        assert cls in registered


class TestLAESASpecifics:
    def test_invalid_pivot_count(self):
        with pytest.raises(BaselineError):
            LAESA(EuclideanDistance(), num_pivots=0)

    def test_pivot_count_capped_by_dataset(self, rng):
        pts = rng.normal(size=(5, 2))
        index = LAESA(EuclideanDistance(), num_pivots=64)
        index.build(pts)
        assert len(index._pivot_ids) == 5

    def test_deleted_pivot_still_filters(self, points_2d, l2_metric):
        index = LAESA(EuclideanDistance(), num_pivots=8)
        index.build(points_2d)
        pivot = index._pivot_ids[0]
        index.delete(pivot)
        query = points_2d[pivot] + 0.01
        got = index.range_query(query, 0.8)
        assert pivot not in _ids(got)
        survivors = [p for i, p in enumerate(points_2d) if i != pivot]
        expected = brute_force_range(survivors, l2_metric, query, 0.8)
        assert len(got) == len(expected)

    def test_more_pivots_prune_more(self, points_2d):
        few_metric = EuclideanDistance()
        few = LAESA(few_metric, num_pivots=2)
        few.build(points_2d)
        many_metric = EuclideanDistance()
        many = LAESA(many_metric, num_pivots=24)
        many.build(points_2d)
        few_metric.reset_counter()
        many_metric.reset_counter()
        query = points_2d[10] + 0.02
        few.range_query(query, 0.5)
        many.range_query(query, 0.5)
        # 24 pivots cost 24 query-to-pivot distances but screen out far more
        # candidates than 2 pivots do on a clustered dataset
        assert many_metric.pair_count < few_metric.pair_count + 30

    def test_table_shape(self, points_2d):
        index = LAESA(EuclideanDistance(), num_pivots=8)
        index.build(points_2d)
        assert index._table.shape == (len(points_2d), 8)


class TestListOfClustersSpecifics:
    def test_invalid_bucket_size(self):
        with pytest.raises(BaselineError):
            ListOfClusters(EuclideanDistance(), bucket_size=0)

    def test_every_object_in_exactly_one_cluster(self, points_2d):
        index = ListOfClusters(EuclideanDistance(), bucket_size=20)
        index.build(points_2d)
        seen: list[int] = []
        for cluster in index._clusters:
            seen.append(cluster.center_id)
            seen.extend(cluster.member_ids)
        assert sorted(seen) == list(range(len(points_2d)))

    def test_covering_radius_is_max_member_distance(self, points_2d):
        index = ListOfClusters(EuclideanDistance(), bucket_size=20)
        index.build(points_2d)
        for cluster in index._clusters:
            if cluster.member_dists:
                assert cluster.covering_radius == pytest.approx(max(cluster.member_dists))
            else:
                assert cluster.covering_radius == 0.0

    def test_insert_outside_every_ball_creates_new_cluster(self, points_2d):
        index = ListOfClusters(EuclideanDistance(), bucket_size=20)
        index.build(points_2d)
        before = len(index._clusters)
        index.insert(np.array([1e6, 1e6]))
        assert len(index._clusters) == before + 1

    def test_deleted_center_still_prunes(self, points_2d, l2_metric):
        index = ListOfClusters(EuclideanDistance(), bucket_size=20)
        index.build(points_2d)
        center = index._clusters[0].center_id
        index.delete(center)
        query = points_2d[center] + 0.01
        got = index.range_query(query, 0.7)
        assert center not in _ids(got)
        survivors = [p for i, p in enumerate(points_2d) if i != center]
        expected = brute_force_range(survivors, l2_metric, query, 0.7)
        assert len(got) == len(expected)


class TestEPTSpecifics:
    def test_invalid_groups(self):
        with pytest.raises(BaselineError):
            ExtremePivotsTable(EuclideanDistance(), num_groups=0)

    def test_selected_distance_is_consistent(self, points_2d, l2_metric):
        index = ExtremePivotsTable(EuclideanDistance(), num_groups=3, pivots_per_group=3)
        index.build(points_2d)
        for obj_id in (0, 10, 57):
            for g, pivots in enumerate(index._group_pivots):
                chosen = int(index._selected[obj_id, g])
                stored = index._selected_dist[obj_id, g]
                real = l2_metric.distance(points_2d[obj_id], pivots[chosen])
                assert stored == pytest.approx(real)

    def test_more_groups_prune_more(self, points_2d):
        loose_metric = EuclideanDistance()
        loose = ExtremePivotsTable(loose_metric, num_groups=1, pivots_per_group=1)
        loose.build(points_2d)
        tight_metric = EuclideanDistance()
        tight = ExtremePivotsTable(tight_metric, num_groups=6, pivots_per_group=4)
        tight.build(points_2d)
        query = points_2d[25] + 0.03
        loose_metric.reset_counter()
        tight_metric.reset_counter()
        loose.range_query(query, 0.5)
        tight.range_query(query, 0.5)
        assert tight_metric.pair_count < loose_metric.pair_count + 30


class TestMTreeSpecifics:
    def test_invalid_fanout(self):
        with pytest.raises(BaselineError):
            MTree(EuclideanDistance(), fanout=1)

    def test_invalid_leaf_size(self):
        with pytest.raises(BaselineError):
            MTree(EuclideanDistance(), leaf_size=0)

    def test_covering_radii_cover_subtrees(self, points_2d, l2_metric):
        index = MTree(EuclideanDistance(), fanout=4, leaf_size=8)
        index.build(points_2d)

        def check(node):
            for entry in node.entries:
                if entry.child is None:
                    continue
                for obj_id, dist in _subtree_objects(entry.child, entry.obj, l2_metric):
                    assert dist <= entry.covering_radius + 1e-9
                check(entry.child)

        def _subtree_objects(node, routing_obj, metric):
            for entry in node.entries:
                yield entry.obj_id, metric.distance(entry.obj, routing_obj)
                if entry.child is not None:
                    yield from _subtree_objects(entry.child, routing_obj, metric)

        check(index._root)

    def test_structural_insert_cheaper_than_rebuild(self, points_2d):
        metric = EuclideanDistance()
        index = MTree(metric)
        index.build(points_2d)
        build_distances = metric.pair_count
        metric.reset_counter()
        index.insert(np.array([1.0, 1.0]))
        assert metric.pair_count < build_distances / 10

    def test_results_never_duplicated(self, points_2d):
        index = MTree(EuclideanDistance(), fanout=4, leaf_size=8)
        index.build(points_2d)
        got = index.range_query(points_2d[0], 5.0)
        ids = [obj_id for obj_id, _ in got]
        assert len(ids) == len(set(ids))


class TestGNATSpecifics:
    def test_invalid_fanout(self):
        with pytest.raises(BaselineError):
            GNAT(EuclideanDistance(), fanout=1)

    def test_range_tables_cover_groups(self, points_2d, l2_metric):
        index = GNAT(EuclideanDistance(), fanout=4, leaf_size=8)
        index.build(points_2d)

        def collect(node):
            ids = list(node.object_ids) + list(node.split_ids)
            for child in node.children:
                ids.extend(collect(child))
            return ids

        root = index._root
        if root.is_leaf:
            pytest.skip("dataset too small to split")
        for i, split_obj in enumerate(root.split_objs):
            for j, child in enumerate(root.children):
                lo, hi = root.ranges[i][j]
                members = collect(child)
                if not members:
                    assert lo > hi  # empty sentinel
                    continue
                dists = [l2_metric.distance(points_2d[m], split_obj) for m in members]
                assert min(dists) >= lo - 1e-9
                assert max(dists) <= hi + 1e-9

    def test_deleted_split_point_still_prunes(self, points_2d, l2_metric):
        index = GNAT(EuclideanDistance(), fanout=4, leaf_size=8)
        index.build(points_2d)
        split = index._root.split_ids[0]
        index.delete(split)
        query = points_2d[split] + 0.01
        got = index.range_query(query, 0.6)
        assert split not in _ids(got)
        survivors = [p for i, p in enumerate(points_2d) if i != split]
        expected = brute_force_range(survivors, l2_metric, query, 0.6)
        assert len(got) == len(expected)

    def test_prunes_against_linear_scan(self, points_2d):
        gnat_metric = EuclideanDistance()
        index = GNAT(gnat_metric, fanout=6, leaf_size=12)
        index.build(points_2d)
        scan_metric = EuclideanDistance()
        scan = LinearScan(scan_metric)
        scan.build(points_2d)
        gnat_metric.reset_counter()
        scan_metric.reset_counter()
        query = points_2d[0] + 0.01
        index.range_query(query, 0.3)
        scan.range_query(query, 0.3)
        assert gnat_metric.pair_count < scan_metric.pair_count
