"""Tests for the multi-column extension (Section 5.2, Remark): MultiColumnGTS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multimetric import MultiColumnGTS
from repro.exceptions import IndexError_, QueryError
from repro.metrics import EditDistance, EuclideanDistance


@pytest.fixture
def records(rng):
    """Two-column records: a 2-d location plus a short text label."""
    labels = ["cafe", "bar", "museum", "park", "station", "market", "cinema", "library"]
    out = []
    for _ in range(180):
        location = rng.normal(scale=5.0, size=2)
        label = labels[int(rng.integers(0, len(labels)))]
        if rng.random() < 0.3:
            label = label + "s"
        out.append((location, label))
    return out


@pytest.fixture
def index(records):
    return MultiColumnGTS.build(
        records,
        metrics=[EuclideanDistance(), EditDistance()],
        weights=[1.0, 0.5],
        node_capacity=8,
    )


def brute_force_aggregate(records, metrics, weights, query):
    dists = []
    for record in records:
        total = sum(
            w * m.distance(qv, rv) for qv, rv, m, w in zip(query, record, metrics, weights)
        )
        dists.append(total)
    return np.asarray(dists)


class TestConstruction:
    def test_build_and_sizes(self, index, records):
        assert index.num_records == len(records)
        assert index.num_columns == 2
        assert len(index) == len(records)

    def test_column_access(self, index):
        assert index.column(0).num_objects == index.num_records
        assert index.column(1).num_objects == index.num_records

    def test_get_record_roundtrip(self, index, records):
        loc, label = index.get_record(3)
        np.testing.assert_array_equal(loc, records[3][0])
        assert label == records[3][1]
        with pytest.raises(IndexError_):
            index.get_record(10_000)

    def test_requires_metrics(self):
        with pytest.raises(IndexError_):
            MultiColumnGTS(metrics=[])

    def test_weight_validation(self):
        with pytest.raises(IndexError_):
            MultiColumnGTS([EuclideanDistance()], weights=[1.0, 2.0])
        with pytest.raises(IndexError_):
            MultiColumnGTS([EuclideanDistance()], weights=[-1.0])

    def test_column_count_validation(self):
        index = MultiColumnGTS([EuclideanDistance(), EditDistance()])
        with pytest.raises(IndexError_):
            index.bulk_load([(np.zeros(2),)])

    def test_empty_bulk_load_rejected(self):
        index = MultiColumnGTS([EuclideanDistance()])
        with pytest.raises(IndexError_):
            index.bulk_load([])

    def test_query_before_build_rejected(self):
        index = MultiColumnGTS([EuclideanDistance(), EditDistance()])
        with pytest.raises(IndexError_):
            index.knn_query((np.zeros(2), "cafe"), 3)


class TestMultiColumnRangeQuery:
    def test_conjunctive_semantics(self, index, records):
        query = (records[0][0], records[0][1])
        hits = index.range_query(query, radii=[1.0, 1.0])
        ids = {oid for oid, _ in hits}
        l2, edit = EuclideanDistance(), EditDistance()
        expected = {
            i
            for i, (loc, label) in enumerate(records)
            if l2.distance(query[0], loc) <= 1.0 and edit.distance(query[1], label) <= 1.0
        }
        assert ids == expected
        assert 0 in ids

    def test_returns_per_column_distances(self, index, records):
        query = (records[5][0], records[5][1])
        hits = index.range_query(query, radii=[0.5, 0.0])
        for oid, dists in hits:
            assert len(dists) == 2
            assert dists[0] <= 0.5 and dists[1] <= 0.0

    def test_zero_radius_returns_exact_duplicates(self, index, records):
        query = (records[7][0], records[7][1])
        hits = index.range_query(query, radii=[0.0, 0.0])
        assert 7 in {oid for oid, _ in hits}

    def test_empty_result_possible(self, index):
        hits = index.range_query((np.array([1e6, 1e6]), "zzzzzz"), radii=[0.1, 0.0])
        assert hits == []

    def test_dimension_validation(self, index):
        with pytest.raises(QueryError):
            index.range_query((np.zeros(2),), radii=[1.0])


class TestMultiColumnKnn:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force_aggregate(self, index, records, k):
        metrics = [EuclideanDistance(), EditDistance()]
        weights = [1.0, 0.5]
        query = (records[11][0] + 0.05, records[11][1])
        got = index.knn_query(query, k)
        truth = np.sort(brute_force_aggregate(records, metrics, weights, query))[:k]
        np.testing.assert_allclose(sorted(d for _, d in got), truth, atol=1e-9)

    def test_k_larger_than_dataset(self, index, records):
        got = index.knn_query((records[0][0], records[0][1]), k=10_000)
        assert len(got) == len(records)

    def test_invalid_k(self, index, records):
        with pytest.raises(QueryError):
            index.knn_query((records[0][0], records[0][1]), 0)

    def test_weights_change_the_ranking(self, records):
        """With a huge text weight the nearest record must share the text label."""
        location_only = MultiColumnGTS.build(
            records, metrics=[EuclideanDistance(), EditDistance()], weights=[1.0, 0.0],
            node_capacity=8,
        )
        text_heavy = MultiColumnGTS.build(
            records, metrics=[EuclideanDistance(), EditDistance()], weights=[0.001, 10.0],
            node_capacity=8,
        )
        query = (records[2][0] + 40.0, records[2][1])
        best_text = text_heavy.knn_query(query, 1)[0][0]
        assert records[best_text][1] == records[2][1]
        best_loc = location_only.knn_query(query, 1)[0][0]
        l2 = EuclideanDistance()
        dists = [l2.distance(query[0], loc) for loc, _ in records]
        assert dists[best_loc] == pytest.approx(min(dists), abs=1e-9)

    def test_aggregate_distance_helper(self, index, records):
        query = (records[4][0], records[4][1])
        assert index.aggregate_distance(query, 4) == pytest.approx(0.0, abs=1e-12)

    def test_single_column_degenerates_to_gts(self, rng):
        pts = rng.normal(size=(120, 2))
        index = MultiColumnGTS.build([(p,) for p in pts], metrics=[EuclideanDistance()],
                                     node_capacity=8)
        got = index.knn_query((pts[3],), 5)
        truth = np.sort(np.sqrt(((pts - pts[3]) ** 2).sum(1)))[:5]
        np.testing.assert_allclose([d for _, d in got], truth, atol=1e-9)
