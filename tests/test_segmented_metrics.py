"""Tests for the fused segmented distance kernels (Metric.pairwise_segmented).

The segmented call is the workhorse of the batch query engine, so its
contract is strict: for *every* registered metric, evaluating per-query
segments in one call must be **bitwise identical** to the historical
per-query ``pairwise`` evaluation — regardless of which host strategy
(fused broadcast pass, per-segment loop, store-digest reuse) answers it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics import get_metric
from repro.metrics.base import Metric
from repro.metrics.registry import available_metrics
from repro.metrics.vector import AngularDistance, EuclideanDistance, _VectorMetric


def _objects_for(metric, rng, count):
    """Synthetic objects in the metric's domain."""
    if metric.supports_vectors:
        return [rng.normal(size=12) for _ in range(count)]
    name = metric.name
    if name == "hamming":
        alphabet = np.array(list("acgt"))
        return ["".join(rng.choice(alphabet, size=9)) for _ in range(count)]
    if name == "edit-distance":
        alphabet = np.array(list("abcdef"))
        return [
            "".join(rng.choice(alphabet, size=rng.integers(3, 10)))
            for _ in range(count)
        ]
    if name == "jaccard":
        return [
            frozenset(rng.choice(30, size=rng.integers(1, 8), replace=False).tolist())
            for _ in range(count)
        ]
    if name.startswith("hausdorff"):
        return [rng.normal(size=(rng.integers(2, 5), 3)) for _ in range(count)]
    raise AssertionError(f"no object generator for metric {name!r}")


def _segment_case(metric, rng, num_queries=7, max_segment=9):
    queries = _objects_for(metric, rng, num_queries)
    sizes = [int(rng.integers(0, max_segment + 1)) for _ in range(num_queries)]
    if not any(sizes):
        sizes[0] = 3
    objects = _objects_for(metric, rng, sum(sizes))
    boundaries = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    return queries, objects, boundaries


@pytest.mark.parametrize("name", available_metrics())
class TestSegmentedEqualsPairwise:
    def test_bitwise_equal_to_per_query_pairwise(self, name):
        metric = get_metric(name) if name != "minkowski" else get_metric(name, p=3)
        rng = np.random.default_rng(sum(map(ord, name)))
        queries, objects, boundaries = _segment_case(metric, rng)
        fused = metric.pairwise_segmented(queries, objects, boundaries)
        expected = np.concatenate(
            [
                metric.pairwise(queries[qi], objects[boundaries[qi] : boundaries[qi + 1]])
                for qi in range(len(queries))
            ]
        )
        np.testing.assert_array_equal(fused, expected)

    def test_counts_one_call_covering_all_pairs(self, name):
        metric = get_metric(name) if name != "minkowski" else get_metric(name, p=3)
        rng = np.random.default_rng(5)
        queries, objects, boundaries = _segment_case(metric, rng)
        metric.reset_counter()
        metric.pairwise_segmented(queries, objects, boundaries)
        assert metric.pair_count == len(objects)


class TestSegmentedValidation:
    def test_boundary_length_must_match_queries(self):
        m = EuclideanDistance()
        with pytest.raises(MetricError):
            m.pairwise_segmented([[0.0, 0.0]], [[1.0, 1.0]], [0, 1, 1])

    def test_boundaries_must_span_objects(self):
        m = EuclideanDistance()
        with pytest.raises(MetricError):
            m.pairwise_segmented([[0.0, 0.0]], [[1.0, 1.0], [2.0, 2.0]], [0, 1])

    def test_boundaries_must_be_monotone(self):
        m = EuclideanDistance()
        with pytest.raises(MetricError):
            m.pairwise_segmented(
                [[0.0, 0.0], [1.0, 1.0]], [[1.0, 1.0], [2.0, 2.0]], [0, 2, 2][::-1]
            )

    def test_empty_batch_returns_empty(self):
        m = EuclideanDistance()
        out = m.pairwise_segmented([], [], [0])
        assert out.shape == (0,)

    def test_empty_segments_are_skipped(self):
        m = EuclideanDistance()
        out = m.pairwise_segmented(
            [[0.0, 0.0], [1.0, 0.0]], [[3.0, 4.0]], np.array([0, 0, 1])
        )
        np.testing.assert_allclose(out, [np.hypot(2.0, 4.0)])


class TestStrategyEquivalence:
    """Fused pass, per-segment loop, and digest reuse agree bit for bit."""

    @pytest.mark.parametrize("metric", [EuclideanDistance(), AngularDistance()])
    def test_fused_equals_segment_loop(self, metric):
        rng = np.random.default_rng(11)
        queries = rng.normal(size=(6, 20))
        sizes = [0, 3, 17, 1, 400, 2]
        objects = rng.normal(size=(sum(sizes), 20))
        boundaries = np.concatenate(([0], np.cumsum(sizes)))
        fused = metric._fused_segmented(queries, objects, boundaries)
        looped = metric._segment_loop(queries, objects, boundaries, None)
        np.testing.assert_array_equal(fused, looped)

    def test_angular_digest_matches_recomputation(self):
        metric = AngularDistance()
        rng = np.random.default_rng(13)
        queries = rng.normal(size=(4, 16))
        objects = rng.normal(size=(40, 16))
        boundaries = np.array([0, 10, 10, 25, 40])
        digest = metric.store_digest(objects)
        np.testing.assert_array_equal(
            digest, np.linalg.norm(objects, axis=-1)
        )
        plain = metric.pairwise_segmented(queries, objects, boundaries)
        with_digest = metric.pairwise_segmented(
            queries, objects, boundaries, object_digest=digest
        )
        np.testing.assert_array_equal(plain, with_digest)
        fused = metric._fused_segmented(queries, objects, boundaries, digest)
        looped = metric._segment_loop(queries, objects, boundaries, digest)
        np.testing.assert_array_equal(fused, looped)
        np.testing.assert_array_equal(fused, plain)

    def test_dispatch_threshold_does_not_change_bits(self):
        rng = np.random.default_rng(17)
        queries = rng.normal(size=(5, 30))
        sizes = [200, 1, 50, 9, 130]
        objects = rng.normal(size=(sum(sizes), 30))
        boundaries = np.concatenate(([0], np.cumsum(sizes)))
        small, large = EuclideanDistance(), EuclideanDistance()
        small.fused_segment_elements = 1  # force the per-segment loop
        large.fused_segment_elements = 10**9  # force the fused pass
        np.testing.assert_array_equal(
            small.pairwise_segmented(queries, objects, boundaries),
            large.pairwise_segmented(queries, objects, boundaries),
        )

    def test_generic_fallback_matches_vector_override(self):
        metric = EuclideanDistance()
        rng = np.random.default_rng(23)
        queries = rng.normal(size=(6, 8))
        sizes = [4, 0, 12, 7, 1, 90]
        objects = rng.normal(size=(sum(sizes), 8))
        boundaries = np.concatenate(([0], np.cumsum(sizes)))
        fast = metric.pairwise_segmented(queries, objects, boundaries)
        generic = Metric._pairwise_segmented(metric, queries, objects, boundaries)
        np.testing.assert_array_equal(fast, np.asarray(generic))

    def test_vector_metric_observes_dimension(self):
        metric = EuclideanDistance()
        rng = np.random.default_rng(29)
        queries = rng.normal(size=(2, 44))
        objects = rng.normal(size=(6, 44))
        metric.pairwise_segmented(queries, objects, [0, 3, 6])
        assert metric.unit_cost == pytest.approx(_VectorMetric.ops_per_dimension * 44)


class TestSegmentedDistanceKernel:
    """The gpusim primitive pairs the fused pass with its device charge."""

    def test_result_and_accounting(self):
        from repro.gpusim import Device, DeviceSpec
        from repro.gpusim.kernels import segmented_distance_kernel

        metric = EuclideanDistance()
        device = Device(DeviceSpec())
        rng = np.random.default_rng(31)
        queries = rng.normal(size=(3, 5))
        objects = rng.normal(size=(10, 5))
        boundaries = np.array([0, 4, 4, 10])
        before = device.snapshot()
        dists = segmented_distance_kernel(device, metric, queries, objects, boundaries)
        delta = device.stats.delta_since(before)
        np.testing.assert_array_equal(
            dists, metric.pairwise_segmented(queries, objects, boundaries)
        )
        assert delta.kernel_launches == 1
        assert delta.total_ops == pytest.approx(len(objects) * metric.unit_cost)
