"""Tests for the evaluation harness: workloads, runner, reporting, experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import available_methods
from repro.datasets import generate_tloc, generate_words
from repro.evalsuite import (
    ExperimentResult,
    MethodRunner,
    STATUS_OK,
    STATUS_OOM,
    STATUS_UNSUPPORTED,
    compute_recall,
    format_bytes,
    format_seconds,
    format_table,
    format_throughput,
    make_workload,
    radius_for_selectivity,
    rows_to_csv,
    sample_pairwise_distances,
)
from repro.evalsuite.experiments import (
    ablation_prune_and_pivot,
    experiment_fig6_node_capacity,
    experiment_fig9_batch_size,
    experiment_fig10_identical_objects,
    experiment_table4_construction,
)
from repro.exceptions import BaselineError, QueryError
from repro.gpusim import DeviceSpec, MiB


@pytest.fixture(scope="module")
def tloc_small():
    return generate_tloc(800, seed=3)


class TestWorkloads:
    def test_sample_pairwise_distances(self, tloc_small):
        d = sample_pairwise_distances(tloc_small.objects, tloc_small.metric, sample_size=50)
        assert len(d) > 0 and np.all(d >= 0)

    def test_radius_for_selectivity_monotone(self, tloc_small):
        small = radius_for_selectivity(tloc_small.objects, tloc_small.metric, 0.001)
        large = radius_for_selectivity(tloc_small.objects, tloc_small.metric, 0.5)
        assert 0 < small <= large

    def test_radius_selectivity_roughly_respected(self, tloc_small):
        radius = radius_for_selectivity(tloc_small.objects, tloc_small.metric, 0.01)
        arr = np.asarray(tloc_small.objects)
        q = arr[0]
        frac = np.mean(np.sqrt(((arr - q) ** 2).sum(1)) <= radius)
        assert frac < 0.3  # selective, not a full scan

    def test_invalid_selectivity(self, tloc_small):
        with pytest.raises(QueryError):
            radius_for_selectivity(tloc_small.objects, tloc_small.metric, 0.0)

    def test_make_workload_shapes(self, tloc_small):
        wl = make_workload(tloc_small, num_queries=16, radius_step=8, k=4)
        assert wl.batch_size == 16
        assert wl.radius > 0 and wl.k == 4 and 0 < wl.selectivity <= 0.02


class TestRunner:
    def test_build_and_query_gts(self, tloc_small):
        runner = MethodRunner("GTS", tloc_small)
        build = runner.build()
        assert build.status == STATUS_OK
        assert build.sim_time > 0 and build.storage_bytes > 0
        wl = make_workload(tloc_small, num_queries=8)
        mrq = runner.run_mrq(wl.queries, wl.radius)
        assert mrq.status == STATUS_OK and mrq.throughput > 0
        knn = runner.run_knn(wl.queries, 4)
        assert knn.status == STATUS_OK and knn.num_queries == 8

    def test_unknown_method_rejected(self, tloc_small):
        with pytest.raises(BaselineError):
            MethodRunner("NoSuchMethod", tloc_small)

    def test_unsupported_method_reports_status(self):
        words = generate_words(200, seed=5)
        runner = MethodRunner("GANNS", words)
        build = runner.build()
        assert build.status == STATUS_UNSUPPORTED

    def test_oom_reported_not_raised(self, tloc_small):
        runner = MethodRunner(
            "GPU-Tree", tloc_small, device_spec=DeviceSpec(memory_bytes=1 * MiB)
        )
        build = runner.build()
        assert build.status == STATUS_OK
        wl = make_workload(tloc_small, num_queries=512)
        res = runner.run_mrq(wl.queries, wl.radius)
        assert res.status == STATUS_OOM

    def test_recall_computed_against_ground_truth(self, tloc_small):
        oracle = MethodRunner("LinearScan", tloc_small)
        oracle.build()
        wl = make_workload(tloc_small, num_queries=8)
        truth = oracle.index.knn_query_batch(wl.queries, 4)
        runner = MethodRunner("GTS", tloc_small)
        runner.build()
        res = runner.run_knn(wl.queries, 4, ground_truth=truth)
        assert res.recall == pytest.approx(1.0)

    def test_stream_and_batch_update_measurements(self, tloc_small):
        runner = MethodRunner("GTS", tloc_small)
        runner.build()
        stream = runner.run_stream_updates(5)
        assert stream.status == STATUS_OK
        assert stream.params["time_per_update"] > 0
        batch = runner.run_batch_update(fraction=0.05)
        assert batch.status == STATUS_OK
        assert batch.params["count"] == int(0.05 * len(tloc_small.objects))

    def test_compute_recall_empty_truth(self):
        assert compute_recall([[(1, 0.0)]], [[]]) == 1.0

    def test_compute_recall_partial(self):
        got = [[(1, 0.1), (2, 0.2)]]
        truth = [[(1, 0.1), (3, 0.15)]]
        assert compute_recall(got, truth) == pytest.approx(0.5)

    def test_queries_before_build_rejected(self, tloc_small):
        runner = MethodRunner("GTS", tloc_small)
        with pytest.raises(BaselineError):
            runner.run_mrq([], 1.0)


class TestReporting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KB"
        assert "MB" in format_bytes(5 * 1024 * 1024)

    def test_format_seconds(self):
        assert "ns" in format_seconds(1e-8)
        assert "us" in format_seconds(5e-5)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(2.0) == "2.000 s"

    def test_format_throughput(self):
        assert "q/min" in format_throughput(100.0)
        assert "e" in format_throughput(1e7)

    def test_format_table_and_csv(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = format_table(rows, ["a", "b"], title="demo")
        assert "demo" in text and "a" in text and "y" in text
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0] == "a,b"

    def test_experiment_result_helpers(self):
        result = ExperimentResult(experiment="t", title="demo")
        result.add_row(method="GTS", x=1, y=2.0)
        result.add_row(method="BST", x=2, y=3.0)
        assert result.filter(method="GTS")[0]["y"] == 2.0
        assert result.series("x", "y", method="BST") == [(2, 3.0)]
        assert "demo" in result.to_text()
        assert "method" in result.to_csv()


class TestExperimentsSmallScale:
    """Each experiment runs end-to-end at a tiny scale and produces sane rows."""

    def test_table4_small(self):
        res = experiment_table4_construction(
            datasets=("tloc",), methods=("MVPT", "GTS"), cardinalities={"tloc": 400}
        )
        assert len(res.rows) == 2
        gts = res.filter(dataset="tloc", method="GTS")[0]
        assert gts["status"] == STATUS_OK and gts["time_s"] > 0

    def test_fig6_small(self):
        res = experiment_fig6_node_capacity(
            datasets=("tloc",), node_capacities=(10, 40), num_queries=8,
            cardinalities={"tloc": 400},
        )
        assert {row["node_capacity"] for row in res.rows} == {10, 40}
        assert all(row["mrq_throughput"] > 0 for row in res.rows)

    def test_fig9_small_includes_oom(self):
        res = experiment_fig9_batch_size(
            datasets=("tloc",), methods=("GPU-Tree", "GTS"), batch_sizes=(16, 256),
            cardinalities={"tloc": 400}, device_memory_mb=1.5,
        )
        gts_rows = res.filter(method="GTS")
        assert all(r["status"] == STATUS_OK for r in gts_rows)
        tree_256 = res.filter(method="GPU-Tree", batch_size=256)[0]
        assert tree_256["status"] == STATUS_OOM

    def test_fig10_small(self):
        res = experiment_fig10_identical_objects(
            datasets=("tloc",), distinct_proportions=(0.5, 1.0), num_queries=8,
            cardinalities={"tloc": 400},
        )
        assert len(res.rows) == 2
        assert all(r["status"] == STATUS_OK for r in res.rows)

    def test_ablation_prune_and_pivot_small(self):
        res = ablation_prune_and_pivot(dataset_name="tloc", num_queries=8, cardinality=400)
        ok_rows = [r for r in res.rows if r["status"] == STATUS_OK]
        assert len(ok_rows) == 4
        two_sided = [r for r in ok_rows if r["prune"] == "two-sided" and r["pivot"] == "fft"][0]
        one_sided = [r for r in ok_rows if r["prune"] == "one-sided"][0]
        assert two_sided["mrq_distances"] <= one_sided["mrq_distances"]


class TestMethodRegistryCompleteness:
    def test_all_paper_methods_present(self):
        names = set(available_methods())
        assert {"BST", "EGNAT", "MVPT", "GPU-Table", "GPU-Tree", "LBPG-Tree", "GANNS", "GTS"} <= names
