"""Tests for the multi-device sharded index (repro.shard)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance, ShardedGTS
from repro.exceptions import IndexError_, QueryError, UpdateError
from repro.gpusim import DeviceSpec
from repro.service import GTSService, WorkloadSpec, generate_workload, sequential_replay
from repro.shard import (
    ASSIGNMENT_POLICIES,
    RoundRobinPolicy,
    SizeBalancedPolicy,
    make_assignment_policy,
)


@pytest.fixture
def single(points_2d) -> GTS:
    return GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=5)


@pytest.fixture
def sharded(points_2d) -> ShardedGTS:
    return ShardedGTS.build(
        points_2d, EuclideanDistance(), num_shards=3, node_capacity=8, seed=5
    )


@pytest.fixture
def queries(points_2d):
    return [points_2d[i] + 0.01 for i in (0, 7, 42, 99, 310)]


class TestPolicies:
    def test_round_robin_balances_counts(self, points_2d):
        index = ShardedGTS.build(
            points_2d, EuclideanDistance(), num_shards=4, node_capacity=8, seed=5
        )
        sizes = index.shard_sizes
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(points_2d)

    def test_size_balanced_evens_out_bytes(self, word_list):
        index = ShardedGTS.build(
            word_list,
            EditDistance(),
            num_shards=3,
            assignment="size-balanced",
            node_capacity=8,
            seed=5,
        )
        loads = index.shard_load_bytes
        # variable-length strings: byte loads stay within one object of even
        assert max(loads) - min(loads) <= max(len(w) for w in word_list)

    def test_policy_objects_accepted_directly(self, points_2d):
        index = ShardedGTS.build(
            points_2d,
            EuclideanDistance(),
            num_shards=2,
            assignment=SizeBalancedPolicy(),
            node_capacity=8,
        )
        assert index.policy.name == "size-balanced"

    def test_registry_and_unknown_policy(self):
        assert set(ASSIGNMENT_POLICIES) == {"round-robin", "size-balanced"}
        assert isinstance(make_assignment_policy("round-robin"), RoundRobinPolicy)
        with pytest.raises(IndexError_):
            make_assignment_policy("hash-ring")


class TestConstruction:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(IndexError_):
            ShardedGTS(EuclideanDistance(), num_shards=0)

    def test_more_shards_than_objects_rejected(self):
        with pytest.raises(IndexError_):
            ShardedGTS.build([np.zeros(2)] * 3, EuclideanDistance(), num_shards=5)

    def test_unbuilt_index_rejects_queries(self):
        index = ShardedGTS(EuclideanDistance(), num_shards=2)
        with pytest.raises(IndexError_):
            index.knn_query(np.zeros(2), 3)

    def test_build_report_makespan(self, points_2d):
        index = ShardedGTS(EuclideanDistance(), num_shards=3, node_capacity=8, seed=5)
        report = index.bulk_load(points_2d)
        assert len(report.per_shard) == 3
        assert report.sim_time == max(r.sim_time for r in report.per_shard)
        assert report.distance_computations == sum(
            r.distance_computations for r in report.per_shard
        )

    def test_close_releases_all_shard_devices(self, sharded):
        sharded.close()
        for shard in sharded.shards:
            assert shard.device.used_bytes == 0


class TestExactness:
    def test_range_batch_matches_single_device(self, single, sharded, queries):
        assert sharded.range_query_batch(queries, 0.8) == single.range_query_batch(
            queries, 0.8
        )

    def test_knn_batch_matches_single_device(self, single, sharded, queries):
        assert sharded.knn_query_batch(queries, 7) == single.knn_query_batch(queries, 7)

    def test_per_query_radii_and_k(self, single, sharded, queries):
        radii = [0.2, 0.5, 0.8, 1.1, 0.4]
        ks = [1, 3, 5, 7, 9]
        assert sharded.range_query_batch(queries, radii) == single.range_query_batch(
            queries, radii
        )
        assert sharded.knn_query_batch(queries, ks) == single.knn_query_batch(queries, ks)

    def test_string_metric_matches_single_device(self, word_list):
        single = GTS.build(word_list, EditDistance(), node_capacity=8, seed=5)
        sharded = ShardedGTS.build(
            word_list,
            EditDistance(),
            num_shards=3,
            assignment="size-balanced",
            node_capacity=8,
            seed=5,
        )
        assert sharded.knn_query("metric", 5) == single.knn_query("metric", 5)
        assert sharded.range_query("pivot", 2) == single.range_query("pivot", 2)

    def test_malformed_params_raise_query_error(self, sharded, queries):
        with pytest.raises(QueryError):
            sharded.range_query_batch(queries, [0.5, 0.5])
        with pytest.raises(QueryError):
            sharded.knn_query_batch(queries, [3] * (len(queries) + 1))
        with pytest.raises(QueryError):
            sharded.knn_query_batch(queries, 0)


class TestUpdates:
    def test_insert_routed_and_globally_visible(self, single, sharded):
        obj = np.array([55.0, -55.0])
        assert sharded.insert(obj) == single.insert(obj)
        assert sharded.knn_query(obj, 1) == single.knn_query(obj, 1)
        assert sharded.cache_size == 1

    def test_delete_routed(self, single, sharded, queries):
        sharded.delete(42)
        single.delete(42)
        assert sharded.range_query_batch(queries, 0.8) == single.range_query_batch(
            queries, 0.8
        )
        assert not sharded.is_live(42)

    def test_double_delete_rejected_without_charge(self, sharded):
        sharded.delete(10)
        before = sharded.device.stats.copy()
        with pytest.raises(UpdateError):
            sharded.delete(10)
        with pytest.raises(UpdateError):
            sharded.delete(len(sharded.shards[0]._objects) * 10 + 10_000)
        after = sharded.device.stats
        assert after.sim_time == before.sim_time
        assert after.kernel_launches == before.kernel_launches

    def test_update_assigns_fresh_global_id(self, sharded, points_2d):
        new_id = sharded.update(3, np.array([1.0, 2.0]))
        assert new_id == len(points_2d)
        assert not sharded.is_live(3)
        assert sharded.is_live(new_id)

    def test_cache_overflow_rebuilds_only_owning_shard(self, points_2d):
        index = ShardedGTS.build(
            points_2d, EuclideanDistance(), num_shards=3, node_capacity=8,
            cache_capacity_bytes=64, seed=5,
        )
        per_shard_before = [s.rebuild_count for s in index.shards]
        while index.rebuild_count == sum(per_shard_before):
            index.insert(np.array([1.0, 1.0]))
        per_shard_after = [s.rebuild_count for s in index.shards]
        assert sum(per_shard_after) == sum(per_shard_before) + 1

    def test_batch_update_matches_single_device(self, single, sharded, queries):
        inserts = [np.array([9.0, 9.0]), np.array([-9.0, 9.0])]
        sharded.batch_update(inserts=inserts, deletes=[1, 2, 3])
        single.batch_update(inserts=inserts, deletes=[1, 2, 3])
        assert sharded.knn_query_batch(queries, 6) == single.knn_query_batch(queries, 6)
        assert sharded.num_objects == single.num_objects

    def test_batch_update_rejects_tombstoned_and_unknown(self, sharded):
        sharded.delete(5)
        with pytest.raises(UpdateError):
            sharded.batch_update(deletes=[5])
        with pytest.raises(UpdateError):
            sharded.batch_update(deletes=[10_000_000])

    def test_rebuild_drops_tombstones_everywhere(self, sharded):
        for obj_id in (0, 1, 2, 3):
            sharded.delete(obj_id)
        sharded.rebuild()
        assert all(len(s._tombstones) == 0 for s in sharded.shards)


class TestAccounting:
    def test_query_charges_makespan_plus_merge(self, sharded, queries):
        shard_befores = [s.device.snapshot() for s in sharded.shards]
        coord_before = sharded.device.stats.sim_time
        host_before = sharded.host.stats.sim_time
        sharded.knn_query_batch(queries, 5)
        deltas = [
            s.device.stats.delta_since(b).sim_time
            for s, b in zip(sharded.shards, shard_befores)
        ]
        coord_delta = sharded.device.stats.sim_time - coord_before
        merge_delta = sharded.host.stats.sim_time - host_before
        # coordinator advanced by the slowest shard plus the host merge term:
        # parallel across shards, never the sum
        assert coord_delta == pytest.approx(max(deltas) + merge_delta)
        assert coord_delta < sum(deltas) + merge_delta

    def test_work_counters_keep_cross_shard_totals(self, sharded, queries):
        before = sharded.device.stats.copy()
        shard_befores = [s.device.snapshot() for s in sharded.shards]
        sharded.range_query_batch(queries, 0.5)
        launches = sum(
            s.device.stats.delta_since(b).kernel_launches
            for s, b in zip(sharded.shards, shard_befores)
        )
        assert sharded.device.stats.kernel_launches - before.kernel_launches == launches

    def test_get_object_and_is_live_across_shards(self, sharded, points_2d):
        np.testing.assert_array_equal(sharded.get_object(123), points_2d[123])
        assert sharded.is_live(123)
        with pytest.raises(IndexError_):
            sharded.get_object(10_000_000)


class TestServiceIntegration:
    def test_execute_batch_matches_sequential_single_device(self, points_2d):
        sharded = ShardedGTS.build(
            points_2d, EuclideanDistance(), num_shards=3, node_capacity=8, seed=5
        )
        single = GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=5)
        ops = [
            ("knn", points_2d[4], 3),
            ("knn", points_2d[9], 5),
            ("range", points_2d[0], 0.6),
            ("insert", np.array([4.0, 4.0])),
            ("knn", np.array([4.0, 4.0]), 1),
            ("delete", 17),
            ("range", points_2d[17], 1e-9),
        ]
        assert sharded.execute_batch(ops) == single.execute_batch(ops)

    def test_execute_batch_unknown_kind_rejected(self, sharded):
        with pytest.raises(QueryError):
            sharded.execute_batch([("upsert", np.zeros(2))])

    def test_service_serves_sharded_index_unchanged(self, points_2d):
        num_indexed = 500
        sharded = ShardedGTS.build(
            points_2d[:num_indexed], EuclideanDistance(), num_shards=3,
            node_capacity=8, seed=5,
        )
        spec = WorkloadSpec(
            num_clients=4, rate_per_client=150_000.0, duration=1e-3,
            radius=0.6, k=5, seed=3,
        )
        workload = generate_workload(points_2d, num_indexed, spec)
        service = GTSService(sharded)
        responses = service.serve(workload.requests)

        oracle = GTS.build(
            points_2d[:num_indexed], EuclideanDistance(), node_capacity=8, seed=5
        )
        expected = sequential_replay(oracle, workload.requests)
        assert [r.result for r in responses] == expected
        assert len(service.batches) >= 1
