"""Correctness tests for the CPU baselines (LinearScan, BST, MVPT, EGNAT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EGNAT, BisectorTree, LinearScan, MVPTree
from repro.exceptions import BaselineError
from repro.metrics import EditDistance, EuclideanDistance
from tests.conftest import brute_force_knn, brute_force_range

CPU_CLASSES = [LinearScan, BisectorTree, MVPTree, EGNAT]


def _ids(results):
    return {o for o, _ in results}


@pytest.mark.parametrize("cls", CPU_CLASSES)
class TestCPUBaselineCorrectness:
    def test_range_query_matches_brute_force(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        for qi in (0, 17, 101):
            query = points_2d[qi] + 0.02
            got = index.range_query(query, 0.9)
            expected = brute_force_range(points_2d, l2_metric, query, 0.9)
            assert _ids(got) == _ids(expected)

    def test_knn_matches_brute_force(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        for qi in (3, 42):
            got = index.knn_query(points_2d[qi] + 0.01, 6)
            expected = brute_force_knn(points_2d, l2_metric, points_2d[qi] + 0.01, 6)
            np.testing.assert_allclose(
                sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
            )

    def test_string_dataset(self, cls, word_list):
        index = cls(EditDistance())
        index.build(word_list)
        oracle_metric = EditDistance()
        got = index.range_query("metric", 1)
        expected = brute_force_range(word_list, oracle_metric, "metric", 1)
        assert _ids(got) == _ids(expected)

    def test_empty_build_rejected(self, cls):
        with pytest.raises(BaselineError):
            cls(EuclideanDistance()).build([])

    def test_query_before_build_rejected(self, cls):
        index = cls(EuclideanDistance())
        with pytest.raises(BaselineError):
            index.range_query([0.0, 0.0], 1.0)

    def test_insert_visible(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        new = np.array([500.0, 500.0])
        obj_id = index.insert(new)
        got = index.range_query(new, 0.1)
        assert obj_id in _ids(got)

    def test_delete_hides_object(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        index.delete(0)
        got = index.range_query(points_2d[0], 1e-9)
        assert 0 not in _ids(got)
        assert index.num_objects == len(points_2d) - 1

    def test_delete_unknown_rejected(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        with pytest.raises(BaselineError):
            index.delete(10_000)

    def test_batch_update_then_query_exact(self, cls, points_2d, l2_metric):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        index.batch_update(inserts=[np.array([300.0, 300.0])], deletes=[0, 1])
        got = index.knn_query(np.array([300.0, 300.0]), 1)
        assert got[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_sim_stats_accumulate(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        before = index.sim_stats.sim_time
        index.knn_query(points_2d[0], 3)
        assert index.sim_stats.sim_time >= before

    def test_storage_reported(self, cls, points_2d):
        index = cls(EuclideanDistance())
        index.build(points_2d)
        assert index.storage_bytes > 0


class TestCPUBaselineSpecifics:
    def test_bst_prunes_distance_computations(self, points_2d):
        metric = EuclideanDistance()
        index = BisectorTree(metric)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query(points_2d[0], 0.3)
        assert metric.pair_count < len(points_2d)

    def test_mvpt_prunes_distance_computations(self, points_2d):
        metric = EuclideanDistance()
        index = MVPTree(metric)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query(points_2d[0], 0.3)
        assert metric.pair_count < len(points_2d)

    def test_egnat_prunes_distance_computations(self, points_2d):
        metric = EuclideanDistance()
        index = EGNAT(metric, arity=4)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query(points_2d[0], 0.3)
        assert metric.pair_count < len(points_2d)

    def test_egnat_memory_budget_enforced(self, points_2d):
        index = EGNAT(EuclideanDistance(), memory_budget_bytes=1000)
        with pytest.raises(BaselineError):
            index.build(points_2d)

    def test_egnat_storage_larger_than_mvpt(self, points_2d):
        """EGNAT's pre-computed range tables make it the most storage-hungry CPU index."""
        egnat = EGNAT(EuclideanDistance())
        egnat.build(points_2d)
        mvpt = MVPTree(EuclideanDistance())
        mvpt.build(points_2d)
        assert egnat.storage_bytes > mvpt.storage_bytes

    def test_bst_invalid_leaf_size(self):
        with pytest.raises(BaselineError):
            BisectorTree(EuclideanDistance(), leaf_size=1)

    def test_mvpt_invalid_fanout(self):
        with pytest.raises(BaselineError):
            MVPTree(EuclideanDistance(), fanout=1)

    def test_egnat_invalid_arity(self):
        with pytest.raises(BaselineError):
            EGNAT(EuclideanDistance(), arity=1)

    def test_stream_insert_cheaper_than_rebuild(self, points_2d):
        """CPU trees insert structurally: far fewer distances than a rebuild."""
        metric = EuclideanDistance()
        index = MVPTree(metric)
        index.build(points_2d)
        build_distances = metric.pair_count
        metric.reset_counter()
        index.insert(np.array([1.0, 1.0]))
        assert metric.pair_count < build_distances / 10

    def test_duplicate_objects_handled(self, rng):
        pts = np.tile(rng.normal(size=(5, 2)), (30, 1))
        for cls in (BisectorTree, MVPTree, EGNAT):
            metric = EuclideanDistance()
            index = cls(metric)
            index.build(pts)
            got = index.knn_query(pts[0], 4)
            assert len(got) == 4
            assert all(d == pytest.approx(0.0, abs=1e-12) for _, d in got)
