"""Tests for index persistence (repro.core.persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTS, EditDistance, EuclideanDistance, ManhattanDistance
from repro.core import INDEX_FORMAT_VERSION, load_index, save_index
from repro.exceptions import IndexError_, MetricError
from repro.gpusim import Device, DeviceSpec
from repro.metrics.base import Metric


@pytest.fixture
def vector_index(points_2d) -> GTS:
    return GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=5)


@pytest.fixture
def string_index(word_list) -> GTS:
    return GTS.build(word_list, EditDistance(), node_capacity=8, seed=5)


class TestRoundTrip:
    def test_vector_round_trip_queries_match(self, vector_index, points_2d, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        queries = [points_2d[i] + 0.01 for i in (0, 7, 99)]
        assert loaded.knn_query_batch(queries, 5) == vector_index.knn_query_batch(queries, 5)
        assert loaded.range_query_batch(queries, 0.8) == vector_index.range_query_batch(queries, 0.8)

    def test_string_round_trip_queries_match(self, string_index, tmp_path):
        path = string_index.save(tmp_path / "words.npz")
        loaded = GTS.load(path)
        assert loaded.knn_query("metric", 4) == string_index.knn_query("metric", 4)
        assert loaded.range_query("pivot", 2) == string_index.range_query("pivot", 2)

    def test_round_trip_preserves_configuration(self, vector_index, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        assert loaded.node_capacity == vector_index.node_capacity
        assert loaded.height == vector_index.height
        assert loaded.num_objects == vector_index.num_objects
        assert loaded.pivot_strategy == vector_index.pivot_strategy
        assert loaded.prune_mode == vector_index.prune_mode
        assert loaded.storage_bytes == vector_index.storage_bytes

    def test_round_trip_preserves_tree_structure(self, vector_index, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        np.testing.assert_array_equal(loaded.tree.pivot, vector_index.tree.pivot)
        np.testing.assert_array_equal(loaded.tree.obj_ids, vector_index.tree.obj_ids)
        np.testing.assert_allclose(loaded.tree.obj_dis, vector_index.tree.obj_dis)
        loaded.tree.check_invariants()

    def test_round_trip_preserves_tombstones(self, vector_index, points_2d, tmp_path):
        vector_index.delete(3)
        vector_index.delete(11)
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        assert loaded.num_objects == vector_index.num_objects
        got = loaded.range_query(points_2d[3], 1e-9)
        assert 3 not in {o for o, _ in got}

    def test_round_trip_preserves_cache(self, vector_index, tmp_path):
        new_id = vector_index.insert(np.array([123.0, 456.0]))
        assert vector_index.cache_size > 0
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        assert loaded.cache_size == vector_index.cache_size
        got = loaded.knn_query(np.array([123.0, 456.0]), 1)
        assert got[0][0] == new_id
        assert got[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_loaded_index_supports_updates(self, vector_index, points_2d, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        loaded = GTS.load(path)
        obj_id = loaded.insert(np.array([77.0, -77.0]))
        assert loaded.knn_query(np.array([77.0, -77.0]), 1)[0][0] == obj_id
        loaded.delete(0)
        assert 0 not in {o for o, _ in loaded.range_query(points_2d[0], 1e-9)}
        loaded.rebuild()
        loaded.tree.check_invariants()

    def test_save_returns_existing_path(self, vector_index, tmp_path):
        path = vector_index.save(tmp_path / "my_index.gts")
        assert path.exists()
        assert GTS.load(path).num_objects == vector_index.num_objects


class TestSeedRoundTrip:
    def test_seed_survives_save_load(self, points_2d, tmp_path):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8, seed=23)
        loaded = GTS.load(index.save(tmp_path / "index.npz"))
        assert loaded.seed == 23

    def test_post_load_rebuild_matches_never_saved_index(self, points_2d, tmp_path):
        """save -> load -> insert-to-overflow builds the identical tree.

        The construction RNG is consumed by every build, so this only holds
        when the archive round-trips the generator *state*, not just the
        seed.
        """
        index = GTS.build(
            points_2d, EuclideanDistance(), node_capacity=8, seed=23,
            cache_capacity_bytes=64,
        )
        loaded = GTS.load(index.save(tmp_path / "index.npz"))
        rng = np.random.default_rng(99)
        while index.rebuild_count == 0:
            obj = rng.normal(size=2)
            index.insert(obj)
            loaded.insert(obj)
        assert loaded.rebuild_count == index.rebuild_count == 1
        np.testing.assert_array_equal(loaded.tree.pivot, index.tree.pivot)
        np.testing.assert_array_equal(loaded.tree.obj_ids, index.tree.obj_ids)
        np.testing.assert_allclose(loaded.tree.obj_dis, index.tree.obj_dis)
        query = points_2d[0] + 0.01
        assert loaded.knn_query(query, 5) == index.knn_query(query, 5)

    def test_version_1_archives_still_load(self, vector_index, tmp_path):
        """A pre-seed archive loads fine and falls back to the default seed."""
        path = vector_index.save(tmp_path / "index.npz")
        with np.load(path, allow_pickle=True) as archive:
            arrays = {k: archive[k] for k in archive.files}
        import json

        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = 1
        del meta["seed"]
        del meta["rng_state"]
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        v1 = tmp_path / "v1.npz"
        with open(v1, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_index(v1)
        assert loaded.seed == 17
        query = np.asarray(loaded.get_object(0)) + 0.01
        assert loaded.knn_query(query, 3) == vector_index.knn_query(query, 3)


class TestDeviceAccounting:
    def test_loaded_index_occupies_device_memory(self, vector_index, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        device = Device(DeviceSpec())
        before = device.available_bytes
        loaded = GTS.load(path, device=device)
        assert device.available_bytes < before
        loaded.close()
        assert device.available_bytes == before

    def test_explicit_metric_is_used(self, points_2d, tmp_path):
        index = GTS.build(points_2d, ManhattanDistance(), node_capacity=8)
        path = index.save(tmp_path / "index.npz")
        metric = ManhattanDistance()
        loaded = GTS.load(path, metric=metric)
        assert loaded.metric is metric


class TestErrors:
    def test_unbuilt_index_rejected(self):
        index = GTS(EuclideanDistance())
        with pytest.raises(IndexError_):
            save_index(index, "/tmp/never-written.npz")

    def test_non_index_rejected(self, tmp_path):
        with pytest.raises(IndexError_):
            save_index(object(), tmp_path / "x.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(IndexError_):
            load_index(tmp_path / "does-not-exist.npz")

    def test_unknown_version_rejected(self, vector_index, tmp_path):
        path = vector_index.save(tmp_path / "index.npz")
        with np.load(path, allow_pickle=True) as archive:
            arrays = {k: archive[k] for k in archive.files}
        import json

        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = INDEX_FORMAT_VERSION + 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        bad = tmp_path / "bad.npz"
        with open(bad, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(IndexError_):
            load_index(bad)

    def test_unregistered_metric_requires_explicit_metric(self, points_2d, tmp_path):
        class CustomMetric(Metric):
            name = "custom-l2"
            unit_cost = 1.0

            def _distance(self, a, b) -> float:
                return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))

        metric = CustomMetric()
        index = GTS.build(points_2d, metric, node_capacity=8)
        path = index.save(tmp_path / "custom.npz")
        with pytest.raises(MetricError):
            load_index(path)
        loaded = load_index(path, metric=CustomMetric())
        assert loaded.knn_query(points_2d[0], 3) == index.knn_query(points_2d[0], 3)
