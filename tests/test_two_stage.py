"""Tests for the two-stage memory strategy and its helpers (Section 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import build_tree
from repro.core.range_query import batch_range_query
from repro.core.searchcommon import (
    ENTRY_BYTES,
    IntermediateTable,
    PruneMode,
    level_pair_limit,
    split_into_groups,
)
from repro.exceptions import MemoryDeadlockError, QueryError
from repro.gpusim import Device, DeviceSpec
from repro.metrics import EuclideanDistance


class TestPruneMode:
    def test_from_name_variants(self):
        assert PruneMode.from_name("two-sided").two_sided
        assert PruneMode.from_name("both").two_sided
        assert not PruneMode.from_name("one-sided").two_sided
        assert not PruneMode.from_name("paper").two_sided

    def test_unknown_name_rejected(self):
        with pytest.raises(QueryError):
            PruneMode.from_name("three-sided")


class TestLevelPairLimit:
    def test_limit_shrinks_with_memory(self):
        big = Device(DeviceSpec(memory_bytes=1024 * 1024 * 1024))
        small = Device(DeviceSpec(memory_bytes=64 * 1024))
        assert level_pair_limit(big, 3, 0, 20) > level_pair_limit(small, 3, 0, 20)

    def test_limit_grows_with_depth(self):
        """Deeper layers have fewer remaining levels, hence a larger budget."""
        device = Device(DeviceSpec(memory_bytes=1024 * 1024))
        assert level_pair_limit(device, 4, 3, 20) > level_pair_limit(device, 4, 0, 20)

    def test_limit_at_least_one(self):
        device = Device(DeviceSpec(memory_bytes=1024))
        device.allocate(1000)
        assert level_pair_limit(device, 5, 0, 320) == 1

    def test_limit_respects_existing_allocations(self):
        device = Device(DeviceSpec(memory_bytes=1024 * 1024))
        before = level_pair_limit(device, 3, 0, 20)
        device.allocate(512 * 1024)
        after = level_pair_limit(device, 3, 0, 20)
        assert after < before


class TestSplitIntoGroups:
    def test_no_split_needed_single_group(self):
        cand_q = np.array([0, 0, 1, 1, 2])
        groups = split_into_groups(cand_q, limit_pairs=10)
        assert len(groups) == 1
        assert sorted(np.concatenate(groups).tolist()) == [0, 1, 2, 3, 4]

    def test_groups_respect_limit(self):
        cand_q = np.repeat(np.arange(8), 3)  # 8 queries x 3 pairs
        groups = split_into_groups(cand_q, limit_pairs=7)
        assert all(len(g) <= 7 for g in groups)
        assert sorted(np.concatenate(groups).tolist()) == list(range(24))

    def test_queries_kept_together_when_possible(self):
        cand_q = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        groups = split_into_groups(cand_q, limit_pairs=6)
        for group in groups:
            queries_in_group = set(cand_q[group].tolist())
            # each group holds whole queries (no query is split across groups
            # unless it alone exceeds the limit)
            for q in queries_in_group:
                assert np.sum(cand_q[np.concatenate(groups)] == q) == 3

    def test_oversized_single_query_is_chunked(self):
        cand_q = np.zeros(25, dtype=np.int64)
        groups = split_into_groups(cand_q, limit_pairs=10)
        assert all(len(g) <= 10 for g in groups)
        assert sum(len(g) for g in groups) == 25

    def test_invalid_limit_rejected(self):
        with pytest.raises(QueryError):
            split_into_groups(np.array([0]), limit_pairs=0)

    def test_every_pair_appears_exactly_once(self, rng):
        cand_q = rng.integers(0, 20, size=200)
        groups = split_into_groups(cand_q, limit_pairs=17)
        combined = sorted(np.concatenate(groups).tolist())
        assert combined == list(range(200))


class TestIntermediateTable:
    def test_allocates_and_frees(self, device):
        used = device.used_bytes
        with IntermediateTable(device, 100):
            assert device.used_bytes == used + 100 * ENTRY_BYTES
        assert device.used_bytes == used

    def test_raises_memory_deadlock_when_too_large(self):
        device = Device(DeviceSpec(memory_bytes=1024))
        with pytest.raises(MemoryDeadlockError):
            IntermediateTable(device, 10_000)

    def test_frees_on_exception(self, device):
        used = device.used_bytes
        with pytest.raises(RuntimeError):
            with IntermediateTable(device, 10):
                raise RuntimeError("boom")
        assert device.used_bytes == used


class TestTwoStageBehaviour:
    def _tree(self, n=800, nc=8, seed=0):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, 2))
        metric = EuclideanDistance()
        build_device = Device(DeviceSpec())
        tree = build_tree(pts, np.arange(n), metric, nc, build_device).tree
        return pts, metric, tree

    def test_constrained_memory_gives_same_answers_with_more_kernels(self):
        pts, metric, tree = self._tree()
        queries = [pts[i] for i in range(64)]
        roomy = Device(DeviceSpec())
        tight = Device(DeviceSpec(memory_bytes=96 * 1024))
        res_roomy = batch_range_query(tree, pts, metric, roomy, queries, 0.5)
        res_tight = batch_range_query(tree, pts, metric, tight, queries, 0.5)
        for a, b in zip(res_roomy, res_tight):
            assert {o for o, _ in a} == {o for o, _ in b}
        # grouping means strictly more kernel launches under memory pressure
        assert tight.stats.kernel_launches > roomy.stats.kernel_launches

    def test_constrained_memory_costs_more_simulated_time(self):
        pts, metric, tree = self._tree()
        queries = [pts[i] for i in range(64)]
        roomy = Device(DeviceSpec())
        tight = Device(DeviceSpec(memory_bytes=96 * 1024))
        batch_range_query(tree, pts, metric, roomy, queries, 0.5)
        batch_range_query(tree, pts, metric, tight, queries, 0.5)
        assert tight.stats.sim_time > roomy.stats.sim_time

    def test_peak_memory_stays_below_capacity(self):
        pts, metric, tree = self._tree()
        queries = [pts[i] for i in range(64)]
        tight = Device(DeviceSpec(memory_bytes=96 * 1024))
        batch_range_query(tree, pts, metric, tight, queries, 0.5)
        assert tight.stats.peak_memory_bytes <= tight.capacity_bytes

    def test_extremely_small_memory_still_completes(self):
        """Even a few-KB device completes thanks to per-query chunking."""
        pts, metric, tree = self._tree(n=300)
        queries = [pts[i] for i in range(8)]
        tiny = Device(DeviceSpec(memory_bytes=8 * 1024))
        res = batch_range_query(tree, pts, metric, tiny, queries, 0.3)
        assert len(res) == 8
