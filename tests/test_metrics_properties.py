"""Property-based tests of the metric axioms (Section 3 of the paper).

Every metric the library ships must satisfy non-negativity, identity of
indiscernibles (in the weak ``d(x, x) = 0`` form), symmetry and the triangle
inequality — the pruning lemmas of GTS are only correct under these axioms.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    AngularDistance,
    ChebyshevDistance,
    EditDistance,
    EuclideanDistance,
    ManhattanDistance,
)

VECTOR = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    min_size=3,
    max_size=3,
)
WORD = st.text(alphabet="abcde", min_size=0, max_size=12)

VECTOR_METRICS = [EuclideanDistance, ManhattanDistance, ChebyshevDistance]


@pytest.mark.parametrize("metric_cls", VECTOR_METRICS)
@given(a=VECTOR, b=VECTOR)
@settings(max_examples=60, deadline=None)
def test_vector_metric_non_negative_and_symmetric(metric_cls, a, b):
    metric = metric_cls()
    d_ab = metric.distance(a, b)
    d_ba = metric.distance(b, a)
    assert d_ab >= 0
    assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("metric_cls", VECTOR_METRICS)
@given(a=VECTOR)
@settings(max_examples=40, deadline=None)
def test_vector_metric_identity(metric_cls, a):
    metric = metric_cls()
    assert metric.distance(a, a) == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("metric_cls", VECTOR_METRICS)
@given(a=VECTOR, b=VECTOR, c=VECTOR)
@settings(max_examples=60, deadline=None)
def test_vector_metric_triangle_inequality(metric_cls, a, b, c):
    metric = metric_cls()
    d_ab = metric.distance(a, b)
    d_ac = metric.distance(a, c)
    d_cb = metric.distance(c, b)
    assert d_ab <= d_ac + d_cb + 1e-9


@given(a=WORD, b=WORD)
@settings(max_examples=80, deadline=None)
def test_edit_distance_symmetric_and_bounded(a, b):
    metric = EditDistance()
    d = metric.distance(a, b)
    assert d == metric.distance(b, a)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@given(a=WORD, b=WORD, c=WORD)
@settings(max_examples=80, deadline=None)
def test_edit_distance_triangle_inequality(a, b, c):
    metric = EditDistance()
    assert metric.distance(a, b) <= metric.distance(a, c) + metric.distance(c, b)


@given(a=WORD)
@settings(max_examples=40, deadline=None)
def test_edit_distance_identity(a):
    assert EditDistance().distance(a, a) == 0


@given(a=VECTOR, b=VECTOR, c=VECTOR)
@settings(max_examples=60, deadline=None)
def test_angular_distance_triangle_inequality(a, b, c):
    # avoid degenerate zero vectors, for which angular distance is defined as 0
    if not any(a) or not any(b) or not any(c):
        return
    metric = AngularDistance()
    d_ab = metric.distance(a, b)
    d_ac = metric.distance(a, c)
    d_cb = metric.distance(c, b)
    assert d_ab <= d_ac + d_cb + 1e-7


@given(a=VECTOR, b=VECTOR)
@settings(max_examples=60, deadline=None)
def test_angular_distance_range(a, b):
    metric = AngularDistance()
    d = metric.distance(a, b)
    assert -1e-9 <= d <= 1.0 + 1e-9


@pytest.mark.parametrize("metric_cls", VECTOR_METRICS)
@given(data=st.lists(VECTOR, min_size=2, max_size=8), q=VECTOR)
@settings(max_examples=30, deadline=None)
def test_pairwise_consistent_with_distance(metric_cls, data, q):
    metric = metric_cls()
    pair = metric.pairwise(q, data)
    individual = [metric.distance(q, x) for x in data]
    np.testing.assert_allclose(pair, individual, rtol=1e-9, atol=1e-9)
