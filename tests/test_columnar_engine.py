"""Columnar object store + engine-equivalence tests (DESIGN.md §8).

Two families of guarantees:

* :class:`~repro.core.objectstore.ColumnarStore` behaves exactly like the
  historical list store (ids, appends, persistence, tier blocks) while
  keeping vector data one contiguous matrix;
* the fused segmented query engine is **observably identical** to the
  historical per-query evaluation: byte-identical MRQ/MkNNQ answers and
  identical simulated ``ExecutionStats`` (kernel counts, simulated seconds,
  pool peaks, transfer flows) on resident, tiered, and sharded indexes.
  The "before" side of the comparison is the generic per-query fallback
  path (``Metric._pairwise_segmented`` + list store), which is the
  pre-refactor evaluation strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.gts as gts_module
from repro import GTS
from repro.core.objectstore import ColumnarStore, make_object_store
from repro.exceptions import IndexError_
from repro.gpusim import Device, DeviceSpec
from repro.metrics import AngularDistance, EuclideanDistance
from repro.metrics.base import Metric
from repro.metrics.vector import _VectorMetric
from repro.shard import ShardedGTS
from repro.tier import TierConfig


def _stats_fields(stats):
    """ExecutionStats as a comparable dict, excluding wall-clock host_time."""
    return {
        "kernel_launches": stats.kernel_launches,
        "parallel_steps": stats.parallel_steps,
        "total_ops": stats.total_ops,
        "sorted_elements": stats.sorted_elements,
        "bytes_to_device": stats.bytes_to_device,
        "bytes_to_host": stats.bytes_to_host,
        "allocations": stats.allocations,
        "frees": stats.frees,
        "peak_memory_bytes": stats.peak_memory_bytes,
        "sim_time": stats.sim_time,
        "pool_peak_bytes": dict(stats.pool_peak_bytes),
        "transfer_seconds": dict(stats.transfer_seconds),
    }


def _apply_legacy(mp: pytest.MonkeyPatch) -> None:
    """Force the pre-refactor evaluation strategy.

    * ``bulk_load`` keeps a plain Python list (no columnar matrix);
    * every metric answers ``pairwise_segmented`` with the generic
      per-query ``pairwise`` loop (no fused pass, no store digest).
    """
    mp.setattr(
        gts_module, "make_object_store", lambda objs: [objs[i] for i in range(len(objs))]
    )
    mp.setattr(_VectorMetric, "_pairwise_segmented", Metric._pairwise_segmented)
    mp.setattr(Metric, "store_digest", lambda self, matrix: None)


class TestColumnarStore:
    def test_round_trips_matrix(self, rng):
        data = rng.normal(size=(10, 4))
        store = ColumnarStore(data)
        assert len(store) == 10
        np.testing.assert_array_equal(store.matrix, data)
        np.testing.assert_array_equal(store[3], data[3])
        np.testing.assert_array_equal(store[-1], data[-1])

    def test_copy_on_construction(self, rng):
        data = rng.normal(size=(4, 2))
        store = ColumnarStore(data)
        data[0, 0] = 999.0
        assert store[0][0] != 999.0

    def test_gather_is_contiguous_matrix(self, rng):
        store = ColumnarStore(rng.normal(size=(20, 3)))
        got = store.gather([5, 1, 5, 19])
        assert isinstance(got, np.ndarray) and got.shape == (4, 3)
        np.testing.assert_array_equal(got[0], store[5])

    def test_append_grows_and_preserves_ids(self, rng):
        store = ColumnarStore(rng.normal(size=(3, 2)))
        rows = [store[i].copy() for i in range(3)]
        for i in range(40):
            store.append([float(i), float(-i)])
        assert len(store) == 43
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(store[i], row)
        np.testing.assert_array_equal(store[42], [39.0, -39.0])
        assert store.matrix.flags["C_CONTIGUOUS"]

    def test_append_promotes_dtype_instead_of_truncating(self):
        store = ColumnarStore(np.array([[0, 0], [3, 4], [10, 10]], dtype=np.int64))
        store.append([0.5, 0.5])
        assert store.dtype == np.float64
        np.testing.assert_array_equal(store[3], [0.5, 0.5])
        np.testing.assert_array_equal(store[1], [3.0, 4.0])  # old rows intact
        f32 = ColumnarStore(np.zeros((2, 2), dtype=np.float32))
        f32.append(np.array([0.1, 0.2], dtype=np.float64))  # not float32-exact
        assert f32.dtype == np.float64
        np.testing.assert_array_equal(f32[2], [0.1, 0.2])

    def test_insert_into_int_backed_index_keeps_float_values(self):
        data = np.array([[0, 0], [3, 4], [10, 10], [5, 5], [-2, 7], [8, 1]], dtype=np.int64)
        index = GTS.build(data, EuclideanDistance(), node_capacity=3)
        new_id = index.insert([0.5, 0.5])
        index.rebuild()
        hits = index.range_query(np.array([0.5, 0.5]), 0.01)
        assert hits == [(new_id, 0.0)]
        index.close()

    def test_append_rejects_wrong_shape(self, rng):
        store = ColumnarStore(rng.normal(size=(3, 2)))
        with pytest.raises(IndexError_):
            store.append([1.0, 2.0, 3.0])

    def test_out_of_range_access_rejected(self, rng):
        store = ColumnarStore(rng.normal(size=(3, 2)))
        with pytest.raises(IndexError_):
            store[3]

    def test_metric_digest_cached_and_invalidated(self, rng):
        store = ColumnarStore(rng.normal(size=(6, 4)))
        metric = AngularDistance()
        first = store.metric_digest(metric)
        assert store.metric_digest(metric) is first
        store.append(rng.normal(size=4))
        second = store.metric_digest(metric)
        assert second is not first and len(second) == 7

    def test_make_object_store_dispatch(self, rng):
        matrix = rng.normal(size=(5, 3))
        assert isinstance(make_object_store(matrix), ColumnarStore)
        assert isinstance(make_object_store([matrix[i] for i in range(5)]), ColumnarStore)
        strings = ["ab", "cd", "efg"]
        assert make_object_store(strings) == strings
        ragged = [np.zeros(2), np.zeros(3)]
        assert isinstance(make_object_store(ragged), list)


class TestColumnarIndexBehaviour:
    def test_bulk_load_keeps_vector_data_columnar(self, points_2d):
        index = GTS.build(points_2d, EuclideanDistance(), node_capacity=8)
        assert isinstance(index._objects, ColumnarStore)
        np.testing.assert_array_equal(index.get_object(7), points_2d[7])
        index.close()

    def test_string_data_stays_a_list(self):
        from repro.metrics import EditDistance

        words = ["apple", "apply", "angle", "ample", "maple", "staple"]
        index = GTS.build(words, EditDistance(expected_length=6), node_capacity=3)
        assert isinstance(index._objects, list)
        assert index.get_object(2) == "angle"
        index.close()

    def test_insert_appends_columnar_row(self, points_2d):
        index = GTS.build(points_2d[:100], EuclideanDistance(), node_capacity=8)
        new_id = index.insert(np.array([0.25, -0.75]))
        assert new_id == 100
        np.testing.assert_array_equal(index.get_object(new_id), [0.25, -0.75])
        hits = index.knn_query(np.array([0.25, -0.75]), 1)
        assert hits[0][0] == new_id
        index.rebuild()
        np.testing.assert_array_equal(index.get_object(new_id), [0.25, -0.75])
        index.close()

    def test_persistence_round_trips_columnar_store(self, points_2d, tmp_path):
        index = GTS.build(points_2d[:200], EuclideanDistance(), node_capacity=8, seed=3)
        queries = [points_2d[i] for i in range(6)]
        expected = index.knn_query_batch(queries, 4)
        path = index.save(tmp_path / "columnar.npz")
        loaded = GTS.load(path)
        assert isinstance(loaded._objects, ColumnarStore)
        assert loaded.knn_query_batch(queries, 4) == expected
        index.close()
        loaded.close()

    def test_tiered_store_wraps_columnar(self, points_2d):
        index = GTS.build(
            points_2d[:300],
            EuclideanDistance(),
            node_capacity=8,
            tier=TierConfig(memory_budget_bytes=2048, block_bytes=256),
        )
        assert isinstance(index._objects.store.raw, ColumnarStore)
        resident = GTS.build(points_2d[:300], EuclideanDistance(), node_capacity=8)
        queries = [points_2d[i] for i in range(10)]
        assert index.knn_query_batch(queries, 5) == resident.knn_query_batch(queries, 5)
        index.close()
        resident.close()


def _run_workload(index, queries, radius, k):
    before = index.device.snapshot()
    mrq = index.range_query_batch(queries, radius)
    knn = index.knn_query_batch(queries, k)
    index.delete(5)
    mrq2 = index.range_query_batch(queries[:4], radius)
    knn2 = index.knn_query_batch(queries[:4], k)
    delta = index.device.stats.delta_since(before)
    return (mrq, knn, mrq2, knn2), _stats_fields(delta)


class TestEngineEquivalence:
    """Fused engine vs the pre-refactor per-query strategy: byte-identical."""

    @pytest.fixture
    def vector_data(self, rng):
        basis = rng.normal(size=(4, 24))
        codes = rng.normal(size=(400, 4))
        data = codes @ basis + 0.1 * rng.normal(size=(400, 24))
        return data / np.linalg.norm(data, axis=1, keepdims=True)

    def _build(self, data, **kwargs):
        return GTS.build(
            data, AngularDistance(), node_capacity=8, seed=11,
            device=Device(DeviceSpec()), **kwargs
        )

    def _both_strategies(self, run):
        """Run a workload on the legacy strategy and on the fast path."""
        with pytest.MonkeyPatch.context() as mp:
            _apply_legacy(mp)
            legacy = run(expect_columnar=False)
        fast = run(expect_columnar=True)
        return legacy, fast

    def test_resident_answers_and_stats_identical(self, vector_data):
        queries = [vector_data[i] for i in range(16)]

        def run(expect_columnar):
            index = self._build(vector_data)
            assert isinstance(index._objects, ColumnarStore) == expect_columnar
            result = _run_workload(index, queries, 0.2, 5)
            index.close()
            return result

        legacy, fast = self._both_strategies(run)
        assert fast[0] == legacy[0]  # byte-identical MRQ/MkNNQ answers
        assert fast[1] == legacy[1]  # identical ExecutionStats

    def test_tiered_answers_and_stats_identical(self, vector_data):
        from repro.core.construction import objects_nbytes

        budget = max(2048, objects_nbytes(vector_data) // 4)  # cap 0.25
        queries = [vector_data[i] for i in range(16)]

        def run(expect_columnar):
            index = self._build(
                vector_data, tier=TierConfig(memory_budget_bytes=budget, block_bytes=512)
            )
            answers, stats = _run_workload(index, queries, 0.2, 5)
            pager = dict(
                hits=index.pager.stats.hits,
                misses=index.pager.stats.misses,
                evictions=index.pager.stats.evictions,
                bytes_h2d=index.pager.stats.bytes_h2d,
            )
            index.close()
            return answers, stats, pager

        legacy, fast = self._both_strategies(run)
        assert fast == legacy  # answers, ExecutionStats, and pager traffic

    def test_sharded_answers_and_stats_identical(self, vector_data):
        queries = [vector_data[i] for i in range(16)]

        def run(expect_columnar):
            index = ShardedGTS.build(
                vector_data, AngularDistance(), num_shards=2, node_capacity=8, seed=11
            )
            before = index.device.snapshot()
            mrq = index.range_query_batch(queries, 0.2)
            knn = index.knn_query_batch(queries, 5)
            delta = index.device.stats.delta_since(before)
            index.close()
            return (mrq, knn), _stats_fields(delta)

        legacy, fast = self._both_strategies(run)
        assert fast == legacy
