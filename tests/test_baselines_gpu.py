"""Tests for the GPU baselines (GPU-Table, GPU-Tree, LBPG-Tree, GANNS) and the GTS adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GANNS, GPUTable, GPUTree, GTSIndex, LBPGTree
from repro.exceptions import BaselineError, MemoryDeadlockError, UnsupportedMetricError
from repro.gpusim import Device, DeviceSpec, MiB
from repro.metrics import AngularDistance, EditDistance, EuclideanDistance, ManhattanDistance
from tests.conftest import brute_force_knn, brute_force_range


def _ids(results):
    return {o for o, _ in results}


class TestGPUTable:
    def test_range_query_exact(self, points_2d, l2_metric):
        index = GPUTable(EuclideanDistance())
        index.build(points_2d)
        got = index.range_query(points_2d[0], 0.7)
        expected = brute_force_range(points_2d, l2_metric, points_2d[0], 0.7)
        assert _ids(got) == _ids(expected)

    def test_knn_exact(self, points_2d, l2_metric):
        index = GPUTable(EuclideanDistance())
        index.build(points_2d)
        got = index.knn_query(points_2d[5], 9)
        expected = brute_force_knn(points_2d, l2_metric, points_2d[5], 9)
        np.testing.assert_allclose(
            sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
        )

    def test_supports_string_metrics(self, word_list):
        index = GPUTable(EditDistance())
        index.build(word_list)
        assert len(index.knn_query("metric", 3)) == 3

    def test_computes_all_distances(self, points_2d):
        metric = EuclideanDistance()
        index = GPUTable(metric)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query_batch([points_2d[0], points_2d[1]], 0.5)
        assert metric.pair_count == 2 * len(points_2d)

    def test_oom_on_huge_batch_with_small_device(self, points_2d):
        device = Device(DeviceSpec(memory_bytes=64 * 1024))
        index = GPUTable(EuclideanDistance(), device=device)
        index.build(points_2d)
        with pytest.raises(MemoryDeadlockError):
            index.range_query_batch([points_2d[0]] * 64, 0.5)

    def test_distance_table_memory_released_after_query(self, points_2d):
        index = GPUTable(EuclideanDistance())
        index.build(points_2d)
        used = index.device.used_bytes
        index.range_query_batch([points_2d[0]] * 8, 0.5)
        assert index.device.used_bytes == used

    def test_update_by_rebuild(self, points_2d):
        index = GPUTable(EuclideanDistance())
        index.build(points_2d)
        obj_id = index.insert(np.array([90.0, 90.0]))
        assert obj_id in _ids(index.range_query(np.array([90.0, 90.0]), 0.1))
        index.delete(obj_id)
        assert obj_id not in _ids(index.range_query(np.array([90.0, 90.0]), 0.1))


class TestGPUTree:
    def test_range_query_exact(self, points_2d, l2_metric):
        index = GPUTree(EuclideanDistance(), num_trees=8)
        index.build(points_2d)
        got = index.range_query(points_2d[2], 0.8)
        expected = brute_force_range(points_2d, l2_metric, points_2d[2], 0.8)
        assert _ids(got) == _ids(expected)

    def test_knn_exact(self, points_2d, l2_metric):
        index = GPUTree(EuclideanDistance(), num_trees=8)
        index.build(points_2d)
        got = index.knn_query(points_2d[2], 5)
        expected = brute_force_knn(points_2d, l2_metric, points_2d[2], 5)
        np.testing.assert_allclose(
            sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
        )

    def test_builds_multiple_trees(self, points_2d):
        index = GPUTree(EuclideanDistance(), num_trees=16)
        index.build(points_2d)
        assert len(index._trees) == 16

    def test_memory_deadlock_on_large_batch(self, points_2d):
        """Fixed per-(query, tree) result buffers exhaust a small device (Fig. 9)."""
        device = Device(DeviceSpec(memory_bytes=2 * MiB))
        index = GPUTree(EuclideanDistance(), device=device, num_trees=32)
        index.build(points_2d)
        with pytest.raises(MemoryDeadlockError):
            index.range_query_batch([points_2d[0]] * 512, 0.5)

    def test_small_batch_fits_on_small_device(self, points_2d):
        device = Device(DeviceSpec(memory_bytes=2 * MiB))
        index = GPUTree(EuclideanDistance(), device=device, num_trees=4)
        index.build(points_2d)
        assert len(index.range_query_batch([points_2d[0]] * 4, 0.5)) == 4

    def test_string_support(self, word_list):
        index = GPUTree(EditDistance(), num_trees=4)
        index.build(word_list)
        got = index.range_query("metric", 1)
        expected = brute_force_range(word_list, EditDistance(), "metric", 1)
        assert _ids(got) == _ids(expected)


class TestLBPGTree:
    def test_only_lp_metrics_supported(self):
        assert LBPGTree.supports_metric(EuclideanDistance())
        assert LBPGTree.supports_metric(ManhattanDistance())
        assert not LBPGTree.supports_metric(EditDistance())
        assert not LBPGTree.supports_metric(AngularDistance())

    def test_build_rejects_string_metric(self, word_list):
        index = LBPGTree(EditDistance())
        with pytest.raises(UnsupportedMetricError):
            index.build(word_list)

    def test_range_query_exact_l2(self, points_2d, l2_metric):
        index = LBPGTree(EuclideanDistance(), leaf_size=16)
        index.build(points_2d)
        got = index.range_query(points_2d[0] + 0.01, 0.8)
        expected = brute_force_range(points_2d, l2_metric, points_2d[0] + 0.01, 0.8)
        assert _ids(got) == _ids(expected)

    def test_range_query_exact_l1_highdim(self, points_highdim, l1_metric):
        index = LBPGTree(ManhattanDistance(), leaf_size=16)
        index.build(points_highdim)
        got = index.range_query(points_highdim[0], 3.0)
        expected = brute_force_range(points_highdim, l1_metric, points_highdim[0], 3.0)
        assert _ids(got) == _ids(expected)

    def test_knn_exact(self, points_2d, l2_metric):
        index = LBPGTree(EuclideanDistance())
        index.build(points_2d)
        got = index.knn_query(points_2d[9], 4)
        expected = brute_force_knn(points_2d, l2_metric, points_2d[9], 4)
        np.testing.assert_allclose(
            sorted(d for _, d in got), sorted(d for _, d in expected), atol=1e-9
        )

    def test_mbr_pruning_effective_in_low_dimension(self, points_2d):
        metric = EuclideanDistance()
        index = LBPGTree(metric)
        index.build(points_2d)
        metric.reset_counter()
        index.range_query(points_2d[0], 0.2)
        assert metric.pair_count < len(points_2d)

    def test_storage_reported(self, points_2d):
        index = LBPGTree(EuclideanDistance())
        index.build(points_2d)
        assert index.storage_bytes > 0


class TestGANNS:
    def test_vectors_only(self, word_list):
        assert not GANNS.supports_metric(EditDistance())
        index = GANNS(EditDistance())
        with pytest.raises(UnsupportedMetricError):
            index.build(word_list)

    def test_no_range_queries(self, points_2d):
        index = GANNS(EuclideanDistance())
        index.build(points_2d)
        with pytest.raises(BaselineError):
            index.range_query(points_2d[0], 1.0)
        assert index.supports_range is False

    def test_knn_high_recall(self, points_2d, l2_metric):
        index = GANNS(EuclideanDistance(), degree=16, ef_search=64)
        index.build(points_2d)
        recalls = []
        for qi in range(10):
            got = _ids(index.knn_query(points_2d[qi], 10))
            expected = _ids(brute_force_knn(points_2d, l2_metric, points_2d[qi], 10))
            recalls.append(len(got & expected) / 10)
        assert np.mean(recalls) >= 0.8

    def test_knn_returns_k_results(self, points_2d):
        index = GANNS(EuclideanDistance())
        index.build(points_2d)
        assert len(index.knn_query(points_2d[0], 7)) == 7

    def test_storage_larger_than_gts(self, points_2d):
        """The proximity graph is much larger than GTS's node+table lists (Table 4)."""
        ganns = GANNS(EuclideanDistance())
        ganns.build(points_2d)
        gts = GTSIndex(EuclideanDistance())
        gts.build(points_2d)
        assert ganns.storage_bytes > gts.storage_bytes

    def test_is_marked_approximate(self):
        assert GANNS.is_exact is False


class TestGTSAdapter:
    def test_matches_oracle(self, points_2d, l2_metric):
        index = GTSIndex(EuclideanDistance())
        index.build(points_2d)
        got = index.range_query(points_2d[0], 0.9)
        expected = brute_force_range(points_2d, l2_metric, points_2d[0], 0.9)
        assert _ids(got) == _ids(expected)

    def test_updates_through_adapter(self, points_2d):
        index = GTSIndex(EuclideanDistance())
        index.build(points_2d)
        new_id = index.insert(np.array([77.0, 77.0]))
        assert new_id in _ids(index.range_query(np.array([77.0, 77.0]), 0.1))
        index.delete(new_id)
        assert new_id not in _ids(index.range_query(np.array([77.0, 77.0]), 0.1))
        assert index.live_ids().tolist().count(new_id) == 0

    def test_batch_update_through_adapter(self, points_2d):
        index = GTSIndex(EuclideanDistance())
        index.build(points_2d)
        index.batch_update(inserts=[np.array([88.0, 88.0])], deletes=[0])
        assert 0 not in _ids(index.knn_query(points_2d[0], 1))

    def test_exposes_wrapped_gts(self, points_2d):
        index = GTSIndex(EuclideanDistance(), node_capacity=10)
        index.build(points_2d)
        assert index.gts.node_capacity == 10
        assert index.storage_bytes == index.gts.storage_bytes

    def test_is_gpu_flag(self):
        assert GTSIndex.is_gpu and GPUTable.is_gpu
        assert GTSIndex.is_exact
