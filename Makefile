# Convenience targets for the GTS reproduction.
#
#   make test         tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke  fast benchmark smoke run (reduced scale, quick figures)
#   make bench        full benchmark harness (all paper figures/tables)
#   make profile      cProfile a standard serve-sim workload (top-20 by cumtime)
#   make profile-updates  cProfile an update-heavy serve-sim workload with
#                     non-blocking maintenance enabled (top-20 by cumtime)
#   make lint         byte-compile every source tree (no linter is vendored)
#   make example      run the quickstart end to end
#   make examples     run every example script (the CI smoke job)
#
# bench/bench-smoke write machine-readable result manifests (BENCH_full.json /
# BENCH_smoke.json: config snapshot + per-experiment rows) next to this file,
# so the perf trajectory is trackable across PRs; see benchmarks/README.md.

PYTHON      ?= python
PYTHONPATH  := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test bench-smoke bench profile profile-updates lint example examples

test:
	$(PYTHON) -m pytest -x -q

# The smoke run keeps the default (calibrated) scale and picks the fast
# files; the benchmark shape assertions are not tuned for very small scales.
bench-smoke:
	REPRO_BENCH_MANIFEST=BENCH_smoke.json $(PYTHON) -m pytest -q \
		benchmarks/bench_ablations.py \
		benchmarks/bench_approx.py \
		benchmarks/bench_fig8_gpu_memory.py \
		benchmarks/bench_fig10_identical.py \
		benchmarks/bench_service_throughput.py \
		benchmarks/bench_sharding.py \
		benchmarks/bench_memory_tiering.py \
		benchmarks/bench_host_wallclock.py \
		benchmarks/bench_update_path.py

# bench_*.py does not match pytest's default test-file pattern, so the files
# must be named explicitly (a bare `pytest benchmarks` collects nothing).
bench:
	REPRO_BENCH_MANIFEST=BENCH_full.json $(PYTHON) -m pytest -q benchmarks/bench_*.py

# Profile the host wall-clock of a standard serve-sim workload so perf PRs
# start from data rather than guesses; prints the top-20 functions by
# cumulative time and leaves the raw stats in profile.out.
profile:
	$(PYTHON) -m cProfile -o profile.out -m repro.cli serve-sim \
		--dataset vector --cardinality 6000 --clients 8 --rate 200000 \
		--duration 4e-3 --max-batch 128
	$(PYTHON) -c "import pstats; pstats.Stats('profile.out').sort_stats('cumulative').print_stats(20)"

# Profile the update path: an insert-heavy stream over a small cache with
# non-blocking generation-swap maintenance, so rebuild slices show up in the
# profile instead of monolithic stop-the-world builds.
profile-updates:
	$(PYTHON) -m cProfile -o profile_updates.out -m repro.cli serve-sim \
		--dataset tloc --cardinality 8000 --clients 8 --rate 200000 \
		--duration 4e-3 --max-batch 128 --update-heavy --cache-kb 0.5 \
		--maintenance
	$(PYTHON) -c "import pstats; pstats.Stats('profile_updates.out').sort_stats('cumulative').print_stats(20)"

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"

example:
	$(PYTHON) examples/quickstart.py

examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script; \
	done
