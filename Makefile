# Convenience targets for the GTS reproduction.
#
#   make test         tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke  fast benchmark smoke run (reduced scale, 2 quick figures)
#   make bench        full benchmark harness (all paper figures/tables)
#   make lint         byte-compile every source tree (no linter is vendored)
#   make example      run the quickstart end to end

PYTHON      ?= python
PYTHONPATH  := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test bench-smoke bench lint example

test:
	$(PYTHON) -m pytest -x -q

# The smoke run keeps the default (calibrated) scale and picks the fast
# files; the benchmark shape assertions are not tuned for very small scales.
bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_ablations.py \
		benchmarks/bench_approx.py \
		benchmarks/bench_fig8_gpu_memory.py \
		benchmarks/bench_fig10_identical.py \
		benchmarks/bench_service_throughput.py \
		benchmarks/bench_sharding.py

# bench_*.py does not match pytest's default test-file pattern, so the files
# must be named explicitly (a bare `pytest benchmarks` collects nothing).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"

example:
	$(PYTHON) examples/quickstart.py
