# Convenience targets for the GTS reproduction.
#
#   make test         tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke  fast benchmark smoke run (reduced scale, quick figures)
#   make bench        full benchmark harness (all paper figures/tables)
#   make lint         byte-compile every source tree (no linter is vendored)
#   make example      run the quickstart end to end
#   make examples     run every example script (the CI smoke job)
#
# bench/bench-smoke write machine-readable result manifests (BENCH_full.json /
# BENCH_smoke.json: config snapshot + per-experiment rows) next to this file,
# so the perf trajectory is trackable across PRs; see benchmarks/README.md.

PYTHON      ?= python
PYTHONPATH  := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test bench-smoke bench lint example examples

test:
	$(PYTHON) -m pytest -x -q

# The smoke run keeps the default (calibrated) scale and picks the fast
# files; the benchmark shape assertions are not tuned for very small scales.
bench-smoke:
	REPRO_BENCH_MANIFEST=BENCH_smoke.json $(PYTHON) -m pytest -q \
		benchmarks/bench_ablations.py \
		benchmarks/bench_approx.py \
		benchmarks/bench_fig8_gpu_memory.py \
		benchmarks/bench_fig10_identical.py \
		benchmarks/bench_service_throughput.py \
		benchmarks/bench_sharding.py \
		benchmarks/bench_memory_tiering.py

# bench_*.py does not match pytest's default test-file pattern, so the files
# must be named explicitly (a bare `pytest benchmarks` collects nothing).
bench:
	REPRO_BENCH_MANIFEST=BENCH_full.json $(PYTHON) -m pytest -q benchmarks/bench_*.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro; print('import ok:', repro.__version__)"

example:
	$(PYTHON) examples/quickstart.py

examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script; \
	done
