"""Beam-search approximate similarity queries over a built GTS index.

The exact batch search (Algorithms 4-5) expands *every* child that survives
the triangle-inequality pruning.  On hard workloads (large radii, high
intrinsic dimensionality) most children survive and the search degenerates
towards a scan.  :class:`ApproximateGTS` bounds that explosion: at every
level each query keeps only its ``beam_width`` most promising children,
ranked by the lower bound

``lb(child) = max(0, min_dis - d(q, pivot), d(q, pivot) - max_dis)``

— the closest the child's objects can possibly be to the query given the
stored distance interval.  The descent therefore touches at most
``beam_width`` nodes per level per query and verifies at most
``beam_width * Nc`` leaf objects, independent of how selective the query is.

Only candidates whose real distance has been computed are ever reported, so

* approximate range answers are a *subset* of the exact answers (perfect
  precision, recall <= 1);
* approximate kNN answers contain real objects at their true distances, but
  may miss some of the true k nearest (recall <= 1).

The class runs on the same simulated device as the exact search and charges
kernels for pivot distances, pruning, beam selection and leaf verification,
so its simulated cost is directly comparable with the exact cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.construction import take_objects
from ..core.gts import GTS
from ..core.nodes import TreeStructure
from ..core.searchcommon import broadcast_query_param
from ..exceptions import QueryError
from ..gpusim.device import Device
from ..metrics.base import Metric

__all__ = ["ApproximateGTS"]


class ApproximateGTS:
    """Approximate batch MRQ / MkNNQ over an existing :class:`GTS` index.

    Parameters
    ----------
    index:
        A built GTS index; the approximate search reuses its tree, metric and
        simulated device and never modifies them.
    beam_width:
        Maximum number of tree nodes each query keeps per level.  ``1`` gives
        a greedy single-path descent, larger values converge to the exact
        answer (and cost).
    """

    def __init__(self, index: GTS, beam_width: int = 4):
        if beam_width < 1:
            raise QueryError(f"beam width must be at least 1, got {beam_width}")
        self.index = index
        self.beam_width = int(beam_width)

    # ------------------------------------------------------------ properties
    @property
    def tree(self) -> TreeStructure:
        return self.index.tree

    @property
    def metric(self) -> Metric:
        return self.index.metric

    @property
    def device(self) -> Device:
        return self.index.device

    # ------------------------------------------------------------ public API
    def knn_query(self, query, k: int) -> list[tuple[int, float]]:
        """Approximate single kNN query."""
        return self.knn_query_batch([query], k)[0]

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        """Approximate batch kNN: per query, the best k candidates the beam saw."""
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        if np.any(k_arr <= 0):
            raise QueryError("k must be positive")
        pools = self._descend(queries, radii=None)
        results = []
        for qi in range(len(queries)):
            ranked = sorted(pools[qi].items(), key=lambda item: (item[1], item[0]))
            results.append([(int(o), float(d)) for o, d in ranked[: int(k_arr[qi])]])
        return results

    def range_query(self, query, radius: float) -> list[tuple[int, float]]:
        """Approximate single range query (subset of the exact answer)."""
        return self.range_query_batch([query], radius)[0]

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        """Approximate batch range query: verified hits within the beam only."""
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        if np.any(radii_arr < 0):
            raise QueryError("range query radius must be non-negative")
        pools = self._descend(queries, radii=radii_arr)
        results = []
        for qi in range(len(queries)):
            hits = [
                (int(o), float(d)) for o, d in pools[qi].items() if d <= float(radii_arr[qi])
            ]
            results.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return results

    def cost_ratio_estimate(self) -> float:
        """Rough fraction of the exact leaf work the beam can touch.

        The exact search may verify every leaf; the beam verifies at most
        ``beam_width`` leaves per query.  This is the planning-time ratio the
        recall/cost experiment reports alongside the measured values.
        """
        num_leaves = max(1, len(self.tree.leaves()))
        return min(1.0, self.beam_width / num_leaves)

    # ---------------------------------------------------------------- descent
    def _descend(self, queries: Sequence, radii: Optional[np.ndarray]) -> list[dict[int, float]]:
        """Shared beam descent; returns one candidate pool per query."""
        tree = self.tree
        objects = self.index._objects
        exclude = self.index._tombstones
        num_queries = len(queries)
        pools: list[dict[int, float]] = [dict() for _ in range(num_queries)]
        if num_queries == 0 or tree.num_objects == 0:
            return pools

        # current frontier: per query, the node ids of the beam at this level
        frontier: list[np.ndarray] = [np.zeros(1, dtype=np.int64) for _ in range(num_queries)]

        for level in tree.iter_levels():
            if tree.is_leaf_level(level):
                break
            new_frontier: list[np.ndarray] = []
            total_children = 0
            for qi in range(num_queries):
                nodes = frontier[qi]
                if len(nodes) == 0:
                    new_frontier.append(nodes)
                    continue
                kept, children_seen = self._expand_query(
                    tree, objects, queries[qi], qi, nodes, pools[qi], radii, exclude
                )
                total_children += children_seen
                new_frontier.append(kept)
            # one level-wide kernel: pruning + beam selection over all children
            self.device.launch_kernel(
                work_items=max(1, total_children), op_cost=3.0, label="approx-beam-select"
            )
            frontier = new_frontier

        self._verify_leaves(queries, frontier, pools, radii, exclude)
        return pools

    def _expand_query(
        self,
        tree: TreeStructure,
        objects: Sequence,
        query,
        query_index: int,
        nodes: np.ndarray,
        pool: dict[int, float],
        radii: Optional[np.ndarray],
        exclude: set,
    ) -> tuple[np.ndarray, int]:
        """Expand one query's beam by one level; returns (kept children, #children)."""
        pivots = tree.pivot[nodes]
        valid = pivots >= 0
        if not np.any(valid):
            return np.zeros(0, dtype=np.int64), 0
        nodes = nodes[valid]
        pivots = pivots[valid]
        pivot_objs = take_objects(objects, pivots)
        dists = self.metric.pairwise(query, pivot_objs)
        self.device.launch_kernel(
            work_items=len(pivots), op_cost=self.metric.unit_cost, label="approx-pivot-dist"
        )
        for pid, dist in zip(pivots, dists):
            self._offer(pool, int(pid), float(dist), exclude)

        nc = tree.node_capacity
        child_ids = nodes[:, None] * nc + 1 + np.arange(nc, dtype=np.int64)[None, :]
        lb = np.maximum(
            0.0,
            np.maximum(
                tree.min_dis[child_ids] - dists[:, None],
                dists[:, None] - tree.max_dis[child_ids],
            ),
        )
        flat_children = child_ids.ravel()
        flat_lb = lb.ravel()
        keep = tree.size[flat_children] > 0
        if radii is not None:
            keep &= flat_lb <= float(radii[query_index])
        flat_children = flat_children[keep]
        flat_lb = flat_lb[keep]
        if len(flat_children) == 0:
            return np.zeros(0, dtype=np.int64), int(child_ids.size)
        order = np.argsort(flat_lb, kind="stable")[: self.beam_width]
        return flat_children[order].astype(np.int64), int(child_ids.size)

    def _verify_leaves(
        self,
        queries: Sequence,
        frontier: list[np.ndarray],
        pools: list[dict[int, float]],
        radii: Optional[np.ndarray],
        exclude: set,
    ) -> None:
        """Compute the real distances of every object in the surviving leaves."""
        tree = self.tree
        objects = self.index._objects
        total = 0
        for qi, nodes in enumerate(frontier):
            if len(nodes) == 0:
                continue
            obj_ids = np.concatenate([tree.node_objects(int(n)) for n in nodes])
            if exclude:
                obj_ids = obj_ids[~np.isin(obj_ids, list(exclude))]
            if len(obj_ids) == 0:
                continue
            candidates = take_objects(objects, obj_ids)
            dists = self.metric.pairwise(queries[qi], candidates)
            total += len(obj_ids)
            for oid, dist in zip(obj_ids, dists):
                self._offer(pools[qi], int(oid), float(dist), exclude)
        self.device.launch_kernel(
            work_items=max(1, total), op_cost=self.metric.unit_cost, label="approx-verify"
        )

    @staticmethod
    def _offer(pool: dict[int, float], obj_id: int, dist: float, exclude: set) -> None:
        if exclude and obj_id in exclude:
            return
        prev = pool.get(obj_id)
        if prev is None or dist < prev:
            pool[obj_id] = dist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ApproximateGTS(beam_width={self.beam_width}, index={self.index!r})"
