"""Recall and precision utilities for approximate similarity search.

Approximate methods (``ApproximateGTS``, ``LearnedLeafRouter``, the GANNS
baseline) trade answer completeness for fewer distance computations.  The
functions here quantify that trade-off by comparing an approximate answer
with the exact answer produced by :class:`~repro.core.gts.GTS` or
:class:`~repro.baselines.linear_scan.LinearScan`.

All functions accept answers in the library's standard result format: a list
of ``(object_id, distance)`` pairs per query.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import QueryError

__all__ = ["knn_recall", "mean_knn_recall", "range_recall", "mean_range_recall"]


def _ids(result: Sequence[tuple[int, float]]) -> set[int]:
    return {int(obj_id) for obj_id, _ in result}


def knn_recall(
    approximate: Sequence[tuple[int, float]],
    exact: Sequence[tuple[int, float]],
    tie_tolerance: float = 1e-9,
) -> float:
    """Recall@k of one approximate kNN answer against the exact answer.

    Ties are treated generously: an approximate neighbour whose distance is
    within ``tie_tolerance`` of the exact k-th distance counts as correct even
    if its id differs (both answers are then equally valid k-sets).
    """
    if not exact:
        return 1.0
    exact_ids = _ids(exact)
    kth = max(dist for _, dist in exact)
    correct = 0
    for obj_id, dist in approximate:
        if int(obj_id) in exact_ids or dist <= kth + tie_tolerance:
            correct += 1
    return min(1.0, correct / len(exact))


def mean_knn_recall(
    approximate: Sequence[Sequence[tuple[int, float]]],
    exact: Sequence[Sequence[tuple[int, float]]],
    tie_tolerance: float = 1e-9,
) -> float:
    """Mean recall@k over a batch of queries."""
    if len(approximate) != len(exact):
        raise QueryError(
            f"batch size mismatch: {len(approximate)} approximate vs {len(exact)} exact answers"
        )
    if not exact:
        return 1.0
    values = [knn_recall(a, e, tie_tolerance) for a, e in zip(approximate, exact)]
    return float(np.mean(values))


def range_recall(
    approximate: Sequence[tuple[int, float]],
    exact: Sequence[tuple[int, float]],
) -> float:
    """Recall of one approximate range answer: |approx ∩ exact| / |exact|."""
    if not exact:
        return 1.0
    exact_ids = _ids(exact)
    return len(_ids(approximate) & exact_ids) / len(exact_ids)


def mean_range_recall(
    approximate: Sequence[Sequence[tuple[int, float]]],
    exact: Sequence[Sequence[tuple[int, float]]],
) -> float:
    """Mean range-query recall over a batch of queries."""
    if len(approximate) != len(exact):
        raise QueryError(
            f"batch size mismatch: {len(approximate)} approximate vs {len(exact)} exact answers"
        )
    if not exact:
        return 1.0
    values = [range_recall(a, e) for a, e in zip(approximate, exact)]
    return float(np.mean(values))
