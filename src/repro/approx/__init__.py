"""Approximate similarity search on top of the GTS tree.

The paper's concluding section names approximate search (optionally with a
learned component) on the GPU tree as its follow-up direction.  This package
provides that extension on the same simulated substrate:

* :class:`~repro.approx.beam.ApproximateGTS` — beam-search descent over a
  built :class:`~repro.core.gts.GTS` index: at every level only the
  ``beam_width`` most promising children per query survive, so the number of
  distance computations is bounded at the price of exactness;
* :class:`~repro.approx.learned.LearnedLeafRouter` — a learned ranking of the
  leaves (linear model over pivot-space features) that verifies only the
  ``leaf_budget`` leaves predicted closest to the query;
* :mod:`~repro.approx.recall` — recall / precision utilities for comparing
  approximate answers with exact ones.

Both approximate strategies only ever *verify* candidates with real distance
computations, so they never report false positives for range queries and
their kNN answers are always real objects at their true distances — only
completeness (recall) is traded away.
"""

from .beam import ApproximateGTS
from .learned import LearnedLeafRouter
from .recall import knn_recall, mean_knn_recall, mean_range_recall, range_recall

__all__ = [
    "ApproximateGTS",
    "LearnedLeafRouter",
    "knn_recall",
    "mean_knn_recall",
    "range_recall",
    "mean_range_recall",
]
