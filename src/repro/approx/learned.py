"""A learned leaf router: the paper's "learned index" future-work direction.

The idea sketched in the paper's conclusion is to use a learned component on
the GPU to steer approximate search.  This module implements the simplest
credible version of that idea on the simulated substrate:

* every leaf of a built GTS tree is described by cheap *pivot-space features*
  of the query — the distance from the query to the pivot of each of the
  leaf's ancestors, combined with the leaf's stored ``[min_dis, max_dis]``
  interval;
* a linear model (ordinary least squares, fitted once on a sample of training
  queries whose true leaf distances are computed exactly) predicts, from
  those features, how close the leaf's nearest object is to the query;
* at query time the model ranks all leaves with one matrix-vector product and
  only the ``leaf_budget`` best-ranked leaves are verified with real distance
  computations.

Exactly like :class:`~repro.approx.beam.ApproximateGTS`, reported candidates
always carry their true distance, so precision is perfect and only recall is
traded.  The fit happens on the host; ranking and verification are charged to
the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.construction import take_objects
from ..core.gts import GTS
from ..core.searchcommon import broadcast_query_param
from ..exceptions import QueryError
from ..metrics.base import Metric

__all__ = ["LearnedLeafRouter"]


@dataclass
class _LeafDescriptor:
    """Static description of one leaf used to build query features."""

    leaf_id: int
    #: pivot object ids of the leaf's ancestors, root first
    ancestor_pivots: list[int]
    #: stored distance interval of the leaf (to its parent's pivot)
    min_dis: float
    max_dis: float
    #: the root-to-leaf chain of (pivot id, min_dis, max_dis) triples: for every
    #: node on the path below the root, the pivot of its parent and the node's
    #: stored distance interval to that pivot
    chain: list[tuple[int, float, float]] = None


class LearnedLeafRouter:
    """Learned approximate kNN / range search over the leaves of a GTS tree.

    Parameters
    ----------
    index:
        A built :class:`GTS` index.
    leaf_budget:
        How many leaves are verified per query (the knob trading recall for
        distance computations).
    training_queries:
        Objects used to fit the model; when omitted, ``fit`` must be called
        explicitly before querying.
    ridge:
        Small L2 regularisation added to the normal equations for stability.
    """

    def __init__(
        self,
        index: GTS,
        leaf_budget: int = 4,
        training_queries: Optional[Sequence] = None,
        ridge: float = 1e-6,
        seed: int = 23,
    ):
        if leaf_budget < 1:
            raise QueryError(f"leaf budget must be at least 1, got {leaf_budget}")
        self.index = index
        self.leaf_budget = int(leaf_budget)
        self.ridge = float(ridge)
        self._rng = np.random.default_rng(seed)
        self._leaves = self._describe_leaves()
        self._weights: Optional[np.ndarray] = None
        self._pivot_ids = self._collect_pivot_ids()
        if training_queries is not None:
            self.fit(training_queries)

    # -------------------------------------------------------------- plumbing
    @property
    def metric(self) -> Metric:
        return self.index.metric

    @property
    def is_fitted(self) -> bool:
        """Whether the routing model has been fitted."""
        return self._weights is not None

    def _describe_leaves(self) -> list[_LeafDescriptor]:
        tree = self.index.tree
        descriptors = []
        for leaf_id in tree.leaves():
            ancestors = []
            chain = []
            node = int(leaf_id)
            while node > 0:
                parent = tree.parent_of(node)
                pivot = int(tree.pivot[parent])
                if pivot >= 0:
                    ancestors.append(pivot)
                    lo = float(tree.min_dis[node]) if np.isfinite(tree.min_dis[node]) else 0.0
                    hi = float(tree.max_dis[node]) if np.isfinite(tree.max_dis[node]) else 0.0
                    chain.append((pivot, lo, hi))
                node = parent
            ancestors.reverse()
            chain.reverse()
            descriptors.append(
                _LeafDescriptor(
                    leaf_id=int(leaf_id),
                    ancestor_pivots=ancestors,
                    min_dis=float(tree.min_dis[leaf_id]) if np.isfinite(tree.min_dis[leaf_id]) else 0.0,
                    max_dis=float(tree.max_dis[leaf_id]) if np.isfinite(tree.max_dis[leaf_id]) else 0.0,
                    chain=chain,
                )
            )
        return descriptors

    def _collect_pivot_ids(self) -> list[int]:
        ids = []
        seen = set()
        for leaf in self._leaves:
            for pid in leaf.ancestor_pivots:
                if pid not in seen:
                    seen.add(pid)
                    ids.append(pid)
        return ids

    def _pivot_distances(self, query) -> dict[int, float]:
        if not self._pivot_ids:
            return {}
        pivot_objs = take_objects(self.index._objects, np.asarray(self._pivot_ids, dtype=np.int64))
        dists = self.metric.pairwise(query, pivot_objs)
        self.index.device.launch_kernel(
            work_items=len(self._pivot_ids), op_cost=self.metric.unit_cost, label="learned-pivot-dist"
        )
        return {pid: float(d) for pid, d in zip(self._pivot_ids, dists)}

    def _features(self, query, pivot_dists: dict[int, float]) -> np.ndarray:
        """Feature matrix with one row per leaf.

        Features per leaf (all derived from pivot-space quantities that cost
        only the ancestor-pivot distances already computed once per query):

        0. intercept;
        1. ``d(q, parent pivot)``;
        2. the root-to-leaf *chain lower bound*: the maximum, over every node
           on the leaf's path, of the Lemma 5.1 bound
           ``max(0, min_dis - d(q, p), d(q, p) - max_dis)`` — exactly the
           pruning bound the exact search accumulates while descending;
        3. mean distance from ``d(q, p)`` to the middle of each node's ring
           ``[min_dis, max_dis]`` along the path (how well the query sits in
           the leaf's rings even when the lower bounds are all zero);
        4. mean distance from the query to the leaf's ancestor pivots;
        5. minimum distance from the query to the leaf's ancestor pivots.
        """
        rows = np.zeros((len(self._leaves), 6), dtype=np.float64)
        for i, leaf in enumerate(self._leaves):
            ancestor_d = [pivot_dists[p] for p in leaf.ancestor_pivots] or [0.0]
            parent_d = ancestor_d[-1]
            chain_lb = 0.0
            ring_dev = []
            for pivot, lo, hi in leaf.chain or []:
                d = pivot_dists[pivot]
                chain_lb = max(chain_lb, lo - d, d - hi)
                ring_dev.append(abs(d - 0.5 * (lo + hi)))
            rows[i] = (
                1.0,
                parent_d,
                max(0.0, chain_lb),
                float(np.mean(ring_dev)) if ring_dev else 0.0,
                float(np.mean(ancestor_d)),
                float(np.min(ancestor_d)),
            )
        return rows

    # -------------------------------------------------------------- training
    def fit(self, training_queries: Sequence) -> "LearnedLeafRouter":
        """Fit the leaf-distance model on the given training queries.

        The regression target for (query, leaf) is the true distance from the
        query to the leaf's nearest object, computed exactly on the host.
        """
        if len(training_queries) == 0:
            raise QueryError("cannot fit the learned router on an empty training set")
        tree = self.index.tree
        objects = self.index._objects
        features = []
        targets = []
        for query in training_queries:
            pivot_dists = self._pivot_distances(query)
            rows = self._features(query, pivot_dists)
            for i, leaf in enumerate(self._leaves):
                obj_ids = tree.node_objects(leaf.leaf_id)
                if len(obj_ids) == 0:
                    continue
                dists = self.metric.pairwise(query, take_objects(objects, obj_ids))
                features.append(rows[i])
                targets.append(float(np.min(dists)))
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        self._weights = np.linalg.solve(gram, x.T @ y)
        return self

    # --------------------------------------------------------------- queries
    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise QueryError("the learned router has not been fitted; call fit() first")

    def rank_leaves(self, query) -> np.ndarray:
        """Return leaf ids ranked by predicted distance (closest first)."""
        self._require_fitted()
        pivot_dists = self._pivot_distances(query)
        rows = self._features(query, pivot_dists)
        predicted = rows @ self._weights
        self.index.device.launch_kernel(
            work_items=len(self._leaves), op_cost=2.0, label="learned-rank"
        )
        order = np.argsort(predicted, kind="stable")
        return np.asarray([self._leaves[i].leaf_id for i in order], dtype=np.int64)

    def knn_query(self, query, k: int) -> list[tuple[int, float]]:
        """Approximate kNN: verify the ``leaf_budget`` best-ranked leaves."""
        if k <= 0:
            raise QueryError("k must be positive")
        pool = self._verify(query, self.rank_leaves(query)[: self.leaf_budget])
        ranked = sorted(pool.items(), key=lambda item: (item[1], item[0]))
        return [(int(o), float(d)) for o, d in ranked[: int(k)]]

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        """Batch wrapper around :meth:`knn_query`."""
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        return [self.knn_query(q, int(kk)) for q, kk in zip(queries, k_arr)]

    def range_query(self, query, radius: float) -> list[tuple[int, float]]:
        """Approximate range query over the ``leaf_budget`` best-ranked leaves."""
        if radius < 0:
            raise QueryError("range query radius must be non-negative")
        pool = self._verify(query, self.rank_leaves(query)[: self.leaf_budget])
        hits = [(int(o), float(d)) for o, d in pool.items() if d <= radius]
        return sorted(hits, key=lambda p: (p[1], p[0]))

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        """Batch wrapper around :meth:`range_query`."""
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        return [self.range_query(q, float(r)) for q, r in zip(queries, radii_arr)]

    def _verify(self, query, leaf_ids: np.ndarray) -> dict[int, float]:
        tree = self.index.tree
        objects = self.index._objects
        exclude = self.index._tombstones
        pool: dict[int, float] = {}
        total = 0
        for leaf_id in leaf_ids:
            obj_ids = tree.node_objects(int(leaf_id))
            if exclude:
                obj_ids = obj_ids[~np.isin(obj_ids, list(exclude))]
            if len(obj_ids) == 0:
                continue
            dists = self.metric.pairwise(query, take_objects(objects, obj_ids))
            total += len(obj_ids)
            for oid, dist in zip(obj_ids, dists):
                prev = pool.get(int(oid))
                if prev is None or float(dist) < prev:
                    pool[int(oid)] = float(dist)
        self.index.device.launch_kernel(
            work_items=max(1, total), op_cost=self.metric.unit_cost, label="learned-verify"
        )
        return pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = "fitted" if self.is_fitted else "unfitted"
        return f"LearnedLeafRouter({fitted}, leaf_budget={self.leaf_budget}, leaves={len(self._leaves)})"
