"""Abstract distance metric interface for general metric spaces.

The paper (Section 3) defines a metric space as a pair ``(M, d)`` where the
distance ``d`` satisfies non-negativity, identity, symmetry and the triangle
inequality.  GTS only ever interacts with data through such a ``d``: there are
no coordinates, so every index and baseline in this repository is written
against the :class:`Metric` interface below.

A :class:`Metric` exposes three granularities of evaluation:

``distance(a, b)``
    a single pair — the canonical definition;
``pairwise(query, objects)``
    one object against a sequence of objects (the shape used by pivot
    mapping and query verification);
``matrix(xs, ys)``
    full cross-distance matrix (used by table-based baselines).

``pairwise`` and ``matrix`` have generic implementations in terms of
``distance`` but concrete metrics override them with vectorised NumPy code.

``pairwise_segmented(queries, objects, boundaries)``
    the **fused segmented kernel** shape: one flat candidate sequence shared
    by a whole query batch, partitioned into per-query segments by an offsets
    array.  This is how the batch MRQ/MkNNQ engine evaluates an entire tree
    level in one call — vector metrics answer it with a single gather +
    broadcast pass over all (query, candidate) pairs, while string/set
    metrics fall back to a per-segment loop.

Every call is counted.  Distance computations are the currency of metric
similarity search — the paper's efficiency claims boil down to "GTS computes
far fewer distances and evaluates the rest with massive parallelism" — so the
counters feed both the test-suite assertions and the simulated-GPU cost model.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..exceptions import MetricError

__all__ = ["Metric", "MetricCounter"]


class MetricCounter:
    """Mutable counter of distance evaluations performed by a metric."""

    __slots__ = ("calls", "pairs")

    def __init__(self) -> None:
        self.calls = 0  # number of API invocations
        self.pairs = 0  # number of object pairs actually evaluated

    def record(self, pairs: int) -> None:
        self.calls += 1
        self.pairs += int(pairs)

    def reset(self) -> None:
        self.calls = 0
        self.pairs = 0

    def snapshot(self) -> dict[str, int]:
        return {"calls": self.calls, "pairs": self.pairs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricCounter(calls={self.calls}, pairs={self.pairs})"


class Metric:
    """Base class for distance metrics over arbitrary object domains.

    Subclasses must implement :meth:`_distance` and may override
    :meth:`_pairwise` / :meth:`_matrix` with vectorised versions.  They must
    also set :attr:`name` and :attr:`unit_cost`.

    Attributes
    ----------
    name:
        Human-readable metric name used in reports.
    unit_cost:
        Relative cost of one distance evaluation in abstract "operation"
        units.  The simulated GPU multiplies this by its per-operation time to
        model that, e.g., an edit distance on DNA strings is far more
        expensive than a 2-d Euclidean distance.  It does not affect
        correctness, only the timing model.
    supports_vectors:
        True when objects are fixed-length numeric vectors.  Special-purpose
        baselines (LBPG-Tree, GANNS) refuse metrics without vector support.
    is_lp_norm:
        True for L1/L2/L∞ metrics; LBPG-Tree additionally requires this.
    """

    name: str = "abstract"
    unit_cost: float = 1.0
    supports_vectors: bool = False
    is_lp_norm: bool = False

    def __init__(self) -> None:
        self.counter = MetricCounter()

    # ------------------------------------------------------------------ API
    def distance(self, a: Any, b: Any) -> float:
        """Return ``d(a, b)``."""
        self.counter.record(1)
        return float(self._distance(a, b))

    def pairwise(self, query: Any, objects: Sequence[Any]) -> np.ndarray:
        """Return the vector ``[d(query, o) for o in objects]``."""
        n = len(objects)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        self.counter.record(n)
        return np.asarray(self._pairwise(query, objects), dtype=np.float64)

    def matrix(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        """Return the ``len(xs) x len(ys)`` cross-distance matrix."""
        if len(xs) == 0 or len(ys) == 0:
            return np.zeros((len(xs), len(ys)), dtype=np.float64)
        self.counter.record(len(xs) * len(ys))
        return np.asarray(self._matrix(xs, ys), dtype=np.float64)

    def store_digest(self, matrix: np.ndarray):
        """Per-object auxiliary values reusable across every query batch.

        FAISS-style precomputation hook: called once per object store (and
        cached by the store), the result is gathered alongside the candidate
        rows and passed to :meth:`pairwise_segmented` as ``object_digest``.
        The digest must be a per-row function of the object data so that a
        gathered slice of the digest equals the digest of the gathered rows
        bit for bit — e.g. :class:`~repro.metrics.vector.AngularDistance`
        caches each row's L2 norm.  Returns None (no digest) by default.
        """
        return None

    def pairwise_segmented(
        self,
        queries: Sequence[Any],
        objects: Sequence[Any],
        segment_boundaries,
        object_digest=None,
    ) -> np.ndarray:
        """Evaluate per-query candidate segments of one flat object sequence.

        ``segment_boundaries`` is an int offsets array of length
        ``len(queries) + 1``: segment ``i`` is ``objects[b[i]:b[i + 1]]`` and
        is evaluated against ``queries[i]``.  Returns the flat distance
        vector aligned with ``objects`` — exactly
        ``concatenate([pairwise(q_i, segment_i)])``, but computed (for
        vector metrics) as a single gather + broadcast pass over every
        (query, candidate) pair, which is what makes level-wide batch
        evaluation run at NumPy speed.

        ``object_digest``, when given, is the :meth:`store_digest` slice
        aligned with ``objects`` — metrics that can exploit it (cached norms)
        do so without changing a single bit of the result; everyone else
        ignores it.

        The whole call counts as **one** metric invocation covering
        ``len(objects)`` pairs (``counter.pairs`` is unchanged relative to
        per-query evaluation; ``counter.calls`` counts the fused call).
        """
        boundaries = np.asarray(segment_boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or len(boundaries) != len(queries) + 1:
            raise MetricError(
                f"segment_boundaries must be a flat offsets array of length "
                f"len(queries) + 1 = {len(queries) + 1}, got shape {boundaries.shape}"
            )
        if len(boundaries) and (boundaries[0] != 0 or boundaries[-1] != len(objects)):
            raise MetricError(
                f"segment_boundaries must start at 0 and end at len(objects) = "
                f"{len(objects)}, got [{boundaries[0] if len(boundaries) else ''}, "
                f"{boundaries[-1] if len(boundaries) else ''}]"
            )
        if np.any(np.diff(boundaries) < 0):
            raise MetricError("segment_boundaries must be non-decreasing")
        n = len(objects)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        self.counter.record(n)
        return np.asarray(
            self._pairwise_segmented(queries, objects, boundaries, object_digest),
            dtype=np.float64,
        )

    def reset_counter(self) -> None:
        """Zero the distance-evaluation counters."""
        self.counter.reset()

    @property
    def pair_count(self) -> int:
        """Number of object pairs evaluated since the last reset."""
        return self.counter.pairs

    # ------------------------------------------------------- implementation
    def _distance(self, a: Any, b: Any) -> float:
        raise NotImplementedError

    def _pairwise(self, query: Any, objects: Sequence[Any]) -> Iterable[float]:
        return [self._distance(query, o) for o in objects]

    def _matrix(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        out = np.empty((len(xs), len(ys)), dtype=np.float64)
        for i, x in enumerate(xs):
            out[i, :] = self._pairwise(x, ys)
        return out

    def _pairwise_segmented(
        self, queries, objects, boundaries: np.ndarray, object_digest=None
    ) -> np.ndarray:
        # Generic fallback: one _pairwise call per non-empty segment.  String
        # and set metrics inherit this loop; vector metrics override it with
        # a single broadcast pass.  The digest is unused here.
        out = np.empty(int(boundaries[-1]), dtype=np.float64)
        for qi in range(len(queries)):
            start, end = int(boundaries[qi]), int(boundaries[qi + 1])
            if end > start:
                out[start:end] = self._pairwise(queries[qi], objects[start:end])
        return out

    # ----------------------------------------------------------- validation
    def validate_objects(self, objects: Sequence[Any]) -> None:
        """Hook for subclasses to reject malformed objects early.

        The default implementation only rejects empty datasets handed to
        vector metrics with inconsistent shapes; string metrics accept any
        sequence of strings.
        """
        if objects is None:
            raise MetricError("objects must not be None")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
