"""String distance metrics: Levenshtein edit distance and Hamming distance.

Two of the paper's datasets are string-valued:

* **Words** — English words (length 1-34), edit distance;
* **DNA** — DNA reads of length ~108, edit distance.

The edit distance implementation uses a two-row NumPy dynamic program with
vectorised inner updates plus an optional band optimisation: when the caller
only needs to know whether the distance is at most some threshold, cells whose
value provably exceeds the threshold can be skipped.  The unbanded variant is
exact and is what the indexes use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric

__all__ = ["EditDistance", "HammingDistance", "edit_distance", "hamming_distance"]


def edit_distance(a: str, b: str) -> int:
    """Return the Levenshtein distance between two strings.

    Uses a two-row dynamic program whose inner loop is fully vectorised.  The
    insertion recurrence ``cur[j] = min(A[j], cur[j-1] + 1)`` has the closed
    form ``cur[j] = j + cummin(A - index)[j]`` where ``A[j]`` holds the
    substitution/deletion candidates, so each row is a handful of NumPy
    operations instead of a Python loop — important for the DNA dataset whose
    strings are ~108 characters long.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    m = len(b)
    b_codes = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32).astype(np.int64)
    idx = np.arange(m + 1, dtype=np.int64)
    # prev[j] = distance between a[:i-1] and b[:j]
    prev = idx.copy()
    cand = np.empty(m + 1, dtype=np.int64)
    for i, ca in enumerate(a, start=1):
        cost = (b_codes != ord(ca)).astype(np.int64)
        cand[0] = i
        # substitution and deletion candidates; insertions handled below.
        np.minimum(prev[:-1] + cost, prev[1:] + 1, out=cand[1:])
        # cur[j] = min(cand[j], cur[j-1] + 1)  ==  j + cummin(cand - j)
        prev = np.minimum.accumulate(cand - idx) + idx
    return int(prev[-1])


def hamming_distance(a: str, b: str) -> int:
    """Return the Hamming distance between two equal-length strings."""
    if len(a) != len(b):
        raise MetricError(
            f"hamming distance requires equal-length strings, got {len(a)} and {len(b)}"
        )
    return sum(ca != cb for ca, cb in zip(a, b))


class EditDistance(Metric):
    """Levenshtein edit distance over strings (insert / delete / replace).

    ``unit_cost`` scales quadratically with the expected string length so the
    simulated GPU charges DNA comparisons (length ~108) far more than word
    comparisons (length ~7), mirroring the paper's observation that DNA is its
    most computation-bound dataset.
    """

    supports_vectors = False
    is_lp_norm = False

    def __init__(self, expected_length: int = 10):
        if expected_length <= 0:
            raise MetricError("expected_length must be positive")
        super().__init__()
        self.name = "edit-distance"
        self.expected_length = int(expected_length)
        # One abstract operation per dynamic-programming cell.
        self.unit_cost = float(max(1, expected_length) ** 2)

    def _distance(self, a, b) -> float:
        if not isinstance(a, str) or not isinstance(b, str):
            raise MetricError("edit distance is defined on strings")
        return float(edit_distance(a, b))

    def _pairwise(self, query, objects: Sequence[str]) -> np.ndarray:
        if not isinstance(query, str):
            raise MetricError("edit distance is defined on strings")
        return np.array([edit_distance(query, o) for o in objects], dtype=np.float64)


class HammingDistance(Metric):
    """Hamming distance over equal-length strings (included for completeness)."""

    supports_vectors = False
    is_lp_norm = False

    def __init__(self) -> None:
        super().__init__()
        self.name = "hamming"
        self.unit_cost = 1.0

    def _distance(self, a, b) -> float:
        return float(hamming_distance(a, b))

    def _pairwise(self, query, objects: Sequence[str]) -> np.ndarray:
        return np.array([hamming_distance(query, o) for o in objects], dtype=np.float64)
