"""Vector-space distance metrics: L1, L2, L∞ norms and angular (word cosine).

The paper's datasets use three of these:

* **T-Loc** — 2-d Twitter-user locations, L2 norm;
* **Color** — 282-d image features, L1 norm;
* **Vector** — 300-d word embeddings, "word cosine distance".

Cosine *similarity* is not a metric (it violates the triangle inequality), so
following common practice for metric indexes over embeddings we use the
angular distance ``arccos(cos_sim) / pi`` which is a proper metric on the unit
sphere; the paper's reference [1] (word2vec) normalises embeddings, making the
two orderings identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric

__all__ = [
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "AngularDistance",
]


def _as_matrix(objects: Sequence) -> np.ndarray:
    arr = np.asarray(objects, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise MetricError(f"vector objects must be 1- or 2-dimensional, got shape {arr.shape}")
    return arr


def _as_vector(obj) -> np.ndarray:
    arr = np.asarray(obj, dtype=np.float64)
    if arr.ndim != 1:
        raise MetricError(f"a vector object must be 1-dimensional, got shape {arr.shape}")
    return arr


class _VectorMetric(Metric):
    """Shared validation for fixed-dimension vector metrics.

    ``unit_cost`` is proportional to the vector dimensionality (a 282-d L1
    distance costs ~300x more arithmetic than a 2-d one); the dimension is
    inferred lazily from the first objects seen.
    """

    supports_vectors = True
    #: abstract operations per coordinate of one distance evaluation
    ops_per_dimension = 2.0

    def _observe_dimension(self, dim: int) -> None:
        self.unit_cost = max(1.0, self.ops_per_dimension * int(dim))

    def validate_objects(self, objects: Sequence) -> None:
        super().validate_objects(objects)
        if len(objects) == 0:
            return
        mat = _as_matrix(objects)
        if not np.all(np.isfinite(mat)):
            raise MetricError("vector objects must contain only finite values")


class MinkowskiDistance(_VectorMetric):
    """General Lp norm distance ``(sum |x_i - y_i|^p)^(1/p)`` for ``p >= 1``."""

    is_lp_norm = True

    def __init__(self, p: float):
        if p < 1:
            raise MetricError(f"Minkowski distance requires p >= 1, got {p}")
        super().__init__()
        self.p = float(p)
        self.name = f"l{p:g}-norm"
        self.unit_cost = 1.0

    def _distance(self, a, b) -> float:
        x, y = _as_vector(a), _as_vector(b)
        if x.shape != y.shape:
            raise MetricError(f"dimension mismatch: {x.shape} vs {y.shape}")
        self._observe_dimension(x.shape[0])
        if np.isinf(self.p):
            return float(np.max(np.abs(x - y)))
        return float(np.sum(np.abs(x - y) ** self.p) ** (1.0 / self.p))

    def _pairwise(self, query, objects) -> np.ndarray:
        q = _as_vector(query)
        mat = _as_matrix(objects)
        if mat.shape[1] != q.shape[0]:
            raise MetricError(f"dimension mismatch: {q.shape[0]} vs {mat.shape[1]}")
        self._observe_dimension(q.shape[0])
        diff = np.abs(mat - q[None, :])
        if np.isinf(self.p):
            return diff.max(axis=1)
        return np.sum(diff ** self.p, axis=1) ** (1.0 / self.p)

    def _matrix(self, xs, ys) -> np.ndarray:
        a = _as_matrix(xs)
        b = _as_matrix(ys)
        if a.shape[1] != b.shape[1]:
            raise MetricError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        self._observe_dimension(a.shape[1])
        if self.p == 2.0:
            # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y  (clipped for round-off)
            sq = (
                np.sum(a * a, axis=1)[:, None]
                + np.sum(b * b, axis=1)[None, :]
                - 2.0 * a @ b.T
            )
            return np.sqrt(np.clip(sq, 0.0, None))
        diff = np.abs(a[:, None, :] - b[None, :, :])
        if np.isinf(self.p):
            return diff.max(axis=2)
        return np.sum(diff ** self.p, axis=2) ** (1.0 / self.p)


class EuclideanDistance(MinkowskiDistance):
    """L2-norm distance, the metric of the T-Loc dataset."""

    def __init__(self) -> None:
        super().__init__(p=2.0)
        self.name = "l2-norm"


class ManhattanDistance(MinkowskiDistance):
    """L1-norm distance, the metric of the Color dataset."""

    def __init__(self) -> None:
        super().__init__(p=1.0)
        self.name = "l1-norm"


class ChebyshevDistance(MinkowskiDistance):
    """L∞-norm distance (included for completeness of the Lp family)."""

    def __init__(self) -> None:
        super().__init__(p=np.inf)
        self.name = "linf-norm"


class AngularDistance(_VectorMetric):
    """Angular ("word cosine") distance: ``arccos(cosine similarity) / pi``.

    This is the metric used for the Vector dataset (300-d word embeddings).
    It lies in ``[0, 1]`` and satisfies the triangle inequality (it is the
    great-circle distance on the unit sphere up to a constant factor), unlike
    raw ``1 - cosine`` similarity.
    """

    is_lp_norm = False
    ops_per_dimension = 3.0

    def __init__(self) -> None:
        super().__init__()
        self.name = "angular"
        self.unit_cost = 1.5

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        na = np.linalg.norm(a, axis=-1)
        nb = np.linalg.norm(b, axis=-1)
        denom = na * nb
        denom = np.where(denom == 0.0, 1.0, denom)
        cos = np.sum(a * b, axis=-1) / denom
        return np.clip(cos, -1.0, 1.0)

    def _distance(self, a, b) -> float:
        x, y = _as_vector(a), _as_vector(b)
        if x.shape != y.shape:
            raise MetricError(f"dimension mismatch: {x.shape} vs {y.shape}")
        self._observe_dimension(x.shape[0])
        if not x.any() and not y.any():
            return 0.0
        return float(np.arccos(self._cosine(x, y)) / np.pi)

    def _pairwise(self, query, objects) -> np.ndarray:
        q = _as_vector(query)
        mat = _as_matrix(objects)
        if mat.shape[1] != q.shape[0]:
            raise MetricError(f"dimension mismatch: {q.shape[0]} vs {mat.shape[1]}")
        self._observe_dimension(q.shape[0])
        cos = self._cosine(mat, q[None, :])
        return np.arccos(cos) / np.pi

    def _matrix(self, xs, ys) -> np.ndarray:
        a = _as_matrix(xs)
        b = _as_matrix(ys)
        self._observe_dimension(a.shape[1])
        na = np.linalg.norm(a, axis=1)
        nb = np.linalg.norm(b, axis=1)
        na = np.where(na == 0.0, 1.0, na)
        nb = np.where(nb == 0.0, 1.0, nb)
        cos = np.clip((a @ b.T) / np.outer(na, nb), -1.0, 1.0)
        return np.arccos(cos) / np.pi
