"""Vector-space distance metrics: L1, L2, L∞ norms and angular (word cosine).

The paper's datasets use three of these:

* **T-Loc** — 2-d Twitter-user locations, L2 norm;
* **Color** — 282-d image features, L1 norm;
* **Vector** — 300-d word embeddings, "word cosine distance".

Cosine *similarity* is not a metric (it violates the triangle inequality), so
following common practice for metric indexes over embeddings we use the
angular distance ``arccos(cos_sim) / pi`` which is a proper metric on the unit
sphere; the paper's reference [1] (word2vec) normalises embeddings, making the
two orderings identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric

__all__ = [
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "AngularDistance",
]


def _as_matrix(objects: Sequence) -> np.ndarray:
    arr = np.asarray(objects, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise MetricError(f"vector objects must be 1- or 2-dimensional, got shape {arr.shape}")
    return arr


def _as_vector(obj) -> np.ndarray:
    arr = np.asarray(obj, dtype=np.float64)
    if arr.ndim != 1:
        raise MetricError(f"a vector object must be 1-dimensional, got shape {arr.shape}")
    return arr


class _VectorMetric(Metric):
    """Shared validation for fixed-dimension vector metrics.

    ``unit_cost`` is proportional to the vector dimensionality (a 282-d L1
    distance costs ~300x more arithmetic than a 2-d one); the dimension is
    inferred lazily from the first objects seen.
    """

    supports_vectors = True
    #: abstract operations per coordinate of one distance evaluation
    ops_per_dimension = 2.0

    def _observe_dimension(self, dim: int) -> None:
        self.unit_cost = max(1.0, self.ops_per_dimension * int(dim))

    #: Average segment size (in matrix elements, ``rows * dim``) below which
    #: the fully fused single-pass evaluation beats per-segment slicing.
    #: Small segments are dominated by per-call overhead (fuse them); large
    #: segments stay cache-resident when processed one at a time, while the
    #: fused pass would stream multi-hundred-MB temporaries through memory.
    #: Both strategies compute the identical row-wise formula, so the choice
    #: never changes a single bit of the result (DESIGN.md §8).
    fused_segment_elements = 4096

    def _pairwise_segmented(self, queries, objects, boundaries, object_digest=None) -> np.ndarray:
        total = int(boundaries[-1])
        num_segments = max(1, len(queries))
        dim = len(queries[0]) if len(queries) else 0
        if total * dim > num_segments * self.fused_segment_elements:
            # big segments: per-segment slices of the gathered matrix (cache-
            # friendly, and the slices are views — no per-object Python work)
            return self._segment_loop(queries, objects, boundaries, object_digest)
        return self._fused_segmented(queries, objects, boundaries, object_digest)

    def _segment_loop(self, queries, objects, boundaries, object_digest) -> np.ndarray:
        out = np.empty(int(boundaries[-1]), dtype=np.float64)
        for qi in range(len(queries)):
            start, end = int(boundaries[qi]), int(boundaries[qi + 1])
            if end > start:
                digest = None if object_digest is None else object_digest[start:end]
                out[start:end] = self._segment_pairwise(queries[qi], objects[start:end], digest)
        return out

    def _segment_pairwise(self, query, objects, digest) -> np.ndarray:
        # One segment of the loop strategy; metrics with a store digest
        # override this to reuse it.
        return self._pairwise(query, objects)

    def _segment_matrices(self, queries, objects, boundaries):
        """Validate and expand one (queries, objects, boundaries) triple.

        Returns ``(objects_matrix, queries_repeated)`` where the queries
        matrix has been repeated to object alignment — after this, every
        vector metric is a plain row-wise formula over the two matrices,
        bitwise-identical to the per-query ``_pairwise`` evaluation.
        """
        qmat = _as_matrix(queries)
        mat = _as_matrix(objects)
        if mat.shape[1] != qmat.shape[1]:
            raise MetricError(f"dimension mismatch: {qmat.shape[1]} vs {mat.shape[1]}")
        self._observe_dimension(qmat.shape[1])
        return mat, np.repeat(qmat, np.diff(boundaries), axis=0)

    def validate_objects(self, objects: Sequence) -> None:
        super().validate_objects(objects)
        if len(objects) == 0:
            return
        mat = _as_matrix(objects)
        if not np.all(np.isfinite(mat)):
            raise MetricError("vector objects must contain only finite values")


class MinkowskiDistance(_VectorMetric):
    """General Lp norm distance ``(sum |x_i - y_i|^p)^(1/p)`` for ``p >= 1``."""

    is_lp_norm = True

    def __init__(self, p: float):
        if p < 1:
            raise MetricError(f"Minkowski distance requires p >= 1, got {p}")
        super().__init__()
        self.p = float(p)
        self.name = f"l{p:g}-norm"
        self.unit_cost = 1.0

    def _distance(self, a, b) -> float:
        x, y = _as_vector(a), _as_vector(b)
        if x.shape != y.shape:
            raise MetricError(f"dimension mismatch: {x.shape} vs {y.shape}")
        self._observe_dimension(x.shape[0])
        if np.isinf(self.p):
            return float(np.max(np.abs(x - y)))
        return float(np.sum(np.abs(x - y) ** self.p) ** (1.0 / self.p))

    def _pairwise(self, query, objects) -> np.ndarray:
        q = _as_vector(query)
        mat = _as_matrix(objects)
        if mat.shape[1] != q.shape[0]:
            raise MetricError(f"dimension mismatch: {q.shape[0]} vs {mat.shape[1]}")
        self._observe_dimension(q.shape[0])
        diff = np.abs(mat - q[None, :])
        if np.isinf(self.p):
            return diff.max(axis=1)
        return np.sum(diff ** self.p, axis=1) ** (1.0 / self.p)

    def _fused_segmented(self, queries, objects, boundaries, object_digest=None) -> np.ndarray:
        # One fused pass over every (query, candidate) pair of the batch.
        # Row-wise, this is exactly the _pairwise formula, so results are
        # bitwise-identical to per-query evaluation.  Lp norms have no
        # cacheable per-row term; the digest is unused.
        mat, qrep = self._segment_matrices(queries, objects, boundaries)
        diff = np.abs(mat - qrep)
        if np.isinf(self.p):
            return diff.max(axis=1)
        return np.sum(diff ** self.p, axis=1) ** (1.0 / self.p)

    def _matrix(self, xs, ys) -> np.ndarray:
        a = _as_matrix(xs)
        b = _as_matrix(ys)
        if a.shape[1] != b.shape[1]:
            raise MetricError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        self._observe_dimension(a.shape[1])
        if self.p == 2.0:
            # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y  (clipped for round-off)
            sq = (
                np.sum(a * a, axis=1)[:, None]
                + np.sum(b * b, axis=1)[None, :]
                - 2.0 * a @ b.T
            )
            return np.sqrt(np.clip(sq, 0.0, None))
        diff = np.abs(a[:, None, :] - b[None, :, :])
        if np.isinf(self.p):
            return diff.max(axis=2)
        return np.sum(diff ** self.p, axis=2) ** (1.0 / self.p)


class EuclideanDistance(MinkowskiDistance):
    """L2-norm distance, the metric of the T-Loc dataset."""

    def __init__(self) -> None:
        super().__init__(p=2.0)
        self.name = "l2-norm"


class ManhattanDistance(MinkowskiDistance):
    """L1-norm distance, the metric of the Color dataset."""

    def __init__(self) -> None:
        super().__init__(p=1.0)
        self.name = "l1-norm"


class ChebyshevDistance(MinkowskiDistance):
    """L∞-norm distance (included for completeness of the Lp family)."""

    def __init__(self) -> None:
        super().__init__(p=np.inf)
        self.name = "linf-norm"


class AngularDistance(_VectorMetric):
    """Angular ("word cosine") distance: ``arccos(cosine similarity) / pi``.

    This is the metric used for the Vector dataset (300-d word embeddings).
    It lies in ``[0, 1]`` and satisfies the triangle inequality (it is the
    great-circle distance on the unit sphere up to a constant factor), unlike
    raw ``1 - cosine`` similarity.
    """

    is_lp_norm = False
    ops_per_dimension = 3.0

    def __init__(self) -> None:
        super().__init__()
        self.name = "angular"
        self.unit_cost = 1.5

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        na = np.linalg.norm(a, axis=-1)
        nb = np.linalg.norm(b, axis=-1)
        denom = na * nb
        denom = np.where(denom == 0.0, 1.0, denom)
        cos = np.sum(a * b, axis=-1) / denom
        return np.clip(cos, -1.0, 1.0)

    def _distance(self, a, b) -> float:
        x, y = _as_vector(a), _as_vector(b)
        if x.shape != y.shape:
            raise MetricError(f"dimension mismatch: {x.shape} vs {y.shape}")
        self._observe_dimension(x.shape[0])
        if not x.any() and not y.any():
            return 0.0
        return float(np.arccos(self._cosine(x, y)) / np.pi)

    def _pairwise(self, query, objects) -> np.ndarray:
        q = _as_vector(query)
        mat = _as_matrix(objects)
        if mat.shape[1] != q.shape[0]:
            raise MetricError(f"dimension mismatch: {q.shape[0]} vs {mat.shape[1]}")
        self._observe_dimension(q.shape[0])
        cos = self._cosine(mat, q[None, :])
        return np.arccos(cos) / np.pi

    def store_digest(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row L2 norms — the ``na`` term of every cosine, cached once.

        ``np.linalg.norm(..., axis=-1)`` reduces each row independently, so a
        gathered slice of this digest is bit-identical to computing the norms
        of the gathered rows on the fly.
        """
        return np.linalg.norm(np.asarray(matrix, dtype=np.float64), axis=-1)

    @staticmethod
    def _cosine_with_norms(a: np.ndarray, b: np.ndarray, na: np.ndarray) -> np.ndarray:
        # _cosine with the object norms supplied (same ops, same bits)
        nb = np.linalg.norm(b, axis=-1)
        denom = na * nb
        denom = np.where(denom == 0.0, 1.0, denom)
        cos = np.sum(a * b, axis=-1) / denom
        return np.clip(cos, -1.0, 1.0)

    def _segment_pairwise(self, query, objects, digest) -> np.ndarray:
        if digest is None:
            return self._pairwise(query, objects)
        q = _as_vector(query)
        mat = _as_matrix(objects)
        if mat.shape[1] != q.shape[0]:
            raise MetricError(f"dimension mismatch: {q.shape[0]} vs {mat.shape[1]}")
        self._observe_dimension(q.shape[0])
        cos = self._cosine_with_norms(mat, q[None, :], digest)
        return np.arccos(cos) / np.pi

    def _fused_segmented(self, queries, objects, boundaries, object_digest=None) -> np.ndarray:
        # Fused pass: norms and dot products are row-wise, so expanding the
        # query terms to object alignment keeps the arithmetic
        # bitwise-identical to _pairwise.  Object norms come from the store
        # digest when available; query norms are computed once per query and
        # repeated as scalars (never as full rows).
        mat, qrep = self._segment_matrices(queries, objects, boundaries)
        counts = np.diff(boundaries)
        na = object_digest if object_digest is not None else np.linalg.norm(mat, axis=-1)
        nb = np.repeat(np.linalg.norm(_as_matrix(queries), axis=-1), counts)
        denom = na * nb
        denom = np.where(denom == 0.0, 1.0, denom)
        cos = np.clip(np.sum(mat * qrep, axis=-1) / denom, -1.0, 1.0)
        return np.arccos(cos) / np.pi

    def _matrix(self, xs, ys) -> np.ndarray:
        a = _as_matrix(xs)
        b = _as_matrix(ys)
        self._observe_dimension(a.shape[1])
        na = np.linalg.norm(a, axis=1)
        nb = np.linalg.norm(b, axis=1)
        na = np.where(na == 0.0, 1.0, na)
        nb = np.where(nb == 0.0, 1.0, nb)
        cos = np.clip((a @ b.T) / np.outer(na, nb), -1.0, 1.0)
        return np.arccos(cos) / np.pi
