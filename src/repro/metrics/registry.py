"""Name-based registry of distance metrics.

The evaluation harness and the dataset generators refer to metrics by short
names (``"l2"``, ``"edit"``, ...) so that experiment configurations stay plain
data.  :func:`get_metric` turns such a name into a fresh :class:`Metric`
instance; :func:`register_metric` lets downstream users plug in their own.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import MetricError
from .base import Metric
from .sets import HausdorffDistance, JaccardDistance
from .string import EditDistance, HammingDistance
from .vector import (
    AngularDistance,
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
)

__all__ = ["get_metric", "register_metric", "available_metrics"]

_FACTORIES: Dict[str, Callable[..., Metric]] = {
    "l1": ManhattanDistance,
    "manhattan": ManhattanDistance,
    "l2": EuclideanDistance,
    "euclidean": EuclideanDistance,
    "linf": ChebyshevDistance,
    "chebyshev": ChebyshevDistance,
    "angular": AngularDistance,
    "cosine": AngularDistance,
    "word-cosine": AngularDistance,
    "edit": EditDistance,
    "levenshtein": EditDistance,
    "hamming": HammingDistance,
    "minkowski": MinkowskiDistance,
    "jaccard": JaccardDistance,
    "hausdorff": HausdorffDistance,
}


def register_metric(name: str, factory: Callable[..., Metric]) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    Raises :class:`MetricError` if the name is already taken.
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        raise MetricError(f"metric name already registered: {name!r}")
    _FACTORIES[key] = factory


def available_metrics() -> list[str]:
    """Return the sorted list of registered metric names."""
    return sorted(_FACTORIES)


def get_metric(name: str, **kwargs) -> Metric:
    """Instantiate the metric registered under ``name``.

    Extra keyword arguments are forwarded to the metric constructor, e.g.
    ``get_metric("minkowski", p=3)`` or ``get_metric("edit", expected_length=108)``.
    """
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise MetricError(
            f"unknown metric {name!r}; available: {', '.join(available_metrics())}"
        ) from None
    return factory(**kwargs)
