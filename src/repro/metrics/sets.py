"""Distance metrics over set-valued and collection-valued objects.

The paper motivates metric-space search with "dynamic data of various types
with distinct measures" (cancer omics, text, images...).  Two additional
families of such measures are provided here:

* :class:`JaccardDistance` — ``1 - |A ∩ B| / |A ∪ B|`` over finite sets
  (tags, shingles, token sets).  It satisfies all metric axioms (it is the
  normalised symmetric-difference metric), so every exact index in this
  repository can use it unchanged.
* :class:`HausdorffDistance` — the classic two-sided Hausdorff distance
  between finite point sets, parameterised by any inner metric.  It is the
  standard way to compare shapes, trajectories or image feature sets in a
  metric space.

Both operate on Python collections rather than fixed-length vectors, which is
exactly the situation where coordinate-based indexes give up and pivot-based
metric indexes keep working.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric
from .vector import EuclideanDistance

__all__ = ["JaccardDistance", "HausdorffDistance", "jaccard_distance", "hausdorff_distance"]


def jaccard_distance(a: Iterable, b: Iterable) -> float:
    """Jaccard distance ``1 - |A ∩ B| / |A ∪ B|`` between two collections.

    Two empty collections are identical (distance 0) by convention.
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return 1.0 - len(set_a & set_b) / len(union)


class JaccardDistance(Metric):
    """Jaccard (normalised symmetric-difference) distance over finite sets."""

    name = "jaccard"
    unit_cost = 2.0
    supports_vectors = False
    is_lp_norm = False

    def _distance(self, a: Any, b: Any) -> float:
        return jaccard_distance(a, b)

    def validate_objects(self, objects: Sequence[Any]) -> None:
        super().validate_objects(objects)
        for obj in objects:
            if isinstance(obj, (str, bytes)) or not isinstance(obj, Iterable):
                raise MetricError(
                    "JaccardDistance expects set-like collections of hashable items; "
                    f"got {type(obj).__name__}"
                )


def hausdorff_distance(a: Sequence, b: Sequence, inner: Optional[Metric] = None) -> float:
    """Two-sided Hausdorff distance between the finite point sets ``a`` and ``b``.

    ``H(A, B) = max( max_a min_b d(a, b), max_b min_a d(a, b) )`` using
    ``inner`` as the ground metric (Euclidean when omitted).
    """
    inner = inner or EuclideanDistance()
    if len(a) == 0 and len(b) == 0:
        return 0.0
    if len(a) == 0 or len(b) == 0:
        raise MetricError("the Hausdorff distance between an empty and a non-empty set is undefined")
    cross = inner.matrix(list(a), list(b))
    forward = float(np.max(np.min(cross, axis=1)))
    backward = float(np.max(np.min(cross, axis=0)))
    return max(forward, backward)


class HausdorffDistance(Metric):
    """Hausdorff distance between finite point sets under an inner metric.

    Parameters
    ----------
    inner:
        Ground metric between set elements (Euclidean by default).  The
        Hausdorff construction preserves the metric axioms of the inner
        metric, so the result is again a proper metric.
    """

    supports_vectors = False
    is_lp_norm = False

    def __init__(self, inner: Optional[Metric] = None):
        super().__init__()
        self.inner = inner or EuclideanDistance()
        self.name = f"hausdorff({self.inner.name})"
        # one Hausdorff evaluation computes |A| x |B| inner distances; a
        # nominal set size of 8 keeps the simulated cost in a sensible range
        self.unit_cost = 8.0 * self.inner.unit_cost

    def _distance(self, a: Any, b: Any) -> float:
        return hausdorff_distance(a, b, inner=self.inner)

    def validate_objects(self, objects: Sequence[Any]) -> None:
        super().validate_objects(objects)
        for obj in objects:
            if len(obj) == 0:
                raise MetricError("HausdorffDistance cannot index empty point sets")
