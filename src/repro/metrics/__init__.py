"""Distance metrics for general metric spaces.

Everything GTS and the baselines know about the data flows through a
:class:`~repro.metrics.base.Metric`: there are no coordinates, only a distance
function that satisfies the metric axioms (Section 3 of the paper).
"""

from .base import Metric, MetricCounter
from .registry import available_metrics, get_metric, register_metric
from .sets import (
    HausdorffDistance,
    JaccardDistance,
    hausdorff_distance,
    jaccard_distance,
)
from .string import EditDistance, HammingDistance, edit_distance, hamming_distance
from .vector import (
    AngularDistance,
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
)

__all__ = [
    "Metric",
    "MetricCounter",
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "AngularDistance",
    "EditDistance",
    "HammingDistance",
    "JaccardDistance",
    "HausdorffDistance",
    "jaccard_distance",
    "hausdorff_distance",
    "edit_distance",
    "hamming_distance",
    "get_metric",
    "register_metric",
    "available_metrics",
]
