"""Shard-assignment policies for the multi-device sharded index.

A policy decides which shard owns each object the moment it enters the
index — at bulk load and for every streaming insert.  Two properties matter:

* **Determinism.**  Assignment is a pure function of the object's global id,
  the object itself and the shards' current loads, so two indexes built from
  the same stream place every object identically (what lets the tests and
  benchmarks compare a sharded index against a single-device one).
* **Balance.**  Scatter-gather query time is the *makespan* over shards, so
  the slowest (largest) shard sets the pace; the closer the shards' sizes,
  the closer the speedup curve gets to ideal.

``round-robin`` balances object *counts* and is the right default for
fixed-size objects (vectors).  ``size-balanced`` balances payload *bytes*,
which matters for variable-size objects such as strings, where equal counts
can still leave one shard with most of the distance-computation work.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import IndexError_

__all__ = [
    "AssignmentPolicy",
    "RoundRobinPolicy",
    "SizeBalancedPolicy",
    "ASSIGNMENT_POLICIES",
    "make_assignment_policy",
]


class AssignmentPolicy:
    """Decides which shard owns a newly added object."""

    name = "abstract"

    def assign(self, obj_id: int, obj, loads: Sequence[float]) -> int:
        """Return the shard index (``0 .. len(loads)-1``) that gets ``obj``.

        ``loads`` holds each shard's current payload bytes; policies that do
        not need it (round-robin) only use its length.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPolicy(AssignmentPolicy):
    """Cycle through the shards in global-id order (balances object counts)."""

    name = "round-robin"

    def assign(self, obj_id: int, obj, loads: Sequence[float]) -> int:
        return int(obj_id) % len(loads)


class SizeBalancedPolicy(AssignmentPolicy):
    """Send each object to the currently lightest shard (balances bytes)."""

    name = "size-balanced"

    def assign(self, obj_id: int, obj, loads: Sequence[float]) -> int:
        return min(range(len(loads)), key=lambda s: (loads[s], s))


#: Policy-name -> class registry (the CLI's ``--shard-policy`` choices).
ASSIGNMENT_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    SizeBalancedPolicy.name: SizeBalancedPolicy,
}


def make_assignment_policy(name: str) -> AssignmentPolicy:
    """Instantiate a registered assignment policy by name."""
    try:
        return ASSIGNMENT_POLICIES[name]()
    except KeyError:
        raise IndexError_(
            f"unknown assignment policy {name!r}; "
            f"choose from {sorted(ASSIGNMENT_POLICIES)}"
        ) from None
