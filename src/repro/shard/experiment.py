"""The sharding scale-out experiment (throughput vs shard count).

:func:`experiment_sharding_scaleout` measures what the multi-device layer
buys and what it costs, two ways:

* **Strong scaling** — one fixed dataset, shard counts swept.  Per-shard
  trees shrink as ``K`` grows, so batch-query makespan falls and throughput
  rises; the host-side merge term and the per-shard kernel-launch floor are
  what eventually bend the curve away from ideal.
* **Weak scaling** — per-shard data held constant (the dataset grows with
  ``K``).  Ideal scale-out keeps throughput flat; the measured efficiency
  column shows how close the scatter-gather layer gets.

Every strong-scaling row's answers are checked against a single-device GTS
over the same data (``correct`` column) — sharding must preserve exactness,
not just speed.  The timing compared is the coordinating timeline of
:class:`~repro.shard.ShardedGTS` (per-round makespan plus merge), against
the single device's time for the identical batch.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.gts import GTS
from ..datasets import DEFAULT_CARDINALITIES, get_dataset
from ..evalsuite.reporting import ExperimentResult
from ..evalsuite.workloads import make_workload
from ..gpusim.device import Device
from ..gpusim.specs import DeviceSpec
from ..gpusim.timing import throughput_per_minute
from .sharded import ShardedGTS

__all__ = ["experiment_sharding_scaleout"]


def _measure_queries(index, queries, radius, k):
    """Answer one MRQ batch and one MkNNQ batch, timing each on ``index.device``."""
    before = index.device.stats.sim_time
    range_answers = index.range_query_batch(queries, radius)
    mrq_time = index.device.stats.sim_time - before
    before = index.device.stats.sim_time
    knn_answers = index.knn_query_batch(queries, k)
    knn_time = index.device.stats.sim_time - before
    return range_answers, mrq_time, knn_answers, knn_time


def experiment_sharding_scaleout(
    dataset_name: str = "tloc",
    shard_counts: Sequence[int] = (1, 2, 4),
    assignment: str = "round-robin",
    num_queries: int = 96,
    k: int = 16,
    node_capacity: int = 20,
    device_cores: int = 256,
    include_weak_scaling: bool = True,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep the shard count; report throughput, speedup and exactness.

    Strong-scaling rows share one dataset of ``cardinality`` objects (the
    dataset default scaled by ``scale`` when omitted) and verify the sharded
    answers against a single-device GTS.  Weak-scaling rows hold
    ``cardinality / max(shard_counts)`` objects *per shard* and report the
    efficiency relative to one shard.

    ``device_cores`` narrows every (simulated) device: the stand-in datasets
    are ~500x smaller than the paper's, so on the full 4096-core spec a
    per-shard batch is kernel-launch-bound and scale-out has nothing left to
    divide.  Scaling the device down with the data — the same move
    ``fig8``/``repro compare`` make for device *memory* — restores the
    paper's compute-bound regime, which is the one a multi-GPU deployment
    actually shards.
    """
    if cardinality is None:
        cardinality = max(256, int(DEFAULT_CARDINALITIES[dataset_name] * scale))
    device_spec = DeviceSpec().with_cores(device_cores)
    dataset = get_dataset(dataset_name, cardinality=cardinality, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, k=k, seed=seed)

    result = ExperimentResult(
        experiment="sharding-scaleout",
        title=f"ShardedGTS scale-out on {dataset.name} "
        f"({cardinality} objects, {num_queries} queries, {assignment})",
    )

    # --- single-device reference: the exactness oracle and speedup baseline
    reference = GTS.build(
        dataset.objects,
        dataset.metric,
        node_capacity=node_capacity,
        device=Device(device_spec),
        seed=seed,
    )
    ref_range, ref_mrq_time, ref_knn, ref_knn_time = _measure_queries(
        reference, workload.queries, workload.radius, workload.k
    )
    reference.close()

    base_knn_time = None
    for shards in shard_counts:
        index = ShardedGTS.build(
            dataset.objects,
            dataset.metric,
            num_shards=int(shards),
            assignment=assignment,
            node_capacity=node_capacity,
            device_spec=device_spec,
            seed=seed,
        )
        build_time = index.device.stats.sim_time
        range_answers, mrq_time, knn_answers, knn_time = _measure_queries(
            index, workload.queries, workload.radius, workload.k
        )
        correct = range_answers == ref_range and knn_answers == ref_knn
        if base_knn_time is None:
            base_knn_time = knn_time
        result.add_row(
            mode="strong",
            shards=int(shards),
            cardinality=cardinality,
            build_time_s=build_time,
            mrq_throughput=throughput_per_minute(num_queries, mrq_time),
            mknn_throughput=throughput_per_minute(num_queries, knn_time),
            knn_speedup=base_knn_time / knn_time if knn_time > 0 else float("inf"),
            max_shard=max(index.shard_sizes),
            correct=correct,
            status="ok" if correct else "mismatch",
        )
        index.close()

    if include_weak_scaling:
        per_shard = max(256, cardinality // max(int(s) for s in shard_counts))
        base_weak_time = None
        for shards in shard_counts:
            n = per_shard * int(shards)
            weak_dataset = get_dataset(dataset_name, cardinality=n, seed=seed)
            weak_workload = make_workload(
                weak_dataset, num_queries=num_queries, k=k, seed=seed
            )
            index = ShardedGTS.build(
                weak_dataset.objects,
                weak_dataset.metric,
                num_shards=int(shards),
                assignment=assignment,
                node_capacity=node_capacity,
                device_spec=device_spec,
                seed=seed,
            )
            _, _, _, knn_time = _measure_queries(
                index, weak_workload.queries, weak_workload.radius, weak_workload.k
            )
            if base_weak_time is None:
                base_weak_time = knn_time
            result.add_row(
                mode="weak",
                shards=int(shards),
                cardinality=n,
                mknn_throughput=throughput_per_minute(num_queries, knn_time),
                efficiency=base_weak_time / knn_time if knn_time > 0 else float("inf"),
                max_shard=max(index.shard_sizes),
                status="ok",
            )
            index.close()

    result.notes = (
        "strong rows share one dataset (answers verified against a single-device "
        "GTS); weak rows hold per-shard data constant — efficiency is the "
        "one-shard kNN time over the K-shard time, 1.0 being ideal scale-out"
    )
    return result
