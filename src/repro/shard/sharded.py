"""Multi-device sharded GTS index (scatter-gather scale-out).

:class:`ShardedGTS` partitions the object store across ``K`` simulated
:class:`~repro.gpusim.device.Device`\\ s — the single biggest hardware lever
the paper's single-GPU design leaves unused, and the route Faiss takes to
billion scale (Johnson et al., "Billion-scale similarity search with GPUs").
Each shard is a complete, independent :class:`~repro.core.gts.GTS` index on
its own device: its own tree, cache table and rebuild schedule.

**Queries** are answered by scatter-gather: the whole batch is broadcast to
every shard, each shard runs the paper's batch algorithm (Algorithms 4-5)
over its partition in parallel, and the host unions (range) or merges-top-k
(kNN) the per-shard answers.  Because the partitions are disjoint and every
shard answers exactly over its partition, the merged answers equal a
single-device GTS over the same data — including the ``(distance, id)``
tie-breaking, since local-id order within a shard follows global-id order.

**Updates** are routed to the owning shard: inserts go to the shard the
assignment policy picks, deletes to the shard that holds the id.  Cache
tables and overflow rebuilds stay shard-local, so a hot shard rebuilding
never blocks the others' (simulated) progress.

**Time accounting** is deliberately honest.  The shards' devices run in
parallel, so each scatter-gather round charges the coordinating timeline
(``self.device``) the *makespan* over the shards' deltas — not their sum —
plus a host-side merge term proportional to the gathered result volume
(charged on a sequential :class:`~repro.gpusim.cpu.CPUExecutor`).  The
speedup curve therefore flattens exactly where it should: when per-shard
work stops shrinking (kernel-launch floors) or the merge term starts to
matter.

The class exposes the same ``execute_batch`` contract as :class:`GTS`, so
:class:`~repro.service.GTSService` serves a sharded index unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.construction import objects_nbytes
from ..core.gts import DEFAULT_CACHE_BYTES, GTS, execute_operation_batch
from ..core.searchcommon import RESULT_BYTES, broadcast_query_param
from ..exceptions import IndexError_, QueryError, UpdateError
from ..gpusim.cpu import CPUExecutor
from ..gpusim.device import Device
from ..gpusim.specs import CPUSpec, DeviceSpec
from ..gpusim.stats import ExecutionStats
from ..metrics.base import Metric
from ..tier.config import TierConfig
from .policy import AssignmentPolicy, make_assignment_policy

__all__ = ["ShardedGTS", "ShardedBuildReport", "DEFAULT_HOST_SPEC"]

#: Host the scatter/merge work runs on.  Unlike the CPU *baselines* (which
#: the paper runs sequentially, one query at a time), the gather-merge is
#: embarrassingly parallel across queries, so the coordinator uses the
#: paper's host CPU (i9-10900X) with all ten cores.
DEFAULT_HOST_SPEC = CPUSpec(name="shard-host", cores=10)


@dataclass
class ShardedBuildReport:
    """Per-shard construction results plus the parallel-build makespan."""

    #: one :class:`~repro.core.construction.BuildResult` per shard
    per_shard: list = field(default_factory=list)
    #: simulated seconds of the parallel build (slowest shard)
    sim_time: float = 0.0

    @property
    def distance_computations(self) -> int:
        """Total construction distance computations across shards."""
        return sum(r.distance_computations for r in self.per_shard)


class ShardedGTS:
    """GTS index partitioned over several simulated devices.

    Parameters
    ----------
    metric:
        Distance metric of the metric space (shared by every shard).
    num_shards:
        Number of devices/shards ``K``.
    assignment:
        Shard-assignment policy: ``"round-robin"`` (default),
        ``"size-balanced"`` or an :class:`AssignmentPolicy` instance.
    node_capacity / cache_capacity_bytes / pivot_strategy / prune_mode:
        Per-shard GTS configuration, identical across shards.
    device_spec:
        Spec every shard device (and the coordinating device) is created
        from; the default 11 GB / 4096-core spec when omitted.
    host_spec:
        Spec of the host executor the scatter/merge work is charged on;
        defaults to :data:`DEFAULT_HOST_SPEC` (a 10-core host, the merge
        being parallel across queries).
    seed:
        Base construction seed; shard ``s`` uses ``seed + s`` so shards draw
        independent pivot choices while staying reproducible.
    memory_budget_bytes / tier:
        Tiered-memory configuration (DESIGN.md §7) applied to **every
        shard**: each shard keeps its partition host-resident and pages
        object blocks into a per-device pool of ``memory_budget_bytes``.
        The ``execute_batch`` contract is unchanged, so the serving layer
        works over a tiered sharded index as-is.
    """

    def __init__(
        self,
        metric: Metric,
        num_shards: int = 2,
        assignment: str | AssignmentPolicy = "round-robin",
        node_capacity: int = 20,
        device_spec: Optional[DeviceSpec] = None,
        host_spec: Optional[CPUSpec] = None,
        cache_capacity_bytes: int = DEFAULT_CACHE_BYTES,
        pivot_strategy: str = "fft",
        prune_mode: str = "two-sided",
        seed: int = 17,
        memory_budget_bytes: Optional[int] = None,
        tier: Optional[TierConfig] = None,
    ):
        if num_shards < 1:
            raise IndexError_(f"num_shards must be at least 1, got {num_shards}")
        self.metric = metric
        self.num_shards = int(num_shards)
        self.policy = (
            assignment
            if isinstance(assignment, AssignmentPolicy)
            else make_assignment_policy(assignment)
        )
        self.node_capacity = int(node_capacity)
        self.seed = int(seed)
        spec = device_spec or DeviceSpec()
        #: the host-facing timeline every operation's makespan is charged to
        self.device = Device(spec)
        #: host executor the scatter/merge work is charged on
        self.host = CPUExecutor(host_spec or DEFAULT_HOST_SPEC)
        self.shards: list[GTS] = [
            GTS(
                metric=metric,
                node_capacity=node_capacity,
                device=Device(spec),
                cache_capacity_bytes=cache_capacity_bytes,
                pivot_strategy=pivot_strategy,
                prune_mode=prune_mode,
                seed=self.seed + s,
                memory_budget_bytes=memory_budget_bytes,
                tier=tier,
            )
            for s in range(self.num_shards)
        ]
        self.tier_config = self.shards[0].tier_config
        self._owner: dict[int, tuple[int, int]] = {}
        self._shard_to_global: list[list[int]] = [[] for _ in range(self.num_shards)]
        self._deleted: set[int] = set()
        self._loads: list[float] = [0.0] * self.num_shards
        self._next_id = 0
        self._built = False

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def build(
        cls,
        objects: Sequence,
        metric: Metric,
        num_shards: int = 2,
        assignment: str | AssignmentPolicy = "round-robin",
        node_capacity: int = 20,
        device_spec: Optional[DeviceSpec] = None,
        host_spec: Optional[CPUSpec] = None,
        cache_capacity_bytes: int = DEFAULT_CACHE_BYTES,
        pivot_strategy: str = "fft",
        prune_mode: str = "two-sided",
        seed: int = 17,
        memory_budget_bytes: Optional[int] = None,
        tier: Optional[TierConfig] = None,
    ) -> "ShardedGTS":
        """Build a sharded index over ``objects`` and return it."""
        index = cls(
            metric=metric,
            num_shards=num_shards,
            assignment=assignment,
            node_capacity=node_capacity,
            device_spec=device_spec,
            host_spec=host_spec,
            cache_capacity_bytes=cache_capacity_bytes,
            pivot_strategy=pivot_strategy,
            prune_mode=prune_mode,
            seed=seed,
            memory_budget_bytes=memory_budget_bytes,
            tier=tier,
        )
        index.bulk_load(objects)
        return index

    def bulk_load(self, objects: Sequence) -> ShardedBuildReport:
        """Partition ``objects`` across the shards and build all of them.

        Object ``i`` receives *global* id ``i`` (the same contract as
        :meth:`GTS.bulk_load`); the assignment policy maps each global id to
        a shard.  Per-shard constructions run on independent devices, so the
        reported ``sim_time`` is their makespan.
        """
        if len(objects) == 0:
            raise IndexError_("cannot bulk load an empty object collection")
        if len(objects) < self.num_shards:
            raise IndexError_(
                f"cannot spread {len(objects)} objects over {self.num_shards} shards"
            )
        self._owner = {}
        self._shard_to_global = [[] for _ in range(self.num_shards)]
        self._deleted = set()
        self._loads = [0.0] * self.num_shards
        partitions: list[list] = [[] for _ in range(self.num_shards)]
        for gid in range(len(objects)):
            obj = objects[gid]
            sid = self.policy.assign(gid, obj, self._loads)
            self._owner[gid] = (sid, len(partitions[sid]))
            self._shard_to_global[sid].append(gid)
            partitions[sid].append(obj)
            self._loads[sid] += max(1, objects_nbytes([obj]))
        self._next_id = len(objects)
        empty = [s for s, part in enumerate(partitions) if not part]
        if empty:
            raise IndexError_(f"assignment left shards {empty} empty")
        # one partitioning pass over the stream happens on the host
        self._charge_host(len(objects), "shard-partition")
        results = self._shard_round(
            lambda sid, shard: shard.bulk_load(partitions[sid])
        )
        self._built = True
        return ShardedBuildReport(
            per_shard=list(results),
            sim_time=max(r.sim_time for r in results),
        )

    def close(self) -> None:
        """Free every device allocation held by the shards."""
        for shard in self.shards:
            shard.close()

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_(
                "the sharded index has not been built yet; call bulk_load() first"
            )

    # ---------------------------------------------------------- time charging
    def _shard_round(self, fn) -> list:
        """Run ``fn(sid, shard)`` on every shard as one parallel round.

        The shards' devices advance independently; the coordinating timeline
        is charged the round's makespan while the additive work counters keep
        their cross-shard totals (see :meth:`Device.absorb`).
        """
        befores = [shard.device.snapshot() for shard in self.shards]
        outs = [fn(sid, shard) for sid, shard in enumerate(self.shards)]
        deltas = [
            shard.device.stats.delta_since(before)
            for shard, before in zip(self.shards, befores)
        ]
        merged = ExecutionStats()
        for delta in deltas:
            merged = merged.merge(delta)
        self.device.absorb(merged, sim_time=max(d.sim_time for d in deltas))
        return outs

    def _single_shard(self, sid: int, fn):
        """Run ``fn(shard)`` on one shard, charging its delta to the timeline."""
        shard = self.shards[sid]
        before = shard.device.snapshot()
        out = fn(shard)
        self.device.absorb(shard.device.stats.delta_since(before))
        return out

    def _charge_host(self, ops: float, label: str) -> None:
        """Charge sequential host-side work (partitioning, result merging)."""
        before = self.host.snapshot()
        self.host.execute(ops, label=label)
        self.device.absorb(self.host.stats.delta_since(before))

    def _log_shards(self) -> float:
        """Per-item comparison cost of a ``K``-way merge (heap of ``K`` heads)."""
        return max(1.0, math.log2(max(2, self.num_shards)))

    # -------------------------------------------------------------- queries
    def range_query(self, query, radius: float) -> list[tuple[int, float]]:
        """Answer one metric range query (scatter-gather over the shards)."""
        return self.range_query_batch([query], radius)[0]

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        """Answer a batch of range queries: broadcast, per-shard Algorithm 4, union.

        Same answer contract as :meth:`GTS.range_query_batch` — exact
        ``(object_id, distance)`` lists sorted by ``(distance, object_id)``
        with *global* object ids.
        """
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)

        def run(sid: int, shard: GTS):
            answers = shard.range_query_batch(queries, radii_arr)
            # each shard gathers its surviving results back to the host
            shard.device.transfer_to_host(
                sum(len(a) for a in answers) * RESULT_BYTES, label="results-d2h"
            )
            return answers

        per_shard = self._shard_round(run)
        merged: list[list[tuple[int, float]]] = []
        total = 0
        for qi in range(len(queries)):
            combined: list[tuple[int, float]] = []
            for sid, answers in enumerate(per_shard):
                to_global = self._shard_to_global[sid]
                combined.extend((to_global[oid], dist) for oid, dist in answers[qi])
            total += len(combined)
            merged.append(sorted(combined, key=lambda pair: (pair[1], pair[0])))
        # The union keeps every gathered hit (partitions are disjoint, so the
        # union size equals the single-device answer size): a K-way merge of
        # the per-shard sorted lists costs log2(K) comparisons per hit.
        self._charge_host(total * self._log_shards(), "shard-merge-range")
        return merged

    def knn_query(self, query, k: int) -> list[tuple[int, float]]:
        """Answer one metric kNN query (scatter-gather over the shards)."""
        return self.knn_query_batch([query], k)[0]

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        """Answer a batch of kNN queries: broadcast, per-shard Algorithm 5, merge-top-k.

        Every shard answers the full batch with the full ``k`` over its
        partition; the host merges the ``K`` per-shard top-k lists and keeps
        the global top-k.  Exact, because any object among the global k
        nearest has fewer than ``k`` objects ahead of it in its own shard.
        """
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        if np.any(k_arr <= 0):
            raise QueryError("k must be positive")

        def run(sid: int, shard: GTS):
            answers = shard.knn_query_batch(queries, k_arr)
            shard.device.transfer_to_host(
                sum(len(a) for a in answers) * RESULT_BYTES, label="results-d2h"
            )
            return answers

        per_shard = self._shard_round(run)
        merged: list[list[tuple[int, float]]] = []
        for qi in range(len(queries)):
            combined: list[tuple[int, float]] = []
            for sid, answers in enumerate(per_shard):
                to_global = self._shard_to_global[sid]
                combined.extend((to_global[oid], dist) for oid, dist in answers[qi])
            combined.sort(key=lambda pair: (pair[1], pair[0]))
            merged.append(combined[: int(k_arr[qi])])
        # Selecting the global top-k from K sorted per-shard lists needs only
        # k pops from a K-element heap per query — the merge never has to
        # consume all K*k gathered candidates.
        self._charge_host(
            len(queries) * self.num_shards
            + float(np.sum(k_arr)) * self._log_shards(),
            "shard-merge-knn",
        )
        return merged

    def execute_batch(self, ops: Sequence[tuple]) -> list:
        """Execute a heterogeneous operation batch in submission order.

        Identical contract to :meth:`GTS.execute_batch` (the serving layer's
        entry point): maximal homogeneous runs of range/kNN queries ride one
        scatter-gather batch each, updates act as barriers, results come back
        in submission order.
        """
        self._require_built()
        return execute_operation_batch(self, ops)

    # -------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Insert one object, routed to the shard the policy picks.

        Returns the new *global* id (insertion order, like :meth:`GTS.insert`).
        The object lands in the owning shard's cache table; a cache overflow
        rebuilds that shard alone.
        """
        self._require_built()
        gid = self._next_id
        sid = self.policy.assign(gid, obj, self._loads)
        # validate before charging: a rejected insert (object larger than the
        # shard's whole cache budget) must stay stats-neutral
        self.shards[sid]._cache.ensure_fits(obj)
        # routing the object to its shard is one host-side table lookup
        self._charge_host(1.0, "shard-route")
        lid = self._single_shard(sid, lambda shard: shard.insert(obj))
        self._owner[gid] = (sid, lid)
        self._shard_to_global[sid].append(gid)
        self._loads[sid] += max(1, objects_nbytes([obj]))
        self._next_id += 1
        return gid

    def delete(self, obj_id: int) -> None:
        """Delete one object by global id, routed to its owning shard.

        Validates before charging any simulated time, like :meth:`GTS.delete`:
        unknown or already-deleted ids raise
        :class:`~repro.exceptions.UpdateError` with no device activity.
        """
        self._require_built()
        gid = int(obj_id)
        if gid in self._deleted:
            raise UpdateError(f"object {gid} has already been deleted")
        owner = self._owner.get(gid)
        if owner is None:
            raise UpdateError(f"unknown object id {gid}")
        sid, lid = owner
        self._charge_host(1.0, "shard-route")
        self._single_shard(sid, lambda shard: shard.delete(lid))
        self._loads[sid] -= max(1, objects_nbytes([self.shards[sid].get_object(lid)]))
        self._deleted.add(gid)

    def update(self, obj_id: int, new_obj) -> int:
        """Modify an object: delete the old version, insert the new one.

        Validated atomically: every shard shares one cache budget, so a
        replacement too large for it is rejected before the old version is
        touched.
        """
        self._require_built()
        self.shards[0]._cache.ensure_fits(new_obj)
        self.delete(obj_id)
        return self.insert(new_obj)

    def batch_update(self, inserts: Sequence = (), deletes: Sequence[int] = ()) -> ShardedBuildReport:
        """Apply a bulk update; only the shards it touches rebuild (in parallel).

        Deletes are validated up front against the global id space (unknown
        and already-deleted ids raise), then grouped per owning shard;
        inserts are assigned global ids and shards exactly as streaming
        inserts would be.  Each affected shard runs :meth:`GTS.batch_update`
        (its full reconstruction), untouched shards do nothing, and the
        reported ``sim_time`` is the makespan of the round.  A call with both
        sequences empty is a free no-op: no round, no host charge, no rebuild
        counters.
        """
        self._require_built()
        inserts = list(inserts)
        delete_set = {int(d) for d in deletes}
        if not inserts and not delete_set:
            return ShardedBuildReport(per_shard=[], sim_time=0.0)
        already_deleted = delete_set & self._deleted
        if already_deleted:
            raise UpdateError(
                f"objects have already been deleted: {sorted(already_deleted)}"
            )
        unknown = {d for d in delete_set if d not in self._owner}
        if unknown:
            raise UpdateError(f"cannot delete unknown object ids: {sorted(unknown)}")

        per_shard_deletes: list[list[int]] = [[] for _ in range(self.num_shards)]
        for gid in sorted(delete_set):
            sid, lid = self._owner[gid]
            per_shard_deletes[sid].append(lid)
            self._loads[sid] -= max(1, objects_nbytes([self.shards[sid].get_object(lid)]))

        per_shard_inserts: list[list] = [[] for _ in range(self.num_shards)]
        # GTS assigns local ids consecutively from its current object count
        next_local = [len(shard._objects) for shard in self.shards]
        new_owners: dict[int, tuple[int, int]] = {}
        num_inserts = 0
        for obj in inserts:
            gid = self._next_id
            sid = self.policy.assign(gid, obj, self._loads)
            new_owners[gid] = (sid, next_local[sid])
            next_local[sid] += 1
            per_shard_inserts[sid].append(obj)
            self._loads[sid] += max(1, objects_nbytes([obj]))
            self._next_id += 1
            num_inserts += 1

        self._charge_host(len(delete_set) + num_inserts, "shard-route")

        def run(sid: int, shard: GTS):
            if per_shard_inserts[sid] or per_shard_deletes[sid]:
                return shard.batch_update(per_shard_inserts[sid], per_shard_deletes[sid])
            return None

        results = self._shard_round(run)
        for gid, (sid, lid) in new_owners.items():
            self._owner[gid] = (sid, lid)
            self._shard_to_global[sid].append(gid)
        self._deleted |= delete_set
        rebuilt = [r for r in results if r is not None]
        return ShardedBuildReport(
            per_shard=rebuilt,
            sim_time=max((r.sim_time for r in rebuilt), default=0.0),
        )

    def rebuild(self) -> ShardedBuildReport:
        """Force every shard to rebuild (one parallel round)."""
        self._require_built()
        results = self._shard_round(lambda sid, shard: shard.rebuild())
        return ShardedBuildReport(
            per_shard=list(results),
            sim_time=max(r.sim_time for r in results),
        )

    # ---------------------------------------------------------- maintenance
    def enable_incremental_maintenance(self, config=None) -> None:
        """Enable non-blocking generation-swap rebuilds on every shard.

        Shard-local cache overflows then only mark the owning shard
        maintenance-due; :meth:`run_maintenance_slice` advances the rebuilds
        under a **staggered schedule** — at most one shard is in maintenance
        at a time, so a scatter-gather query batch never waits behind more
        than one shard's slice and the tail latency of the round stays
        bounded (DESIGN.md §9).
        """
        for shard in self.shards:
            shard.enable_incremental_maintenance(config)

    @property
    def maintenance_enabled(self) -> bool:
        """True when the shards run non-blocking generation-swap rebuilds."""
        return any(shard.maintenance_enabled for shard in self.shards)

    @property
    def maintenance_due(self) -> bool:
        """True when a maintenance slice would advance some shard."""
        return any(shard.maintenance_due for shard in self.shards)

    def run_maintenance_slice(self):
        """Advance maintenance on **at most one** shard (staggered schedule).

        A shard with an in-flight generation always goes first — it runs to
        completion over successive calls before any other due shard may
        start its own rebuild, which is what keeps at most one shard in
        maintenance at any time.  The slice's delta is charged to the
        coordinating timeline like any single-shard operation.  Returns the
        shard's :class:`~repro.core.maintenance.SliceReport` or None.
        """
        self._require_built()
        target = None
        for sid, shard in enumerate(self.shards):
            if shard.maintenance is not None and shard.maintenance.in_flight:
                target = sid
                break
        if target is None:
            for sid, shard in enumerate(self.shards):
                if shard.maintenance_due:
                    target = sid
                    break
        if target is None:
            return None
        return self._single_shard(target, lambda shard: shard.run_maintenance_slice())

    # ------------------------------------------------------------ properties
    def get_object(self, obj_id: int):
        """Return the object registered under the *global* ``obj_id``."""
        owner = self._owner.get(int(obj_id))
        if owner is None:
            raise IndexError_(f"unknown object id {int(obj_id)}")
        sid, lid = owner
        return self.shards[sid].get_object(lid)

    def is_live(self, obj_id: int) -> bool:
        """True when the global ``obj_id`` is currently visible to queries."""
        gid = int(obj_id)
        owner = self._owner.get(gid)
        if owner is None or gid in self._deleted:
            return False
        sid, lid = owner
        return self.shards[sid].is_live(lid)

    @property
    def num_objects(self) -> int:
        """Number of live (visible) objects across all shards."""
        return sum(shard.num_objects for shard in self.shards)

    @property
    def num_indexed(self) -> int:
        """Number of objects inside the shard trees (incl. tombstoned slots)."""
        return sum(shard.num_indexed for shard in self.shards)

    @property
    def cache_size(self) -> int:
        """Objects currently buffered across the shard-local cache tables."""
        return sum(shard.cache_size for shard in self.shards)

    @property
    def rebuild_count(self) -> int:
        """Total rebuilds across all shards: ``automatic + forced``."""
        return sum(shard.rebuild_count for shard in self.shards)

    @property
    def automatic_rebuild_count(self) -> int:
        """Cache-overflow (streaming-update) rebuilds across all shards."""
        return sum(shard.automatic_rebuild_count for shard in self.shards)

    @property
    def forced_rebuild_count(self) -> int:
        """Explicit :meth:`rebuild` / :meth:`batch_update` reconstructions
        across all shards."""
        return sum(shard.forced_rebuild_count for shard in self.shards)

    @property
    def shard_sizes(self) -> list[int]:
        """Live object count of each shard (balance diagnostic)."""
        return [shard.num_objects for shard in self.shards]

    @property
    def shard_load_bytes(self) -> list[float]:
        """Payload bytes assigned to each shard (what size-balanced evens out)."""
        return list(self._loads)

    @property
    def tiered(self) -> bool:
        """True when the shards page their object stores (tiered mode)."""
        return self.tier_config is not None

    def pager_stats(self) -> Optional[dict]:
        """Aggregate block-pager counters across the shards (None if resident)."""
        if not self.tiered:
            return None
        totals: dict = {}
        for shard in self.shards:
            for key, value in shard.pager.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        accesses = totals.get("hits", 0) + totals.get("misses", 0)
        totals["hit_rate"] = totals.get("hits", 0) / accesses if accesses else 1.0
        return totals

    @property
    def storage_bytes(self) -> int:
        """Total index storage across the shard trees."""
        return sum(shard.storage_bytes for shard in self.shards)

    @property
    def height(self) -> int:
        """Height of the tallest shard tree."""
        self._require_built()
        return max(shard.height for shard in self.shards)

    def __len__(self) -> int:
        return self.num_objects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = "built" if self._built else "empty"
        return (
            f"ShardedGTS({built}, shards={self.num_shards}, "
            f"objects={self.num_objects}, policy={self.policy.name!r}, "
            f"metric={self.metric.name!r})"
        )
