"""Multi-device sharded GTS index (scatter-gather scale-out).

The paper's design is single-GPU; this package adds the scale-out layer a
production deployment would put on top — the same move Faiss makes for
billion-scale search (Johnson et al.): partition the object store across
``K`` devices, build per-shard GTS trees in parallel, broadcast query
batches to every shard and merge the per-shard answers on the host.

* :mod:`repro.shard.policy` — pluggable shard-assignment policies
  (round-robin, size-balanced);
* :mod:`repro.shard.sharded` — :class:`ShardedGTS`, the coordinating index
  with makespan-honest time accounting and the same ``execute_batch``
  contract as :class:`~repro.core.GTS` (so the serving layer runs unchanged);
* :mod:`repro.shard.experiment` — the strong/weak scale-out experiment
  behind ``benchmarks/bench_sharding.py`` and
  ``repro experiment sharding-scaleout``.

See DESIGN.md §6 for the accounting model and the exactness argument.
"""

from .policy import (
    ASSIGNMENT_POLICIES,
    AssignmentPolicy,
    RoundRobinPolicy,
    SizeBalancedPolicy,
    make_assignment_policy,
)
from .sharded import ShardedBuildReport, ShardedGTS

#: Lazily loaded symbols that depend on :mod:`repro.evalsuite` (see
#: :mod:`repro.service` for the same pattern).
_LAZY = {
    "experiment_sharding_scaleout": "experiment",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "ShardedGTS",
    "ShardedBuildReport",
    "AssignmentPolicy",
    "RoundRobinPolicy",
    "SizeBalancedPolicy",
    "ASSIGNMENT_POLICIES",
    "make_assignment_policy",
    "experiment_sharding_scaleout",
]
