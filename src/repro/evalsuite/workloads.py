"""Query-workload construction for the evaluation harness.

The paper's search experiments are parameterised by

* the search radius ``r``, expressed as a multiple of 0.01 % — interpreted
  here as the target *selectivity* (the expected fraction of the dataset a
  range query returns), which is the property that actually drives index
  behaviour and transfers across dataset scales;
* ``k`` for MkNNQ;
* the number of queries in a batch (16-512, default 256 scaled down by the
  harness when the dataset is small).

:func:`radius_for_selectivity` converts a selectivity into a concrete radius
by sampling the pairwise-distance distribution of the dataset and taking the
corresponding quantile.  The same sample also feeds the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import QueryError
from ..metrics.base import Metric

__all__ = [
    "PAPER_RADIUS_STEPS",
    "PAPER_K_VALUES",
    "PAPER_BATCH_SIZES",
    "PAPER_NODE_CAPACITIES",
    "sample_pairwise_distances",
    "radius_for_selectivity",
    "Workload",
    "make_workload",
]

#: Table 3 of the paper: search radius steps (each step is 0.01 % selectivity).
PAPER_RADIUS_STEPS = (1, 2, 4, 8, 16, 32)
#: Table 3: k values for MkNNQ.
PAPER_K_VALUES = (1, 2, 4, 8, 16, 32)
#: Table 3: number of queries in a batch.
PAPER_BATCH_SIZES = (16, 32, 64, 128, 256, 512)
#: Table 3: node capacities.
PAPER_NODE_CAPACITIES = (10, 20, 40, 80, 160, 320)

#: One radius step corresponds to this selectivity (0.01 % of the dataset).
RADIUS_STEP_SELECTIVITY = 1e-4


def sample_pairwise_distances(
    objects: Sequence,
    metric: Metric,
    sample_size: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample pairwise distances between random objects of the dataset."""
    n = len(objects)
    if n < 2:
        raise QueryError("need at least two objects to sample distances")
    rng = rng or np.random.default_rng(11)
    sample_size = min(sample_size, n)
    idx = rng.choice(n, size=sample_size, replace=False)
    if isinstance(objects, np.ndarray):
        sample = objects[idx]
    else:
        sample = [objects[int(i)] for i in idx]
    anchors = min(20, sample_size)
    rows = []
    for a in range(anchors):
        row = metric.pairwise(sample[a], sample)
        rows.append(np.delete(row, a))
    return np.concatenate(rows)


def radius_for_selectivity(
    objects: Sequence,
    metric: Metric,
    selectivity: float,
    sample_size: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Radius whose range query returns roughly ``selectivity * n`` objects.

    The radius is the ``selectivity`` quantile of the sampled pairwise
    distance distribution, floored at a small positive value so that integer
    metrics (edit distance) still return the query's near-duplicates.
    """
    if not 0 < selectivity <= 1:
        raise QueryError(f"selectivity must be in (0, 1], got {selectivity}")
    dists = sample_pairwise_distances(objects, metric, sample_size=sample_size, rng=rng)
    radius = float(np.quantile(dists, selectivity))
    positive = dists[dists > 0]
    floor = float(positive.min()) if len(positive) else 0.0
    return max(radius, floor)


def radius_for_step(
    objects: Sequence,
    metric: Metric,
    step: int,
    sample_size: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Radius for one of the paper's ``r (x0.01%)`` steps (Table 3)."""
    return radius_for_selectivity(
        objects, metric, step * RADIUS_STEP_SELECTIVITY, sample_size=sample_size, rng=rng
    )


@dataclass
class Workload:
    """A concrete batch workload: queries plus MRQ radius / MkNNQ k."""

    queries: list
    radius: float
    k: int
    selectivity: float

    @property
    def batch_size(self) -> int:
        return len(self.queries)


def make_workload(
    dataset,
    num_queries: int = 64,
    radius_step: int = 8,
    k: int = 8,
    seed: int = 53,
) -> Workload:
    """Build the default workload used across the benchmark harness.

    ``radius_step`` follows the paper's ``r (x0.01%)`` convention but is
    rescaled for the (much smaller) stand-in datasets so that range queries
    return a handful of objects rather than none: the effective selectivity is
    ``radius_step x 0.01% x (paper cardinality / generated cardinality)``
    capped at 5 %.
    """
    rng = np.random.default_rng(seed)
    queries = dataset.sample_queries(num_queries, seed=seed)
    scale_up = 1.0
    if dataset.paper_cardinality and dataset.cardinality:
        scale_up = max(1.0, dataset.paper_cardinality / dataset.cardinality / 50.0)
    selectivity = min(0.02, radius_step * RADIUS_STEP_SELECTIVITY * scale_up)
    radius = radius_for_selectivity(dataset.objects, dataset.metric, selectivity, rng=rng)
    return Workload(queries=queries, radius=radius, k=k, selectivity=selectivity)
