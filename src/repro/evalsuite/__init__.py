"""Evaluation harness: workloads, runners, experiments and reporting.

Every table and figure of the paper's Section 6 has a matching
``experiment_*`` function here; the ``benchmarks/`` directory wraps them in
pytest-benchmark targets.
"""

from .extensions import experiment_approximate_tradeoff, experiment_extended_baselines
from .experiments import (
    ALL_METHODS,
    GENERAL_METHODS,
    PAPER_DATASETS,
    SPECIAL_METHODS,
    ablation_cost_model,
    ablation_prune_and_pivot,
    ablation_two_stage,
    experiment_fig5_updates,
    experiment_fig6_node_capacity,
    experiment_fig7_radius_and_k,
    experiment_fig8_gpu_memory,
    experiment_fig9_batch_size,
    experiment_fig10_identical_objects,
    experiment_fig11_cardinality,
    experiment_table4_construction,
    experiment_table5_cache_size,
)
from .reporting import ExperimentResult, format_bytes, format_seconds, format_table, format_throughput, rows_to_csv
from .runner import STATUS_OK, STATUS_OOM, STATUS_UNSUPPORTED, MethodResult, MethodRunner, compute_recall
from .workloads import (
    PAPER_BATCH_SIZES,
    PAPER_K_VALUES,
    PAPER_NODE_CAPACITIES,
    PAPER_RADIUS_STEPS,
    Workload,
    make_workload,
    radius_for_selectivity,
    sample_pairwise_distances,
)

__all__ = [
    "MethodRunner",
    "MethodResult",
    "compute_recall",
    "STATUS_OK",
    "STATUS_OOM",
    "STATUS_UNSUPPORTED",
    "ExperimentResult",
    "format_table",
    "format_bytes",
    "format_seconds",
    "format_throughput",
    "rows_to_csv",
    "Workload",
    "make_workload",
    "radius_for_selectivity",
    "sample_pairwise_distances",
    "PAPER_RADIUS_STEPS",
    "PAPER_K_VALUES",
    "PAPER_BATCH_SIZES",
    "PAPER_NODE_CAPACITIES",
    "PAPER_DATASETS",
    "GENERAL_METHODS",
    "SPECIAL_METHODS",
    "ALL_METHODS",
    "experiment_extended_baselines",
    "experiment_approximate_tradeoff",
    "experiment_table4_construction",
    "experiment_table5_cache_size",
    "experiment_fig5_updates",
    "experiment_fig6_node_capacity",
    "experiment_fig7_radius_and_k",
    "experiment_fig8_gpu_memory",
    "experiment_fig9_batch_size",
    "experiment_fig10_identical_objects",
    "experiment_fig11_cardinality",
    "ablation_cost_model",
    "ablation_prune_and_pivot",
    "ablation_two_stage",
]
