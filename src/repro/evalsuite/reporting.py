"""Plain-text and CSV reporting of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place so the CLI
output and the pytest-benchmark output stay consistent.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_bytes",
    "format_seconds",
    "format_throughput",
    "rows_to_csv",
]


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (KB/MB/GB with two decimals)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024 or unit == "TB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.2f} TB"


def format_seconds(seconds: float) -> str:
    """Human-readable duration (ns/us/ms/s)."""
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_throughput(queries_per_minute: float) -> str:
    """Throughput in queries/min with scientific notation for large values."""
    if queries_per_minute == float("inf"):
        return "inf"
    if queries_per_minute >= 1e5:
        return f"{queries_per_minute:.2e} q/min"
    return f"{queries_per_minute:.1f} q/min"


def format_table(rows: Sequence[dict], columns: Sequence[str], title: str = "") -> str:
    """Render rows as a fixed-width text table with the given column order."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    header = list(columns)
    str_rows = []
    for row in rows:
        str_rows.append([_stringify(row.get(col, "")) for col in header])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in str_rows)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def rows_to_csv(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise rows to CSV text (column order preserved)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


@dataclass
class ExperimentResult:
    """Structured result of one reproduced table or figure."""

    experiment: str
    title: str
    rows: list = field(default_factory=list)
    columns: list = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append one measurement row."""
        self.rows.append(values)
        for key in values:
            if key not in self.columns:
                self.columns.append(key)

    def filter(self, **criteria) -> list:
        """Return the rows matching every ``key=value`` criterion."""
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                out.append(row)
        return out

    def series(self, x: str, y: str, **criteria) -> list[tuple]:
        """Return the ``(x, y)`` series of the matching rows (figure data)."""
        return [(row[x], row[y]) for row in self.filter(**criteria) if y in row]

    def to_text(self) -> str:
        """Render the result as the paper-style text table."""
        text = format_table(self.rows, self.columns, title=f"{self.experiment}: {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_csv(self) -> str:
        """Render the result rows as CSV."""
        return rows_to_csv(self.rows, self.columns)
