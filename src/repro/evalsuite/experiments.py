"""Reproductions of every table and figure in the paper's evaluation (Section 6).

Each ``experiment_*`` function regenerates one artifact and returns an
:class:`~repro.evalsuite.reporting.ExperimentResult` whose rows carry the same
quantities the paper reports (construction seconds and MB for Table 4,
queries/minute for the figures, seconds per update for Table 5 / Fig. 5, and
so on).  The benchmark files under ``benchmarks/`` are thin wrappers that call
these functions and print/assert on their output; ``benchmarks/README.md``
maps each benchmark to its paper figure/table and the shape it locks in.

Scaling.  The stand-in datasets are orders of magnitude smaller than the
paper's (DESIGN.md §2), so two knobs keep the phenomena visible at the reduced
scale and are set per experiment:

* ``cardinality`` per dataset (defaults in ``DEFAULT_CARDINALITIES``), and
* the simulated device's memory, scaled down for the memory-pressure
  experiments (Figs. 8, 9, 11) so that intermediate results are again a
  meaningful fraction of device memory.

Simulated time — not wall-clock time — is the unit of account throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..baselines import METHOD_REGISTRY
from ..core.cost_model import estimate_query_cost
from ..datasets import DEFAULT_CARDINALITIES, get_dataset, make_duplicates
from ..gpusim.specs import CPUSpec, DeviceSpec, GiB, KiB, MiB
from ..gpusim.timing import throughput_per_minute
from .reporting import ExperimentResult
from .runner import STATUS_OK, MethodRunner
from .workloads import (
    PAPER_BATCH_SIZES,
    PAPER_K_VALUES,
    PAPER_NODE_CAPACITIES,
    PAPER_RADIUS_STEPS,
    make_workload,
)

__all__ = [
    "GENERAL_METHODS",
    "SPECIAL_METHODS",
    "ALL_METHODS",
    "experiment_table4_construction",
    "experiment_table5_cache_size",
    "experiment_fig5_updates",
    "experiment_fig6_node_capacity",
    "experiment_fig7_radius_and_k",
    "experiment_fig8_gpu_memory",
    "experiment_fig9_batch_size",
    "experiment_fig10_identical_objects",
    "experiment_fig11_cardinality",
    "ablation_cost_model",
    "ablation_prune_and_pivot",
    "ablation_two_stage",
]

#: General-purpose competitors (run on every dataset), paper order.
GENERAL_METHODS = ("BST", "EGNAT", "MVPT", "GPU-Table", "GPU-Tree")
#: Special-purpose competitors (vector / Lp data only).
SPECIAL_METHODS = ("LBPG-Tree", "GANNS")
#: Everything including GTS.
ALL_METHODS = GENERAL_METHODS + SPECIAL_METHODS + ("GTS",)

#: Datasets in the paper's order.
PAPER_DATASETS = ("words", "tloc", "vector", "dna", "color")

#: Simulated host-memory budget for EGNAT's pre-computed distance tables,
#: scaled down with the datasets so that the paper's T-Loc out-of-memory entry
#: reappears (Table 4).
EGNAT_MEMORY_BUDGET = 2 * MiB


def _method_kwargs(method: str, dataset_name: str) -> dict:
    kwargs: dict = {}
    if method == "EGNAT":
        kwargs["memory_budget_bytes"] = EGNAT_MEMORY_BUDGET
    return kwargs


def _scaled_cardinality(name: str, scale: float, override: Optional[dict]) -> int:
    if override and name in override:
        return int(override[name])
    return max(64, int(DEFAULT_CARDINALITIES[name] * scale))


def _build_runner(
    method: str,
    dataset,
    device_spec: Optional[DeviceSpec],
    method_kwargs: Optional[dict] = None,
) -> MethodRunner:
    kwargs = _method_kwargs(method, dataset.name)
    kwargs.update(method_kwargs or {})
    return MethodRunner(method, dataset, device_spec=device_spec, method_kwargs=kwargs)


# --------------------------------------------------------------------------
# Table 4 — index construction cost (time and storage) of every method
# --------------------------------------------------------------------------
def experiment_table4_construction(
    datasets: Sequence[str] = PAPER_DATASETS,
    methods: Sequence[str] = ("BST", "EGNAT", "MVPT", "GPU-Tree", "LBPG-Tree", "GANNS", "GTS"),
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Table 4: construction time (s) and storage (MB) per method/dataset."""
    result = ExperimentResult(
        experiment="table4",
        title="Index construction cost of different methods",
        notes="status '/': method not applicable; 'oom': out of memory (as in the paper)",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        for method in methods:
            runner = _build_runner(method, dataset, device_spec)
            build = runner.build()
            result.add_row(
                dataset=ds_name,
                method=method,
                status=build.status,
                time_s=build.sim_time,
                storage_mb=build.storage_bytes / MiB,
                distance_computations=build.distance_computations,
                wall_s=build.wall_time,
            )
    return result


# --------------------------------------------------------------------------
# Table 5 — GTS update time under different cache-table sizes
# --------------------------------------------------------------------------
def experiment_table5_cache_size(
    datasets: Sequence[str] = PAPER_DATASETS,
    cache_sizes_kb: Sequence[float] = (0.01, 0.1, 1, 5, 10),
    num_updates: int = 100,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 2,
) -> ExperimentResult:
    """Reproduce Table 5: per-update-operation time of GTS vs cache-table size.

    Each update operation removes a random object, re-inserts it and runs one
    random range query (the paper's protocol, Section 6.2).
    """
    result = ExperimentResult(
        experiment="table5",
        title="Update time of GTS under different cache table sizes",
        notes="time_per_op_s = (delete + insert + range query) averaged over the run",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        workload = make_workload(dataset, num_queries=max(4, num_updates // 10), seed=seed)
        for cache_kb in cache_sizes_kb:
            runner = _build_runner(
                "GTS", dataset, device_spec,
                method_kwargs={"cache_capacity_bytes": max(16, int(cache_kb * KiB))},
            )
            build = runner.build()
            if build.failed:
                result.add_row(dataset=ds_name, cache_kb=cache_kb, status=build.status)
                continue
            index = runner.index
            rng = np.random.default_rng(seed + 7)
            before = index.sim_stats.copy()
            for step in range(num_updates):
                live = index.live_ids()
                victim = int(live[rng.integers(0, len(live))])
                obj = index._objects[victim]
                index.delete(victim)
                index.insert(obj)
                query = workload.queries[step % len(workload.queries)]
                index.range_query_batch([query], workload.radius)
            delta = index.sim_stats.delta_since(before)
            result.add_row(
                dataset=ds_name,
                cache_kb=cache_kb,
                status=STATUS_OK,
                time_per_op_s=delta.sim_time / num_updates,
                total_time_s=delta.sim_time,
                # the table studies streaming-update overflows, so count the
                # automatic rebuilds only (forced rebuilds are caller-driven)
                rebuilds=getattr(index, "gts", index).automatic_rebuild_count
                if hasattr(index, "gts")
                else None,
            )
    return result


# --------------------------------------------------------------------------
# Fig. 5 — streaming vs batch update cost of every method
# --------------------------------------------------------------------------
def experiment_fig5_updates(
    datasets: Sequence[str] = PAPER_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    num_stream_updates: int = 10,
    batch_fraction: float = 0.1,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 3,
) -> ExperimentResult:
    """Reproduce Fig. 5: per-update time for streaming and batch updates."""
    result = ExperimentResult(
        experiment="fig5",
        title="Update cost: (a) streaming data updates, (b) batch updates",
        notes="time_per_update_s is the simulated seconds per updated object",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        for method in methods:
            runner = _build_runner(method, dataset, device_spec)
            build = runner.build()
            if build.failed:
                for mode in ("stream", "batch"):
                    result.add_row(dataset=ds_name, method=method, mode=mode, status=build.status)
                continue
            stream = runner.run_stream_updates(num_stream_updates, rng_seed=seed)
            result.add_row(
                dataset=ds_name,
                method=method,
                mode="stream",
                status=stream.status,
                time_per_update_s=stream.params.get("time_per_update"),
            )
            batch = runner.run_batch_update(fraction=batch_fraction, rng_seed=seed)
            result.add_row(
                dataset=ds_name,
                method=method,
                mode="batch",
                status=batch.status,
                time_per_update_s=batch.params.get("time_per_update"),
            )
    return result


# --------------------------------------------------------------------------
# Fig. 6 — effect of the node capacity Nc on GTS throughput
# --------------------------------------------------------------------------
def experiment_fig6_node_capacity(
    datasets: Sequence[str] = ("words", "color"),
    node_capacities: Sequence[int] = PAPER_NODE_CAPACITIES,
    num_queries: int = 64,
    radius_step: int = 8,
    k: int = 8,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 4,
) -> ExperimentResult:
    """Reproduce Fig. 6: MRQ and MkNNQ throughput of GTS for each node capacity."""
    result = ExperimentResult(
        experiment="fig6",
        title="Effect of the node capacity Nc (GTS)",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, k=k, seed=seed)
        for nc in node_capacities:
            runner = _build_runner("GTS", dataset, device_spec, method_kwargs={"node_capacity": nc})
            build = runner.build()
            if build.failed:
                result.add_row(dataset=ds_name, node_capacity=nc, status=build.status)
                continue
            mrq = runner.run_mrq(workload.queries, workload.radius)
            knn = runner.run_knn(workload.queries, workload.k)
            result.add_row(
                dataset=ds_name,
                node_capacity=nc,
                status=STATUS_OK,
                mrq_throughput=mrq.throughput,
                mknn_throughput=knn.throughput,
                mrq_distances=mrq.distance_computations,
                mknn_distances=knn.distance_computations,
                height=runner.index.gts.height if hasattr(runner.index, "gts") else None,
            )
    return result


# --------------------------------------------------------------------------
# Fig. 7 — effect of the radius r (MRQ) and of k (MkNNQ), all methods
# --------------------------------------------------------------------------
def experiment_fig7_radius_and_k(
    datasets: Sequence[str] = PAPER_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    radius_steps: Sequence[int] = PAPER_RADIUS_STEPS,
    k_values: Sequence[int] = PAPER_K_VALUES,
    num_queries: int = 64,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 5,
) -> ExperimentResult:
    """Reproduce Fig. 7: throughput of every method while varying r and k."""
    result = ExperimentResult(
        experiment="fig7",
        title="MRQ throughput vs r and MkNNQ throughput vs k, per dataset and method",
        notes="query=mrq rows vary radius_step; query=mknn rows vary k",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaledcard(ds_name, scale, cardinalities), seed=seed)
        base_workload = make_workload(dataset, num_queries=num_queries, seed=seed)
        oracle_runner = _build_runner("LinearScan", dataset, device_spec)
        oracle_runner.build()
        runners: dict[str, MethodRunner] = {}
        for method in methods:
            runner = _build_runner(method, dataset, device_spec)
            build = runner.build()
            runners[method] = runner if not build.failed else None
            if build.failed:
                result.add_row(dataset=ds_name, method=method, query="build", status=build.status)
        # --- MRQ sweep over the radius
        for step in radius_steps:
            workload = make_workload(
                dataset, num_queries=num_queries, radius_step=step, seed=seed
            )
            for method in methods:
                runner = runners.get(method)
                if runner is None:
                    continue
                res = runner.run_mrq(workload.queries, workload.radius, params={"radius_step": step})
                result.add_row(
                    dataset=ds_name,
                    method=method,
                    query="mrq",
                    radius_step=step,
                    status=res.status,
                    throughput=res.throughput,
                    distance_computations=res.distance_computations,
                )
        # --- MkNNQ sweep over k
        for k in k_values:
            truth = oracle_runner.index.knn_query_batch(base_workload.queries, k)
            for method in methods:
                runner = runners.get(method)
                if runner is None:
                    continue
                res = runner.run_knn(base_workload.queries, k, ground_truth=truth, params={"k": k})
                result.add_row(
                    dataset=ds_name,
                    method=method,
                    query="mknn",
                    k=k,
                    status=res.status,
                    throughput=res.throughput,
                    recall=res.recall,
                    distance_computations=res.distance_computations,
                )
    return result


def _scaledcard(name: str, scale: float, override: Optional[dict]) -> int:
    return _scaled_cardinality(name, scale, override)


# --------------------------------------------------------------------------
# Fig. 8 — effect of the available GPU memory on GTS throughput
# --------------------------------------------------------------------------
def experiment_fig8_gpu_memory(
    datasets: Sequence[str] = ("tloc", "color"),
    memory_mb: Sequence[float] = (1, 2, 4, 6, 8, 10),
    num_queries: int = 128,
    radius_step: int = 8,
    k: int = 8,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    seed: int = 6,
) -> ExperimentResult:
    """Reproduce Fig. 8: GTS throughput as the device memory grows.

    The paper varies 1-10 GB on the full datasets; with the scaled-down
    stand-ins the same pressure appears at 1-10 MB (DESIGN.md §2).
    """
    result = ExperimentResult(
        experiment="fig8",
        title="Effect of the GPU memory on GTS throughput",
        notes="memory is scaled down with the datasets (MB instead of GB)",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, k=k, seed=seed)
        for mem in memory_mb:
            spec = DeviceSpec(memory_bytes=int(mem * MiB))
            runner = _build_runner("GTS", dataset, spec)
            build = runner.build()
            if build.failed:
                result.add_row(dataset=ds_name, memory_mb=mem, status=build.status)
                continue
            mrq = runner.run_mrq(workload.queries, workload.radius)
            knn = runner.run_knn(workload.queries, workload.k)
            result.add_row(
                dataset=ds_name,
                memory_mb=mem,
                status=STATUS_OK if not (mrq.failed or knn.failed) else mrq.status,
                mrq_throughput=mrq.throughput,
                mknn_throughput=knn.throughput,
            )
    return result


# --------------------------------------------------------------------------
# Fig. 9 — effect of the number of queries in a batch (concurrency)
# --------------------------------------------------------------------------
def experiment_fig9_batch_size(
    datasets: Sequence[str] = ("tloc", "color"),
    methods: Sequence[str] = ("BST", "EGNAT", "MVPT", "GPU-Table", "GPU-Tree", "LBPG-Tree", "GTS"),
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    radius_step: int = 8,
    device_memory_mb: float = 40.0,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce Fig. 9: MRQ throughput as the batch grows (memory deadlocks included).

    The device memory is scaled down (default 40 MB) so that GPU-Tree's
    fixed per-(query, tree) result buffers stop fitting at the largest batch,
    reproducing the paper's memory-deadlock observation on Color with 512
    queries.
    """
    result = ExperimentResult(
        experiment="fig9",
        title="MRQ throughput vs the number of queries in a batch",
        notes="status=oom marks the memory-deadlock failures the paper reports",
    )
    spec = DeviceSpec(memory_bytes=int(device_memory_mb * MiB))
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        for method in methods:
            runner = _build_runner(method, dataset, spec)
            build = runner.build()
            if build.failed:
                for batch in batch_sizes:
                    result.add_row(
                        dataset=ds_name, method=method, batch_size=batch, status=build.status
                    )
                continue
            for batch in batch_sizes:
                workload = make_workload(
                    dataset, num_queries=batch, radius_step=radius_step, seed=seed + batch
                )
                res = runner.run_mrq(workload.queries, workload.radius, params={"batch": batch})
                result.add_row(
                    dataset=ds_name,
                    method=method,
                    batch_size=batch,
                    status=res.status,
                    throughput=res.throughput,
                )
    return result


# --------------------------------------------------------------------------
# Fig. 10 — effect of identical (duplicate) objects on GTS
# --------------------------------------------------------------------------
def experiment_fig10_identical_objects(
    datasets: Sequence[str] = ("tloc", "color"),
    distinct_proportions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    num_queries: int = 64,
    radius_step: int = 8,
    k: int = 8,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 8,
) -> ExperimentResult:
    """Reproduce Fig. 10: GTS throughput while varying the distinct-data proportion."""
    result = ExperimentResult(
        experiment="fig10",
        title="Effect of identical objects on GTS throughput",
    )
    for ds_name in datasets:
        base = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        for proportion in distinct_proportions:
            dataset = make_duplicates(base, proportion, seed=seed) if proportion < 1.0 else base
            workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, k=k, seed=seed)
            runner = _build_runner("GTS", dataset, device_spec)
            build = runner.build()
            if build.failed:
                result.add_row(dataset=ds_name, distinct=proportion, status=build.status)
                continue
            mrq = runner.run_mrq(workload.queries, workload.radius)
            knn = runner.run_knn(workload.queries, workload.k)
            result.add_row(
                dataset=ds_name,
                distinct=proportion,
                status=STATUS_OK,
                mrq_throughput=mrq.throughput,
                mknn_throughput=knn.throughput,
            )
    return result


# --------------------------------------------------------------------------
# Fig. 11 — scalability with the dataset cardinality (throughput and memory)
# --------------------------------------------------------------------------
def experiment_fig11_cardinality(
    datasets: Sequence[str] = ("tloc", "color"),
    methods: Sequence[str] = ("BST", "EGNAT", "MVPT", "GPU-Table", "GPU-Tree", "LBPG-Tree", "GANNS", "GTS"),
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    k: int = 8,
    num_queries: int = 64,
    device_memory_mb: float = 24.0,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    seed: int = 9,
) -> ExperimentResult:
    """Reproduce Fig. 11: MkNNQ throughput and memory use as cardinality grows.

    The reduced device memory (default 24 MB) recreates the out-of-memory
    failures the paper observes for EGNAT, GPU-Tree, GANNS and LBPG-Tree on
    the larger cardinalities.
    """
    result = ExperimentResult(
        experiment="fig11",
        title="MkNNQ throughput and memory consumption vs dataset cardinality",
    )
    spec = DeviceSpec(memory_bytes=int(device_memory_mb * MiB))
    for ds_name in datasets:
        full = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        for fraction in fractions:
            dataset = full.subsample(fraction) if fraction < 1.0 else full
            workload = make_workload(dataset, num_queries=num_queries, k=k, seed=seed)
            for method in methods:
                runner = _build_runner(method, dataset, spec)
                build = runner.build()
                if build.failed:
                    result.add_row(
                        dataset=ds_name, method=method, fraction=fraction, status=build.status
                    )
                    continue
                res = runner.run_knn(workload.queries, workload.k)
                memory_bytes = max(res.peak_memory_bytes, runner.index.storage_bytes)
                result.add_row(
                    dataset=ds_name,
                    method=method,
                    fraction=fraction,
                    status=res.status,
                    throughput=res.throughput,
                    memory_mb=memory_bytes / MiB,
                )
    return result


# --------------------------------------------------------------------------
# Ablations
# --------------------------------------------------------------------------
def ablation_cost_model(
    dataset_name: str = "tloc",
    node_capacities: Sequence[int] = PAPER_NODE_CAPACITIES,
    num_queries: int = 64,
    radius_step: int = 8,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 10,
) -> ExperimentResult:
    """Cost-model validation: predicted vs measured per-query cost over Nc.

    The paper uses the Section 5.3 model to argue for a small node capacity;
    this ablation checks that the model's argmin matches (or neighbours) the
    measured optimum.
    """
    result = ExperimentResult(
        experiment="ablation-cost-model",
        title="Cost model: predicted vs measured query cost per node capacity",
    )
    card = cardinality or _scaled_cardinality(dataset_name, scale, None)
    dataset = get_dataset(dataset_name, card, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, seed=seed)
    spec = device_spec or DeviceSpec()
    sample = np.asarray(
        [dataset.metric.distance(a, b) for a, b in zip(dataset.sample_queries(64, seed=seed),
                                                        dataset.sample_queries(64, seed=seed + 1))]
    )
    sigma = float(sample.std())
    for nc in node_capacities:
        predicted = estimate_query_cost(
            n=dataset.cardinality,
            node_capacity=nc,
            device=spec,
            sigma=sigma,
            radius=workload.radius,
            metric_unit_cost=dataset.metric.unit_cost,
        )
        runner = _build_runner("GTS", dataset, spec, method_kwargs={"node_capacity": nc})
        build = runner.build()
        if build.failed:
            result.add_row(node_capacity=nc, status=build.status)
            continue
        mrq = runner.run_mrq(workload.queries, workload.radius)
        measured = mrq.sim_time / max(1, len(workload.queries))
        result.add_row(
            node_capacity=nc,
            status=STATUS_OK,
            predicted_cost_s=predicted,
            measured_cost_s=measured,
        )
    return result


def ablation_prune_and_pivot(
    dataset_name: str = "tloc",
    num_queries: int = 64,
    radius_step: int = 8,
    k: int = 8,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 11,
) -> ExperimentResult:
    """Ablation of two GTS design choices: pruning mode and pivot strategy.

    Compares two-sided vs one-sided (paper-literal) pruning and FFT vs random
    vs center pivot selection, reporting throughput and distance computations.
    """
    result = ExperimentResult(
        experiment="ablation-prune-pivot",
        title="GTS design-choice ablation: pruning rule and pivot strategy",
    )
    card = cardinality or _scaled_cardinality(dataset_name, scale, None)
    dataset = get_dataset(dataset_name, card, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, k=k, seed=seed)
    variants = [
        ("two-sided", "fft"),
        ("one-sided", "fft"),
        ("two-sided", "random"),
        ("two-sided", "center"),
    ]
    for prune_mode, pivot_strategy in variants:
        runner = _build_runner(
            "GTS",
            dataset,
            device_spec,
            method_kwargs={"prune_mode": prune_mode, "pivot_strategy": pivot_strategy},
        )
        build = runner.build()
        if build.failed:
            result.add_row(prune=prune_mode, pivot=pivot_strategy, status=build.status)
            continue
        mrq = runner.run_mrq(workload.queries, workload.radius)
        knn = runner.run_knn(workload.queries, workload.k)
        result.add_row(
            prune=prune_mode,
            pivot=pivot_strategy,
            status=STATUS_OK,
            mrq_throughput=mrq.throughput,
            mrq_distances=mrq.distance_computations,
            mknn_throughput=knn.throughput,
            mknn_distances=knn.distance_computations,
        )
    return result


def ablation_two_stage(
    dataset_name: str = "color",
    num_queries: int = 256,
    radius_step: int = 8,
    memory_mb: Sequence[float] = (0.5, 2.0, 64.0),
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 12,
) -> ExperimentResult:
    """Ablation of the two-stage memory strategy.

    With ample memory the whole batch expands level-by-level in one go (no
    grouping); with constrained memory the two-stage strategy splits the batch
    into groups and the query still completes — whereas GPU-Tree, which lacks
    the strategy, deadlocks under the same constraint.
    """
    result = ExperimentResult(
        experiment="ablation-two-stage",
        title="Two-stage memory strategy under device-memory pressure",
    )
    card = cardinality or _scaled_cardinality(dataset_name, scale, None)
    dataset = get_dataset(dataset_name, card, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, radius_step=radius_step, seed=seed)
    for mem in memory_mb:
        spec = DeviceSpec(memory_bytes=int(mem * MiB))
        for method in ("GTS", "GPU-Tree"):
            runner = _build_runner(method, dataset, spec)
            build = runner.build()
            if build.failed:
                result.add_row(method=method, memory_mb=mem, status=build.status)
                continue
            res = runner.run_mrq(workload.queries, workload.radius)
            result.add_row(
                method=method,
                memory_mb=mem,
                status=res.status,
                throughput=res.throughput,
                peak_memory_mb=res.peak_memory_bytes / MiB,
            )
    return result
