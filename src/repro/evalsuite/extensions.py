"""Experiments that go beyond the paper's own tables and figures.

Two additions round out the evaluation:

* :func:`experiment_extended_baselines` widens the CPU comparison to the
  related-work methods of Section 2 (LAESA, List of Clusters, EPT, M-tree,
  GNAT) that the paper surveys but does not measure, confirming that GTS's
  advantage is not an artefact of the particular CPU competitors chosen;
* :func:`experiment_approximate_tradeoff` measures the recall / cost
  trade-off of the approximate extensions (:mod:`repro.approx`), the paper's
  stated future-work direction: beam-search descent at several widths and
  the learned leaf router at several leaf budgets, all against the exact GTS
  answers.

Both return the same :class:`~repro.evalsuite.reporting.ExperimentResult`
structure as the paper experiments, so the benchmark harness and the CLI
treat them identically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..approx import ApproximateGTS, LearnedLeafRouter, mean_knn_recall
from ..core.gts import GTS
from ..datasets import DEFAULT_CARDINALITIES, get_dataset
from ..gpusim.specs import DeviceSpec, MiB
from ..gpusim.timing import throughput_per_minute
from .reporting import ExperimentResult
from .runner import STATUS_OK, MethodRunner
from .workloads import make_workload

__all__ = ["experiment_extended_baselines", "experiment_approximate_tradeoff"]

#: CPU methods of the extended comparison, in presentation order.
EXTENDED_CPU_METHODS = ("BST", "MVPT", "EGNAT", "LAESA", "LC", "EPT", "M-tree", "GNAT")


def _scaled_cardinality(name: str, scale: float, override: Optional[dict]) -> int:
    if override and name in override:
        return int(override[name])
    return max(64, int(DEFAULT_CARDINALITIES[name] * scale))


def experiment_extended_baselines(
    datasets: Sequence[str] = ("tloc", "words"),
    methods: Sequence[str] = EXTENDED_CPU_METHODS + ("GTS",),
    k: int = 8,
    num_queries: int = 32,
    radius_step: int = 8,
    scale: float = 1.0,
    cardinalities: Optional[dict] = None,
    device_spec: Optional[DeviceSpec] = None,
    seed: int = 21,
) -> ExperimentResult:
    """Compare GTS with the full related-work CPU index family.

    Reports, per (dataset, method): construction time, index storage, MRQ and
    MkNNQ throughput and the number of distance computations per kNN batch.
    The expected shape mirrors the paper's Table 4 / Fig. 7 findings: the CPU
    indexes differ among themselves by small factors, while GTS's batched
    GPU execution wins by orders of magnitude.
    """
    result = ExperimentResult(
        experiment="extended-baselines",
        title="GTS vs the related-work CPU metric indexes (Section 2)",
    )
    for ds_name in datasets:
        dataset = get_dataset(ds_name, _scaled_cardinality(ds_name, scale, cardinalities), seed=seed)
        workload = make_workload(
            dataset, num_queries=num_queries, radius_step=radius_step, k=k, seed=seed
        )
        for method in methods:
            runner = MethodRunner(method, dataset, device_spec=device_spec)
            build = runner.build()
            if build.failed:
                result.add_row(dataset=ds_name, method=method, status=build.status)
                continue
            mrq = runner.run_mrq(workload.queries, workload.radius)
            knn = runner.run_knn(workload.queries, workload.k)
            result.add_row(
                dataset=ds_name,
                method=method,
                status=knn.status,
                build_time_s=build.sim_time,
                storage_mb=knn.storage_bytes / MiB,
                mrq_throughput=mrq.throughput,
                mknn_throughput=knn.throughput,
                mknn_distances=knn.distance_computations,
            )
    return result


def experiment_approximate_tradeoff(
    dataset_name: str = "color",
    beam_widths: Sequence[int] = (1, 2, 4, 8, 16),
    leaf_budgets: Sequence[int] = (1, 2, 4, 8),
    k: int = 8,
    num_queries: int = 32,
    num_training_queries: int = 32,
    node_capacity: int = 20,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 22,
) -> ExperimentResult:
    """Recall / cost trade-off of the approximate search extensions.

    One exact GTS index is built; the same query batch is answered exactly
    (the reference), by :class:`ApproximateGTS` at every ``beam_width`` and
    by :class:`LearnedLeafRouter` at every ``leaf_budget``.  Every row
    records the recall against the exact answers, the simulated device time,
    the distance computations and the throughput, so the expected shape is a
    monotone recall-vs-cost frontier approaching recall 1 as the budget
    grows.
    """
    result = ExperimentResult(
        experiment="approx-tradeoff",
        title="Approximate GTS: recall vs cost (beam search and learned router)",
    )
    card = cardinality or _scaled_cardinality(dataset_name, scale, None)
    dataset = get_dataset(dataset_name, card, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, k=k, seed=seed)
    index = GTS.build(dataset.objects, dataset.metric, node_capacity=node_capacity, seed=seed)

    def measure(label: str, parameter, answer_fn) -> tuple:
        dataset.metric.reset_counter()
        time_before = index.device.stats.sim_time
        answers = answer_fn()
        sim_time = index.device.stats.sim_time - time_before
        distances = dataset.metric.pair_count
        return answers, sim_time, distances

    exact_answers, exact_time, exact_distances = measure(
        "exact", None, lambda: index.knn_query_batch(workload.queries, workload.k)
    )
    result.add_row(
        strategy="exact",
        parameter=0,
        status=STATUS_OK,
        recall=1.0,
        sim_time_s=exact_time,
        throughput=throughput_per_minute(num_queries, exact_time),
        distances=exact_distances,
    )

    for width in beam_widths:
        approx = ApproximateGTS(index, beam_width=int(width))
        answers, sim_time, distances = measure(
            "beam", width, lambda: approx.knn_query_batch(workload.queries, workload.k)
        )
        result.add_row(
            strategy="beam",
            parameter=int(width),
            status=STATUS_OK,
            recall=mean_knn_recall(answers, exact_answers),
            sim_time_s=sim_time,
            throughput=throughput_per_minute(num_queries, sim_time),
            distances=distances,
        )

    training = dataset.sample_queries(num_training_queries, seed=seed + 1)
    for budget in leaf_budgets:
        router = LearnedLeafRouter(
            index, leaf_budget=int(budget), training_queries=training, seed=seed
        )
        answers, sim_time, distances = measure(
            "learned", budget, lambda: router.knn_query_batch(workload.queries, workload.k)
        )
        result.add_row(
            strategy="learned",
            parameter=int(budget),
            status=STATUS_OK,
            recall=mean_knn_recall(answers, exact_answers),
            sim_time_s=sim_time,
            throughput=throughput_per_minute(num_queries, sim_time),
            distances=distances,
        )
    return result
