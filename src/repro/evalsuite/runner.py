"""Experiment runner: build indexes, execute query batches, collect metrics.

The runner is the glue between the method registry (:mod:`repro.baselines`),
the dataset generators and the reporting layer.  Every operation produces a
:class:`MethodResult` carrying

* the *simulated* time (and queries/minute throughput) of the operation,
* the number of distance computations it needed,
* storage, peak device memory, recall (for approximate methods),
* a status of ``ok`` / ``oom`` / ``unsupported`` so that figures can show the
  same missing bars as the paper (e.g. EGNAT on T-Loc in Table 4, GPU-Tree at
  512 queries in Fig. 9).

Wall-clock time is irrelevant here — the simulated device clock is the
experiment's unit of account — so the runner is deliberately simple and
sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..baselines import METHOD_REGISTRY, SimilarityIndex, get_method
from ..exceptions import (
    BaselineError,
    DeviceMemoryError,
    HostMemoryError,
    MemoryDeadlockError,
    UnsupportedMetricError,
)
from ..gpusim.device import Device
from ..gpusim.specs import CPUSpec, DeviceSpec
from ..gpusim.timing import throughput_per_minute
from ..metrics.base import Metric

__all__ = ["MethodResult", "MethodRunner", "STATUS_OK", "STATUS_OOM", "STATUS_UNSUPPORTED"]

STATUS_OK = "ok"
STATUS_OOM = "oom"
STATUS_UNSUPPORTED = "unsupported"


@dataclass
class MethodResult:
    """Outcome of one (method, dataset, operation) measurement."""

    method: str
    dataset: str
    operation: str
    status: str = STATUS_OK
    sim_time: float = 0.0
    wall_time: float = 0.0
    throughput: float = 0.0
    storage_bytes: int = 0
    peak_memory_bytes: int = 0
    distance_computations: int = 0
    num_queries: int = 0
    recall: Optional[float] = None
    params: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status != STATUS_OK

    def as_dict(self) -> dict:
        data = {
            "method": self.method,
            "dataset": self.dataset,
            "operation": self.operation,
            "status": self.status,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "throughput": self.throughput,
            "storage_bytes": self.storage_bytes,
            "peak_memory_bytes": self.peak_memory_bytes,
            "distance_computations": self.distance_computations,
            "num_queries": self.num_queries,
            "recall": self.recall,
        }
        data.update(self.params)
        return data


class MethodRunner:
    """Builds one method over one dataset and measures its operations."""

    def __init__(
        self,
        method_name: str,
        dataset,
        device_spec: Optional[DeviceSpec] = None,
        cpu_spec: Optional[CPUSpec] = None,
        method_kwargs: Optional[dict] = None,
    ):
        if method_name not in METHOD_REGISTRY:
            raise BaselineError(f"unknown method {method_name!r}")
        self.method_name = method_name
        self.dataset = dataset
        self.device_spec = device_spec or DeviceSpec()
        self.cpu_spec = cpu_spec or CPUSpec()
        self.method_kwargs = dict(method_kwargs or {})
        self.index: Optional[SimilarityIndex] = None

    # ------------------------------------------------------------- plumbing
    def _instantiate(self) -> SimilarityIndex:
        factory = METHOD_REGISTRY[self.method_name]
        kwargs = dict(self.method_kwargs)
        if getattr(factory, "is_gpu", False):
            kwargs.setdefault("device", Device(self.device_spec))
        else:
            kwargs.setdefault("cpu_spec", self.cpu_spec)
        return factory(self.dataset.metric, **kwargs)

    def _result(self, operation: str, **kwargs) -> MethodResult:
        return MethodResult(
            method=self.method_name,
            dataset=self.dataset.name,
            operation=operation,
            **kwargs,
        )

    def _snapshot(self):
        stats = self.index.sim_stats
        return stats.copy()

    def _measure(self, operation: str, num_queries: int, fn, params: Optional[dict] = None) -> MethodResult:
        """Run ``fn`` and convert the stats delta into a MethodResult."""
        before = self._snapshot()
        pairs_before = self.dataset.metric.pair_count
        wall_start = time.perf_counter()
        try:
            payload = fn()
            status = STATUS_OK
        except (MemoryDeadlockError, DeviceMemoryError, HostMemoryError):
            payload = None
            status = STATUS_OOM
        except (UnsupportedMetricError, BaselineError):
            payload = None
            status = STATUS_UNSUPPORTED
        wall = time.perf_counter() - wall_start
        after = self._snapshot()
        delta = after.delta_since(before)
        result = self._result(
            operation,
            status=status,
            sim_time=delta.sim_time,
            wall_time=wall,
            throughput=throughput_per_minute(num_queries, delta.sim_time) if num_queries else 0.0,
            storage_bytes=self.index.storage_bytes if status == STATUS_OK else 0,
            peak_memory_bytes=after.peak_memory_bytes,
            distance_computations=self.dataset.metric.pair_count - pairs_before,
            num_queries=num_queries,
            params=dict(params or {}),
        )
        result.params["payload"] = payload
        return result

    # ------------------------------------------------------------ operations
    def build(self) -> MethodResult:
        """Instantiate and build the index, measuring construction cost."""
        factory = METHOD_REGISTRY[self.method_name]
        probe_kwargs = dict(self.method_kwargs)
        wall_start = time.perf_counter()
        pairs_before = self.dataset.metric.pair_count
        try:
            self.index = self._instantiate()
            if not type(self.index).supports_metric(self.dataset.metric):
                raise UnsupportedMetricError(
                    f"{self.method_name} does not support {self.dataset.metric.name}"
                )
            self.index.build(self.dataset.objects)
            status = STATUS_OK
        except (MemoryDeadlockError, DeviceMemoryError, HostMemoryError):
            status = STATUS_OOM
        except UnsupportedMetricError:
            status = STATUS_UNSUPPORTED
        wall = time.perf_counter() - wall_start
        if status != STATUS_OK:
            return self._result("build", status=status, wall_time=wall)
        stats = self.index.sim_stats
        return self._result(
            "build",
            status=STATUS_OK,
            sim_time=stats.sim_time,
            wall_time=wall,
            storage_bytes=self.index.storage_bytes,
            peak_memory_bytes=stats.peak_memory_bytes,
            distance_computations=self.dataset.metric.pair_count - pairs_before,
            params=dict(probe_kwargs),
        )

    def run_mrq(self, queries: Sequence, radius, params: Optional[dict] = None) -> MethodResult:
        """Measure one batch of metric range queries."""
        self._require_index()
        if not self.index.supports_range:
            return self._result("mrq", status=STATUS_UNSUPPORTED, num_queries=len(queries))
        return self._measure(
            "mrq",
            len(queries),
            lambda: self.index.range_query_batch(queries, radius),
            params={**(params or {}), "radius": float(np.mean(radius))},
        )

    def run_knn(
        self,
        queries: Sequence,
        k: int,
        ground_truth: Optional[list] = None,
        params: Optional[dict] = None,
    ) -> MethodResult:
        """Measure one batch of metric kNN queries (recall vs. ground truth)."""
        self._require_index()
        result = self._measure(
            "mknn",
            len(queries),
            lambda: self.index.knn_query_batch(queries, k),
            params={**(params or {}), "k": int(k)},
        )
        payload = result.params.get("payload")
        if ground_truth is not None and payload is not None:
            result.recall = compute_recall(payload, ground_truth)
        return result

    def run_stream_updates(self, num_updates: int, rng_seed: int = 71) -> MethodResult:
        """Measure streaming updates: remove one object, re-insert it, repeat."""
        self._require_index()
        rng = np.random.default_rng(rng_seed)

        def _do() -> None:
            for _ in range(num_updates):
                live = self.index.live_ids()
                victim = int(live[rng.integers(0, len(live))])
                obj = self.index._objects[victim]
                self.index.delete(victim)
                self.index.insert(obj)

        result = self._measure("stream-update", 0, _do, params={"num_updates": num_updates})
        if result.status == STATUS_OK and num_updates:
            result.throughput = num_updates / result.sim_time if result.sim_time > 0 else float("inf")
            result.params["time_per_update"] = result.sim_time / num_updates
        return result

    def run_batch_update(self, fraction: float = 0.1, rng_seed: int = 73) -> MethodResult:
        """Measure a bulk update: remove ``fraction`` of the objects, re-insert them."""
        self._require_index()
        rng = np.random.default_rng(rng_seed)
        live = self.index.live_ids()
        count = max(1, int(len(live) * fraction))
        victims = rng.choice(live, size=count, replace=False)
        objects = [self.index._objects[int(v)] for v in victims]

        def _do() -> None:
            self.index.batch_update(inserts=objects, deletes=[int(v) for v in victims])

        result = self._measure("batch-update", 0, _do, params={"fraction": fraction, "count": count})
        if result.status == STATUS_OK and count:
            result.params["time_per_update"] = result.sim_time / count
        return result

    def _require_index(self) -> None:
        if self.index is None:
            raise BaselineError("call build() before running queries")


def compute_recall(answers: list, ground_truth: list) -> float:
    """Mean fraction of true kNN ids recovered per query (ties by id ignored)."""
    if not ground_truth:
        return 1.0
    scores = []
    for got, truth in zip(answers, ground_truth):
        truth_ids = {int(i) for i, _ in truth}
        if not truth_ids:
            scores.append(1.0)
            continue
        got_ids = {int(i) for i, _ in got}
        scores.append(len(got_ids & truth_ids) / len(truth_ids))
    return float(np.mean(scores))
