"""repro — reproduction of "GTS: GPU-based Tree Index for Fast Similarity Search".

The package implements the GTS index and everything it is evaluated against
in the SIGMOD 2024 paper, on top of a simulated GPU substrate:

* :mod:`repro.metrics` — distance metrics for general metric spaces;
* :mod:`repro.gpusim` — the simulated GPU / CPU execution substrates;
* :mod:`repro.core` — the GTS index (construction, batch MRQ/MkNNQ, updates,
  cost model);
* :mod:`repro.baselines` — the CPU and GPU competitors of the paper;
* :mod:`repro.approx` — approximate search on the GTS tree (beam search and
  a learned leaf router), the paper's stated follow-up direction;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's five datasets;
* :mod:`repro.evalsuite` — workloads, runners and reporting for every table
  and figure of the paper's evaluation;
* :mod:`repro.service` — the concurrent query-serving layer (micro-batching
  scheduler, open-loop client workloads, latency reports);
* :mod:`repro.shard` — the multi-device sharded index (scatter-gather
  scale-out across several simulated GPUs);
* :mod:`repro.tier` — the out-of-core tiered memory subsystem (host-resident
  blocked object store + device-pool demand pager), for datasets larger
  than device memory.

Quickstart::

    import numpy as np
    from repro import GTS, EuclideanDistance

    points = np.random.default_rng(0).normal(size=(10_000, 2))
    index = GTS.build(points, EuclideanDistance(), node_capacity=20)
    print(index.knn_query(points[0], k=5))
"""

from .approx import ApproximateGTS, LearnedLeafRouter
from .core import GTS, MultiColumnGTS
from .core.searchcommon import PruneMode
from .exceptions import (
    BaselineError,
    ConstructionError,
    DatasetError,
    DeviceError,
    DeviceMemoryError,
    HostMemoryError,
    IndexError_,
    KernelError,
    MemoryDeadlockError,
    MetricError,
    QueryError,
    ReproError,
    UnsupportedMetricError,
    UpdateError,
)
from .exceptions import MemoryLeakError, TierError
from .gpusim import CPUExecutor, CPUSpec, Device, DeviceSpec
from .shard import ShardedGTS, make_assignment_policy
from .tier import BlockPager, TierConfig, TieredObjectStore, make_eviction_policy
from .service import (
    DeadlineAwarePolicy,
    GreedyBatchPolicy,
    GTSService,
    WorkloadSpec,
    generate_workload,
)
from .metrics import (
    AngularDistance,
    ChebyshevDistance,
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    ManhattanDistance,
    Metric,
    MinkowskiDistance,
    get_metric,
)

__version__ = "1.0.0"

__all__ = [
    "GTS",
    "MultiColumnGTS",
    "ShardedGTS",
    "make_assignment_policy",
    "TierConfig",
    "TieredObjectStore",
    "BlockPager",
    "make_eviction_policy",
    "ApproximateGTS",
    "LearnedLeafRouter",
    "PruneMode",
    "GTSService",
    "GreedyBatchPolicy",
    "DeadlineAwarePolicy",
    "WorkloadSpec",
    "generate_workload",
    "Device",
    "DeviceSpec",
    "CPUExecutor",
    "CPUSpec",
    "Metric",
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "AngularDistance",
    "EditDistance",
    "HammingDistance",
    "get_metric",
    "ReproError",
    "MetricError",
    "DeviceError",
    "DeviceMemoryError",
    "HostMemoryError",
    "MemoryDeadlockError",
    "MemoryLeakError",
    "TierError",
    "KernelError",
    "IndexError_",
    "ConstructionError",
    "UpdateError",
    "QueryError",
    "DatasetError",
    "BaselineError",
    "UnsupportedMetricError",
    "__version__",
]
