"""Host-resident blocked object store and its paged device facade.

:class:`TieredObjectStore` keeps the primary copy of every indexed object in
(simulated) host memory and partitions the id space into fixed-size blocks —
contiguous id ranges sized so one block holds roughly
``TierConfig.block_bytes`` of payload.  Blocks are the unit the
:class:`~repro.tier.pager.BlockPager` stages into device memory.

:class:`PagedObjects` is the sequence facade a tiered
:class:`~repro.core.gts.GTS` hands to the construction and query algorithms
in place of the raw object list.  Every object access faults the owning
block through the pager (charging transfer time on a miss), which is what
lets the existing level-synchronous kernels run unmodified over a dataset
that does not fit on the device.  Host-side consumers (``get_object``,
persistence, cost-model sampling) read :attr:`PagedObjects.raw` instead —
the data lives in host RAM, so those reads cost no device traffic.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.construction import objects_nbytes
from ..core.objectstore import gather_rows
from ..exceptions import TierError

__all__ = ["TieredObjectStore", "PagedObjects"]


class TieredObjectStore:
    """Blocked view over a host-memory object list.

    Blocks are contiguous object-id ranges: ``objects_per_block`` is derived
    from the average payload size of the initial store, so array datasets
    get exactly ``block_bytes``-sized blocks and variable-length datasets
    (strings) get blocks of approximately that size.  Appends extend the
    tail block in place; ids never move between blocks, so the block map
    survives index rebuilds unchanged.
    """

    def __init__(self, objects: Sequence, block_bytes: int):
        if len(objects) == 0:
            raise TierError("cannot build a tiered store over an empty object collection")
        if block_bytes <= 0:
            raise TierError(f"block size must be positive, got {block_bytes}")
        self._objects = objects
        self.block_bytes = int(block_bytes)
        total = max(1, objects_nbytes(objects))
        per_object = max(1, math.ceil(total / len(objects)))
        self.objects_per_block = max(1, self.block_bytes // per_object)
        self._block_nbytes_cache: dict[int, int] = {}

    # ------------------------------------------------------------- geometry
    @property
    def raw(self) -> Sequence:
        """The underlying host-memory object sequence."""
        return self._objects

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def num_blocks(self) -> int:
        """Number of blocks currently covering the id space."""
        return (len(self._objects) + self.objects_per_block - 1) // self.objects_per_block

    def block_of(self, obj_id: int) -> int:
        """Block that owns ``obj_id``."""
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects):
            raise TierError(f"object id {obj_id} outside the store (size {len(self._objects)})")
        return obj_id // self.objects_per_block

    def block_object_ids(self, block_id: int) -> range:
        """The contiguous id range a block covers."""
        block_id = int(block_id)
        if block_id < 0 or block_id >= self.num_blocks:
            raise TierError(f"unknown block id {block_id} (store has {self.num_blocks})")
        start = block_id * self.objects_per_block
        return range(start, min(start + self.objects_per_block, len(self._objects)))

    def block_nbytes(self, block_id: int) -> int:
        """Payload bytes of one block (cached; tail block recomputed on append)."""
        block_id = int(block_id)
        cached = self._block_nbytes_cache.get(block_id)
        if cached is not None:
            return cached
        ids = self.block_object_ids(block_id)
        nbytes = max(1, objects_nbytes(self._objects, list(ids)))
        # the tail block can still grow; only full blocks are safe to cache
        if len(ids) == self.objects_per_block:
            self._block_nbytes_cache[block_id] = nbytes
        return nbytes

    def blocks_for(self, obj_ids) -> np.ndarray:
        """Unique owning blocks of a batch of object ids (ascending)."""
        ids = np.asarray(obj_ids, dtype=np.int64)
        if len(ids) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(ids // self.objects_per_block)

    # ------------------------------------------------------------- mutation
    def append(self, obj) -> int:
        """Append one object to the host store; returns the tail block id."""
        if isinstance(self._objects, np.ndarray):
            raise TierError("cannot append to an array-backed store; use a list store")
        row_nbytes_before = getattr(self._objects, "row_nbytes", None)
        self._objects.append(obj)
        if row_nbytes_before is not None and self._objects.row_nbytes != row_nbytes_before:
            # a columnar store promoted its dtype to hold the new row
            # exactly: every block's payload size changed
            self._block_nbytes_cache.clear()
        tail = self.block_of(len(self._objects) - 1)
        self._block_nbytes_cache.pop(tail, None)
        return tail


class PagedObjects:
    """Sequence facade that faults object blocks through a block pager.

    Integer indexing (the access pattern of ``take_objects`` and the
    construction mapping phase) routes through
    :meth:`~repro.tier.pager.BlockPager.access`, so hits cost nothing and
    misses charge the H2D transfer on the simulated device.  The returned
    objects are the host objects themselves — the simulation only accounts
    for the staging traffic, it never copies data for real.
    """

    #: Gathers fault device blocks, so callers should present candidate ids
    #: in per-query sorted order (block-coalesced access).
    coalesced_gather = True

    def __init__(self, store: TieredObjectStore, pager):
        self.store = store
        self.pager = pager

    # ------------------------------------------------------------ sequence
    def __len__(self) -> int:
        return len(self.store)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        obj_id = int(index)
        if obj_id < 0:
            obj_id += len(self)
        self.pager.access(self.store.block_of(obj_id))
        return self.store.raw[obj_id]

    def __iter__(self) -> Iterator:
        for obj_id in range(len(self)):
            yield self[obj_id]

    def gather(self, obj_ids) -> Sequence:
        """Columnar block gather: fault the owning blocks, then gather rows.

        The device-side accounting is identical to indexing the facade once
        per id — one logical pager access per object — but consecutive
        accesses to the same block collapse into a single policy touch with
        the remaining accesses credited as hits in bulk, and the host-side
        row materialisation is one columnar gather instead of a per-object
        Python loop.  This is the fast path ``take_objects`` rides for every
        level-wide candidate gather of a tiered index.
        """
        ids = np.asarray(obj_ids, dtype=np.int64)
        if len(ids) == 0:
            return gather_rows(self.store.raw, ids)
        lo, hi = int(ids.min()), int(ids.max())
        if lo < 0 or hi >= len(self.store):
            raise TierError(
                f"object id {lo if lo < 0 else hi} outside the store "
                f"(size {len(self.store)})"
            )
        blocks = ids // self.store.objects_per_block
        change = np.flatnonzero(np.diff(blocks)) + 1
        run_starts = np.concatenate(([0], change))
        run_lengths = np.diff(np.concatenate((run_starts, [len(blocks)])))
        for start, length in zip(run_starts.tolist(), run_lengths.tolist()):
            self.pager.access_counted(int(blocks[start]), length)
        return gather_rows(self.store.raw, ids)

    # ----------------------------------------------------------- host-side
    @property
    def raw(self) -> Sequence:
        """Host-memory view (no device faulting) for host-side readers."""
        return self.store.raw

    def append(self, obj) -> None:
        """Append to the host store; stale resident blocks are invalidated.

        Normally only the tail block can be stale, but a columnar store may
        promote its dtype to hold the new row exactly — a host-side rewrite
        of *every* row — in which case every resident block's device copy
        (and its byte accounting) is stale and must be dropped.
        """
        row_nbytes_before = getattr(self.store.raw, "row_nbytes", None)
        tail = self.store.append(obj)
        if (
            row_nbytes_before is not None
            and getattr(self.store.raw, "row_nbytes", None) != row_nbytes_before
        ):
            for block_id in list(self.pager.resident_blocks):
                self.pager.invalidate(block_id)
        else:
            self.pager.invalidate(tail)

    # ------------------------------------------------------------ prefetch
    @property
    def prefetch_enabled(self) -> bool:
        """Whether lookahead prefetch is on (callers can skip building the
        candidate-id argument when it is not)."""
        return self.pager.prefetch_enabled

    def prefetch_ids(self, obj_ids) -> None:
        """Stage the owning blocks of ``obj_ids`` in one coalesced transfer.

        Called by the query engine with its first-stage candidate lists
        (surviving leaves / next-level pivots); a no-op unless the tier
        config enabled prefetching.
        """
        if not self.pager.prefetch_enabled:
            return
        self.pager.prefetch(self.store.blocks_for(obj_ids))
