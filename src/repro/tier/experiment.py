"""The memory-tiering experiment (out-of-core GTS vs. device-memory budget).

:func:`experiment_memory_tiering` answers the question the tier subsystem
exists for: *what does it cost to serve a dataset from a device pool smaller
than the dataset?*  It sweeps the device-memory cap (as a fraction of the
dataset's payload bytes, 100% → 10%) × the eviction policies, plus a
prefetch on/off pair, and for every cell:

* verifies the tiered answers (range **and** kNN) are identical to a
  fully-resident single-device GTS over the same data — tiering must be a
  pure performance trade, never a correctness one;
* reports the pager's hit rate, eviction counts, and the H2D/D2H transfer
  seconds attributed in ``ExecutionStats.transfer_seconds`` (``pager-h2d``
  / ``pager-d2h`` / ``results-d2h``);
* reports the per-pool memory high-water marks (tree vs. paged blocks) so
  the row shows what actually pinned device memory.

The block size is chosen so the dataset spans ~a few dozen blocks with only
a handful of objects per block, which keeps the pin-aware policy's
pivot-block set a strict subset of all blocks (pivots are ~1/Nc of the
objects).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.construction import objects_nbytes
from ..core.gts import GTS
from ..datasets import DEFAULT_CARDINALITIES, get_dataset
from ..evalsuite.reporting import ExperimentResult
from ..evalsuite.workloads import make_workload
from ..gpusim.device import Device
from ..gpusim.specs import DeviceSpec
from ..gpusim.timing import throughput_per_minute
from .config import TierConfig
from .pager import D2H_LABEL, H2D_LABEL, PAGER_POOL

__all__ = ["experiment_memory_tiering"]


def _measure_queries(index: GTS, queries, radius, k):
    """One MRQ batch + one MkNNQ batch, timed on the index's device."""
    before = index.device.stats.sim_time
    range_answers = index.range_query_batch(queries, radius)
    mrq_time = index.device.stats.sim_time - before
    before = index.device.stats.sim_time
    knn_answers = index.knn_query_batch(queries, k)
    knn_time = index.device.stats.sim_time - before
    return range_answers, mrq_time, knn_answers, knn_time


def experiment_memory_tiering(
    dataset_name: str = "tloc",
    cap_fractions: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
    evictions: Sequence[str] = ("lru", "clock", "pinned-lru"),
    num_queries: int = 64,
    k: int = 10,
    node_capacity: int = 20,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep device-memory caps × eviction policies; verify exactness.

    Every tiered row is checked against the fully-resident reference
    (``correct`` column); the prefetch pair at the tightest cap shows what
    coalescing the first-stage candidate lists' faults buys.
    """
    if cardinality is None:
        cardinality = max(256, int(DEFAULT_CARDINALITIES[dataset_name] * scale))
    dataset = get_dataset(dataset_name, cardinality=cardinality, seed=seed)
    workload = make_workload(dataset, num_queries=num_queries, k=k, seed=seed)
    dataset_bytes = max(1, objects_nbytes(dataset.objects))
    # a handful of objects per block: with pivots ~1/Nc of the objects, small
    # blocks keep the pin-aware policy's pivot-block set a strict subset of
    # all blocks (big blocks would each contain some pivot, pinning all)
    per_object = max(1, dataset_bytes // max(1, len(dataset.objects)))
    block_bytes = max(64, per_object * max(2, node_capacity // 4))

    result = ExperimentResult(
        experiment="memory-tiering",
        title=f"Out-of-core GTS on {dataset.name} "
        f"({cardinality} objects, {dataset_bytes} payload bytes, "
        f"{num_queries} queries)",
    )

    # --- fully-resident reference: exactness oracle and slowdown baseline
    reference = GTS.build(
        dataset.objects,
        dataset.metric,
        node_capacity=node_capacity,
        device=Device(DeviceSpec()),
        seed=seed,
    )
    ref_before = reference.device.snapshot()
    ref_range, ref_mrq_time, ref_knn, ref_knn_time = _measure_queries(
        reference, workload.queries, workload.radius, workload.k
    )
    ref_delta = reference.device.stats.delta_since(ref_before)
    ref_pools = dict(reference.device.stats.pool_peak_bytes)
    reference.close()
    result.add_row(
        eviction="resident",
        cap_fraction=1.0,
        budget_bytes=dataset_bytes,
        prefetch=False,
        mrq_throughput=throughput_per_minute(num_queries, ref_mrq_time),
        mknn_throughput=throughput_per_minute(num_queries, ref_knn_time),
        knn_slowdown=1.0,
        hit_rate=1.0,
        evictions=0,
        h2d_seconds=0.0,
        d2h_seconds=ref_delta.transfer_seconds.get("results-d2h", 0.0),
        tree_peak_bytes=ref_pools.get("tree", 0),
        pager_peak_bytes=0,
        correct=True,
        status="ok",
    )

    def run_cell(eviction: str, frac: float, prefetch: bool) -> None:
        budget = max(block_bytes, int(dataset_bytes * frac))
        tier = TierConfig(
            memory_budget_bytes=budget,
            block_bytes=block_bytes,
            eviction=eviction,
            prefetch=prefetch,
        )
        index = GTS.build(
            dataset.objects,
            dataset.metric,
            node_capacity=node_capacity,
            device=Device(DeviceSpec()),
            seed=seed,
            tier=tier,
        )
        # measure steady-state query traffic, not the build's streaming pass
        query_before = index.device.snapshot()
        index.pager.stats.reset()
        range_answers, mrq_time, knn_answers, knn_time = _measure_queries(
            index, workload.queries, workload.radius, workload.k
        )
        delta = index.device.stats.delta_since(query_before)
        pager = index.pager.stats
        correct = range_answers == ref_range and knn_answers == ref_knn
        result.add_row(
            eviction=eviction,
            cap_fraction=frac,
            budget_bytes=budget,
            prefetch=prefetch,
            mrq_throughput=throughput_per_minute(num_queries, mrq_time),
            mknn_throughput=throughput_per_minute(num_queries, knn_time),
            knn_slowdown=knn_time / ref_knn_time if ref_knn_time > 0 else float("inf"),
            hit_rate=pager.hit_rate,
            evictions=pager.evictions,
            h2d_seconds=delta.transfer_seconds.get(H2D_LABEL, 0.0),
            d2h_seconds=delta.transfer_seconds.get(D2H_LABEL, 0.0)
            + delta.transfer_seconds.get("results-d2h", 0.0),
            tree_peak_bytes=index.device.stats.pool_peak_bytes.get("tree", 0),
            pager_peak_bytes=index.device.stats.pool_peak_bytes.get(PAGER_POOL, 0),
            prefetched_blocks=pager.prefetched_blocks,
            forced_evictions=pager.forced_evictions,
            correct=correct,
            status="ok" if correct else "mismatch",
        )
        index.close()

    for eviction in evictions:
        for frac in cap_fractions:
            run_cell(eviction, float(frac), prefetch=False)
    # prefetch ablation at the tightest cap: coalesced staging vs. demand faults
    tightest = float(min(cap_fractions))
    run_cell("lru", tightest, prefetch=True)

    result.notes = (
        "every tiered row's answers are verified against the fully-resident "
        "reference; h2d/d2h seconds come from ExecutionStats.transfer_seconds "
        "(pager traffic + result gathering), tree/pager peaks from the "
        "per-pool high-water marks"
    )
    return result
