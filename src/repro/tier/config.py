"""Configuration of the tiered host↔device memory subsystem.

A :class:`TierConfig` is the single knob bundle that turns a fully-resident
GTS index into an out-of-core one: the object store stays in (simulated)
host memory, partitioned into fixed-size blocks, and a bounded device-memory
pool stages blocks on demand (see DESIGN.md §7).  The config round-trips
through :meth:`as_dict` / :meth:`from_dict` so persisted indexes remember
how they were tiered.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..exceptions import TierError

__all__ = ["TierConfig", "DEFAULT_BLOCK_BYTES", "DEFAULT_FAULT_LATENCY"]

#: Default object-block size.  Small enough that the stand-in datasets span
#: dozens of blocks, large enough that per-block transfer latency amortises.
DEFAULT_BLOCK_BYTES = 16 * 1024

#: Fixed per-fault transaction cost in simulated seconds (PCIe round-trip
#: plus driver overhead).  This is what makes hit rates — and coalesced
#: prefetch transfers — matter beyond raw bytes/bandwidth.
DEFAULT_FAULT_LATENCY = 15e-6


@dataclass(frozen=True)
class TierConfig:
    """How a tiered index splits and pages its object store.

    Parameters
    ----------
    memory_budget_bytes:
        Byte budget of the device-resident block pool.  Must fit at least
        one block.
    block_bytes:
        Target size of one host-memory object block.
    eviction:
        Eviction policy name: ``"lru"``, ``"clock"`` or ``"pinned-lru"``
        (the pin-aware policy that refuses to evict blocks holding the
        tree's pivot objects while any other victim exists).
    prefetch:
        When True, the query engine's first-stage candidate lists drive a
        lookahead prefetch: all blocks a leaf-verification (or pivot) pass
        will touch are staged in one coalesced transfer before the kernel
        runs, paying the fault latency once instead of per miss.
    fault_latency:
        Simulated seconds of fixed cost per fault/prefetch transaction.
    """

    memory_budget_bytes: int
    block_bytes: int = DEFAULT_BLOCK_BYTES
    eviction: str = "lru"
    prefetch: bool = False
    fault_latency: float = DEFAULT_FAULT_LATENCY

    def __post_init__(self) -> None:
        if self.memory_budget_bytes <= 0:
            raise TierError(
                f"tier memory budget must be positive, got {self.memory_budget_bytes}"
            )
        if self.block_bytes <= 0:
            raise TierError(f"tier block size must be positive, got {self.block_bytes}")
        if self.memory_budget_bytes < self.block_bytes:
            raise TierError(
                f"tier memory budget ({self.memory_budget_bytes} B) must hold at "
                f"least one block ({self.block_bytes} B)"
            )
        if self.fault_latency < 0:
            raise TierError(f"fault latency must be non-negative, got {self.fault_latency}")

    def with_budget(self, memory_budget_bytes: int) -> "TierConfig":
        """Return a copy with a different device-pool budget."""
        return replace(self, memory_budget_bytes=int(memory_budget_bytes))

    def as_dict(self) -> dict:
        """Plain-dict form (persisted inside index archives)."""
        return {
            "memory_budget_bytes": int(self.memory_budget_bytes),
            "block_bytes": int(self.block_bytes),
            "eviction": self.eviction,
            "prefetch": bool(self.prefetch),
            "fault_latency": float(self.fault_latency),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TierConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        return cls(
            memory_budget_bytes=int(data["memory_budget_bytes"]),
            block_bytes=int(data.get("block_bytes", DEFAULT_BLOCK_BYTES)),
            eviction=str(data.get("eviction", "lru")),
            prefetch=bool(data.get("prefetch", False)),
            fault_latency=float(data.get("fault_latency", DEFAULT_FAULT_LATENCY)),
        )
