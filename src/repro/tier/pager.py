"""Demand pager staging host-memory object blocks into a device pool.

The :class:`BlockPager` owns a bounded region of simulated device memory
(allocated from the device's ``"pager"`` pool) and fills it with object
blocks on demand:

* an **access** to a resident block is a hit — no device traffic, the
  eviction policy is touched;
* a **miss** evicts victims until the block fits, then charges one H2D
  transfer (``TierConfig.fault_latency`` + bytes/bandwidth) and allocates
  the block in the pool;
* a **prefetch** stages a whole candidate set in one coalesced transaction
  (one latency for all blocks), which is where the lookahead driven by the
  two-stage search's first-stage candidate lists earns its keep;
* an **invalidation** (a host-side append made a resident copy stale) drops
  the block without writeback — the host copy is the newer one.  A block a
  device kernel wrote back (none today; the object store is read-only on
  device) would instead be a D2H writeback, which the stats track.

Eviction is pluggable: LRU, CLOCK (second chance), and ``pinned-lru`` — a
pin-aware LRU that never evicts blocks holding the tree's pivot objects
while any unpinned victim exists.  Pivot blocks are touched at every level
of every descent, so protecting them is the single highest-value hint the
index can give the pager.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from ..exceptions import DeviceMemoryError, TierError
from ..gpusim.device import Allocation, Device
from .config import TierConfig
from .store import TieredObjectStore

__all__ = [
    "BlockPager",
    "PagerStats",
    "EvictionPolicy",
    "LRUPolicy",
    "ClockPolicy",
    "PinnedLRUPolicy",
    "EVICTION_POLICIES",
    "make_eviction_policy",
    "PAGER_POOL",
    "H2D_LABEL",
    "D2H_LABEL",
]

#: Device memory pool the pager's block allocations are charged under.
PAGER_POOL = "pager"

#: ``ExecutionStats.transfer_seconds`` keys the pager attributes traffic to.
H2D_LABEL = "pager-h2d"
D2H_LABEL = "pager-d2h"


@dataclass
class PagerStats:
    """Counters describing the pager's behaviour since creation/reset."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: evictions where the pin-aware policy had to sacrifice a pinned block
    forced_evictions: int = 0
    #: stale resident copies dropped after a host-side append
    invalidations: int = 0
    #: dirty blocks written back device→host on eviction
    writebacks: int = 0
    prefetched_blocks: int = 0
    #: hits on blocks that a prefetch (rather than a demand fault) staged
    prefetch_hits: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the device pool (1.0 when idle)."""
        total = self.accesses
        return self.hits / total if total else 1.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "forced_evictions": self.forced_evictions,
            "invalidations": self.invalidations,
            "writebacks": self.writebacks,
            "prefetched_blocks": self.prefetched_blocks,
            "prefetch_hits": self.prefetch_hits,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "h2d_seconds": self.h2d_seconds,
            "d2h_seconds": self.d2h_seconds,
        }

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0.0 if isinstance(getattr(self, name), float) else 0)


class EvictionPolicy:
    """Victim selection over the set of resident blocks."""

    name = "abstract"
    #: whether :meth:`victim` consults the pinned-block set
    pin_aware = False

    def admit(self, block_id: int) -> None:
        """A block became resident."""
        raise NotImplementedError

    def touch(self, block_id: int) -> None:
        """A resident block was accessed."""
        raise NotImplementedError

    def forget(self, block_id: int) -> None:
        """A block left the pool (evicted or invalidated)."""
        raise NotImplementedError

    def victim(self, pinned: Set[int], avoid: Set[int]) -> Optional[int]:
        """Pick the next block to evict.

        ``pinned`` is advisory (only pin-aware policies consult it);
        ``avoid`` is mandatory — blocks mid-admission during a coalesced
        prefetch must not be chosen.  Returns None when no block is
        evictable.
        """
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used block (ignores pins)."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def admit(self, block_id: int) -> None:
        self._order[block_id] = None

    def touch(self, block_id: int) -> None:
        self._order.move_to_end(block_id)

    def forget(self, block_id: int) -> None:
        self._order.pop(block_id, None)

    def victim(self, pinned: Set[int], avoid: Set[int]) -> Optional[int]:
        for block_id in self._order:
            if block_id not in avoid:
                return block_id
        return None


class PinnedLRUPolicy(LRUPolicy):
    """LRU that never evicts pinned (tree/pivot) blocks while a choice exists.

    When every resident block is pinned the policy degrades to plain LRU
    rather than deadlocking; the pager counts those as ``forced_evictions``.
    """

    name = "pinned-lru"
    pin_aware = True

    def victim(self, pinned: Set[int], avoid: Set[int]) -> Optional[int]:
        fallback = None
        for block_id in self._order:
            if block_id in avoid:
                continue
            if block_id not in pinned:
                return block_id
            if fallback is None:
                fallback = block_id
        return fallback


class ClockPolicy(EvictionPolicy):
    """CLOCK / second-chance eviction: one reference bit per resident block."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[int] = []
        self._ref: Dict[int, bool] = {}
        self._hand = 0

    def admit(self, block_id: int) -> None:
        self._ring.append(block_id)
        self._ref[block_id] = True

    def touch(self, block_id: int) -> None:
        self._ref[block_id] = True

    def forget(self, block_id: int) -> None:
        if block_id in self._ref:
            del self._ref[block_id]
            index = self._ring.index(block_id)
            self._ring.pop(index)
            if index < self._hand:
                self._hand -= 1
            if self._ring:
                self._hand %= len(self._ring)
            else:
                self._hand = 0

    def victim(self, pinned: Set[int], avoid: Set[int]) -> Optional[int]:
        if not self._ring:
            return None
        # two sweeps: the first clears reference bits, the second must find a
        # victim unless every block is in ``avoid``
        for _ in range(2 * len(self._ring)):
            block_id = self._ring[self._hand]
            self._hand = (self._hand + 1) % len(self._ring)
            if block_id in avoid:
                continue
            if self._ref.get(block_id, False):
                self._ref[block_id] = False
                continue
            return block_id
        return None


EVICTION_POLICIES = {
    "lru": LRUPolicy,
    "clock": ClockPolicy,
    "pinned-lru": PinnedLRUPolicy,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Instantiate a registered eviction policy by name."""
    key = name.strip().lower().replace("_", "-")
    try:
        return EVICTION_POLICIES[key]()
    except KeyError:
        raise TierError(
            f"unknown eviction policy {name!r}; available: {', '.join(sorted(EVICTION_POLICIES))}"
        ) from None


class BlockPager:
    """Bounded device-memory pool of staged object blocks."""

    def __init__(self, device: Device, store: TieredObjectStore, config: TierConfig):
        self.device = device
        self.store = store
        self.config = config
        self.budget_bytes = int(config.memory_budget_bytes)
        self.policy = make_eviction_policy(config.eviction)
        self.prefetch_enabled = bool(config.prefetch)
        self.stats = PagerStats()
        self._resident: Dict[int, Allocation] = {}
        self._resident_bytes = 0
        self._dirty: Set[int] = set()
        self._prefetched: Set[int] = set()
        self._pins: Set[int] = set()

    # ------------------------------------------------------------ inspection
    @property
    def resident_bytes(self) -> int:
        """Bytes of blocks currently staged in the device pool."""
        return self._resident_bytes

    @property
    def resident_blocks(self) -> list[int]:
        """Ids of the blocks currently staged (ascending)."""
        return sorted(self._resident)

    @property
    def pinned_blocks(self) -> Set[int]:
        """Blocks the pin-aware policy protects (holders of tree pivots)."""
        return set(self._pins)

    def is_resident(self, block_id: int) -> bool:
        return int(block_id) in self._resident

    # ------------------------------------------------------------------ pins
    def set_pins(self, block_ids: Iterable[int]) -> None:
        """Replace the pinned-block set (called after every (re)build/swap)."""
        self._pins = {int(b) for b in block_ids}

    def add_pins(self, block_ids: Iterable[int]) -> None:
        """Widen the pinned-block set without dropping the existing pins.

        Used by the incremental maintenance subsystem while a generation
        rebuild is in flight: descents still walk the old tree (its pivot
        blocks must stay protected) while construction keeps re-touching the
        replacement tree's freshly chosen pivots.  The swap narrows the set
        back via :meth:`set_pins`.
        """
        self._pins |= {int(b) for b in block_ids}

    # ---------------------------------------------------------------- faults
    def access(self, block_id: int) -> bool:
        """Fault ``block_id`` resident if needed; returns True on a hit."""
        block_id = int(block_id)
        if block_id in self._resident:
            self.stats.hits += 1
            if block_id in self._prefetched:
                self.stats.prefetch_hits += 1
                self._prefetched.discard(block_id)
            self.policy.touch(block_id)
            return True
        self.stats.misses += 1
        nbytes = self.store.block_nbytes(block_id)
        self._make_room(nbytes, avoid=set())
        # allocate before charging the copy: a device-level OOM (other pools
        # squeezing the pager) must not leave a phantom transfer in the stats
        self._admit(block_id, nbytes)
        elapsed = self.device.transfer_to_device(
            nbytes, label=H2D_LABEL, latency=self.config.fault_latency
        )
        self.stats.bytes_h2d += nbytes
        self.stats.h2d_seconds += elapsed
        return False

    def access_counted(self, block_id: int, count: int) -> bool:
        """Fault once for a run of ``count`` consecutive same-block accesses.

        Behaviourally identical to calling :meth:`access` ``count`` times in
        a row: after the first access the block is resident and nothing else
        intervenes, so the remaining ``count - 1`` accesses would each be
        plain hits whose policy touches are no-ops.  They are credited to the
        hit counter in bulk, which is what lets a columnar gather replace the
        per-object access loop without changing any pager statistic.
        """
        hit = self.access(block_id)
        if count > 1:
            self.stats.hits += count - 1
        return hit

    def prefetch(self, block_ids: Iterable[int]) -> int:
        """Stage the missing blocks of a candidate set in one transaction.

        All staged bytes share a single ``fault_latency`` charge.  Blocks
        that cannot fit (the rest of the set already fills the pool) are
        skipped — they will fault on demand.  Returns how many blocks were
        staged.
        """
        missing = [int(b) for b in block_ids if int(b) not in self._resident]
        if not missing:
            return 0
        staged: list[tuple[int, int]] = []
        protected: Set[int] = set()
        total = 0
        for block_id in missing:
            nbytes = self.store.block_nbytes(block_id)
            if not self._make_room(nbytes, avoid=protected, best_effort=True):
                continue
            try:
                self._admit(block_id, nbytes)
            except DeviceMemoryError:
                # other pools squeezed the device below our budget: prefetch
                # is best-effort, the block will fault on demand instead
                continue
            protected.add(block_id)
            staged.append((block_id, nbytes))
            total += nbytes
        if not staged:
            return 0
        elapsed = self.device.transfer_to_device(
            total, label=H2D_LABEL, latency=self.config.fault_latency
        )
        self.stats.bytes_h2d += total
        self.stats.h2d_seconds += elapsed
        self.stats.prefetched_blocks += len(staged)
        self._prefetched.update(block_id for block_id, _ in staged)
        return len(staged)

    # -------------------------------------------------------------- eviction
    def _admit(self, block_id: int, nbytes: int) -> None:
        self._resident[block_id] = self.device.allocate(
            nbytes, label=f"tier-block-{block_id}", pool=PAGER_POOL
        )
        self._resident_bytes += nbytes
        self.policy.admit(block_id)

    def _make_room(self, nbytes: int, avoid: Set[int], best_effort: bool = False) -> bool:
        """Evict until ``nbytes`` fit inside the budget; True when they do."""
        if nbytes > self.budget_bytes:
            if best_effort:
                return False
            raise TierError(
                f"object block of {nbytes} bytes exceeds the tier memory budget "
                f"of {self.budget_bytes} bytes; raise memory_budget_bytes or "
                f"shrink block_bytes"
            )
        while self.resident_bytes + nbytes > self.budget_bytes:
            victim = self.policy.victim(self._pins, avoid)
            if victim is None:
                if best_effort:
                    return False
                raise TierError(
                    "the block pager cannot evict: every resident block is "
                    "protected by the in-flight operation"
                )
            if self.policy.pin_aware and victim in self._pins:
                self.stats.forced_evictions += 1
            self._evict(victim)
        return True

    def _evict(self, block_id: int) -> None:
        allocation = self._resident.pop(block_id)
        self._resident_bytes -= allocation.nbytes
        if block_id in self._dirty:
            elapsed = self.device.transfer_to_host(
                allocation.nbytes, label=D2H_LABEL, latency=self.config.fault_latency
            )
            self.stats.bytes_d2h += allocation.nbytes
            self.stats.d2h_seconds += elapsed
            self.stats.writebacks += 1
            self._dirty.discard(block_id)
        self.device.free(allocation)
        self.policy.forget(block_id)
        self._prefetched.discard(block_id)
        self.stats.evictions += 1

    def mark_dirty(self, block_id: int) -> None:
        """Flag a resident block as device-modified (written back on evict)."""
        block_id = int(block_id)
        if block_id in self._resident:
            self._dirty.add(block_id)

    def invalidate(self, block_id: int) -> None:
        """Drop a resident copy made stale by a host-side write (no writeback)."""
        block_id = int(block_id)
        allocation = self._resident.pop(block_id, None)
        if allocation is None:
            return
        self._resident_bytes -= allocation.nbytes
        self.device.free(allocation)
        self.policy.forget(block_id)
        self._dirty.discard(block_id)
        self._prefetched.discard(block_id)
        self.stats.invalidations += 1

    def release(self) -> None:
        """Free every staged block (index close / teardown). No writebacks."""
        for block_id in list(self._resident):
            allocation = self._resident.pop(block_id)
            self.device.free(allocation)
            self.policy.forget(block_id)
        self._resident_bytes = 0
        self._dirty.clear()
        self._prefetched.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockPager({self.policy.name!r}, {len(self._resident)} blocks, "
            f"{self.resident_bytes}/{self.budget_bytes} B, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
