"""Out-of-core tiered memory subsystem (DESIGN.md §7).

Serves datasets larger than (simulated) device memory from a single device:
the object store stays host-resident, partitioned into fixed-size blocks
(:class:`TieredObjectStore`), and a demand pager (:class:`BlockPager`)
stages blocks into a bounded device-memory pool, charging H2D/D2H transfer
time through the :mod:`repro.gpusim` timing model.  This is the memory
hierarchy Faiss uses to push GPU similarity search past device capacity
(Johnson et al., "Billion-scale similarity search with GPUs") applied to
the GTS tree: the tree and pivots stay hot on device, cold object blocks
page in on demand.

Enable it by passing ``memory_budget_bytes=...`` (or a full
:class:`TierConfig`) to :class:`~repro.core.gts.GTS` /
:class:`~repro.shard.ShardedGTS`; the ``"memory-tiering"`` experiment
sweeps budgets and eviction policies.
"""

from .config import DEFAULT_BLOCK_BYTES, DEFAULT_FAULT_LATENCY, TierConfig
from .pager import (
    D2H_LABEL,
    EVICTION_POLICIES,
    H2D_LABEL,
    PAGER_POOL,
    BlockPager,
    ClockPolicy,
    EvictionPolicy,
    LRUPolicy,
    PagerStats,
    PinnedLRUPolicy,
    make_eviction_policy,
)
from .store import PagedObjects, TieredObjectStore

__all__ = [
    "TierConfig",
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_FAULT_LATENCY",
    "TieredObjectStore",
    "PagedObjects",
    "BlockPager",
    "PagerStats",
    "EvictionPolicy",
    "LRUPolicy",
    "ClockPolicy",
    "PinnedLRUPolicy",
    "EVICTION_POLICIES",
    "make_eviction_policy",
    "PAGER_POOL",
    "H2D_LABEL",
    "D2H_LABEL",
]
