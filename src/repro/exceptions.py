"""Exception hierarchy for the GTS reproduction library.

All errors raised by ``repro`` derive from :class:`ReproError` so that callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class MetricError(ReproError):
    """A distance metric was misused (wrong object type, bad arguments)."""


class DeviceError(ReproError):
    """Base class for simulated-GPU failures."""


class DeviceMemoryError(DeviceError):
    """The simulated device ran out of memory during an allocation."""

    def __init__(self, requested: int, available: int, capacity: int):
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        super().__init__(
            f"device out of memory: requested {requested} bytes, "
            f"available {available} of {capacity}"
        )


class MemoryDeadlockError(DeviceError):
    """A batch query exhausted device memory mid-traversal and cannot proceed.

    This mirrors the "memory deadlock" failure mode the paper attributes to
    prior GPU tree indexes (Section 1, Challenge II and Fig. 9): intermediate
    results fill the device and none of them can be released to make room for
    the next level of the traversal.
    """


class KernelError(DeviceError):
    """A simulated kernel was launched with inconsistent arguments."""


class MemoryLeakError(DeviceError):
    """A code path exited while simulated device allocations were still live.

    Raised by :meth:`~repro.gpusim.device.Device.assert_no_leaks` /
    :meth:`~repro.gpusim.device.Device.leak_guard`; the test suite uses it to
    catch index/pager code that forgets to free what it allocated.
    """


class TierError(DeviceError):
    """The tiered-memory subsystem was misconfigured or cannot make progress.

    Examples: a device-pool budget smaller than a single object block, or a
    block size that cannot be satisfied by the object store.
    """


class IndexError_(ReproError):
    """The GTS index is in an invalid state or was queried before being built."""


class ConstructionError(IndexError_):
    """Index construction failed (empty dataset, bad node capacity, ...)."""


class UpdateError(IndexError_):
    """A streaming or batch update could not be applied."""


class QueryError(ReproError):
    """A similarity query was issued with invalid parameters."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class BaselineError(ReproError):
    """A baseline index failed (unsupported metric, memory exhaustion, ...)."""


class HostMemoryError(BaselineError):
    """A CPU baseline exhausted its simulated host-memory budget.

    EGNAT's pre-computed range tables are the paper's example (Table 4 lists
    EGNAT as "oom" on T-Loc); the evaluation runner reports this status
    instead of letting the error escape, exactly like device OOM.
    """


class UnsupportedMetricError(BaselineError):
    """A special-purpose baseline was asked to index a metric it cannot handle.

    The paper's LBPG-Tree supports only Lp-norm vector data and GANNS only
    vector data; asking them to index strings raises this error, matching the
    "/" (not applicable) entries of Table 4.
    """
