"""Adapter exposing :class:`repro.core.gts.GTS` through the baseline interface.

The evaluation runner drives every method through
:class:`~repro.baselines.base.SimilarityIndex`; this thin adapter lets GTS be
registered alongside the baselines without duplicating any logic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.gts import GTS
from ..gpusim.device import Device
from ..gpusim.stats import ExecutionStats
from ..metrics.base import Metric
from .base import GPUSimilarityIndex

__all__ = ["GTSIndex"]


class GTSIndex(GPUSimilarityIndex):
    """GTS wrapped in the common similarity-index interface."""

    name = "GTS"

    def __init__(
        self,
        metric: Metric,
        device: Optional[Device] = None,
        node_capacity: int = 20,
        cache_capacity_bytes: int = 5 * 1024,
        pivot_strategy: str = "fft",
        prune_mode: str = "two-sided",
        seed: int = 17,
    ):
        super().__init__(metric, device)
        self._gts = GTS(
            metric=metric,
            node_capacity=node_capacity,
            device=self.device,
            cache_capacity_bytes=cache_capacity_bytes,
            pivot_strategy=pivot_strategy,
            prune_mode=prune_mode,
            seed=seed,
        )

    @property
    def gts(self) -> GTS:
        """The wrapped GTS instance (for inspection in tests and benches)."""
        return self._gts

    def _build_impl(self) -> None:
        self._gts.bulk_load([o for o in self._objects if o is not None])

    @property
    def sim_stats(self) -> ExecutionStats:
        return self.device.stats

    @property
    def storage_bytes(self) -> int:
        return self._gts.storage_bytes

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        return self._gts.range_query_batch(queries, radii)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        return self._gts.knn_query_batch(queries, k)

    def insert(self, obj) -> int:
        self._require_built()
        self._objects.append(obj)
        return self._gts.insert(obj)

    def delete(self, obj_id: int) -> None:
        self._require_built()
        self._gts.delete(obj_id)
        if 0 <= int(obj_id) < len(self._objects):
            self._objects[int(obj_id)] = None

    def batch_update(self, inserts: Sequence = (), deletes: Sequence[int] = ()) -> None:
        self._require_built()
        for obj in inserts:
            self._objects.append(obj)
        self._gts.batch_update(inserts=inserts, deletes=deletes)
