"""GPU-Table — the distance-table GPU baseline of the paper's evaluation.

The paper's "GPU-Table" competitor "computes the distances between the query
and all the objects to answer MRQ and leverages the Dr.Top-k algorithm [23]
to answer MkNNQ" (Section 6.1).  It is the archetypal table-based GPU method:
maximum parallelism, zero pruning.

* **Build** — nothing but copying the objects to the device; there is no
  index (Table 4 reports no construction cost for it).
* **MRQ** — one kernel fills a ``|Q| × n`` distance table, a second filters
  it against the radii.
* **MkNNQ** — the same distance table followed by a Dr.Top-k style parallel
  selection per query.

The full distance table is allocated on the device, so large batches over
large datasets exhaust memory — one of the weaknesses GTS's two-stage search
is designed to avoid.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import MemoryDeadlockError
from ..gpusim.kernels import distance_matrix_kernel, topk_kernel
from .base import GPUSimilarityIndex

__all__ = ["GPUTable"]


class GPUTable(GPUSimilarityIndex):
    """Brute-force GPU distance-table method (exact, no pruning)."""

    name = "GPU-Table"

    def _build_impl(self) -> None:
        from ..core.construction import objects_nbytes

        alloc = getattr(self, "_data_alloc", None)
        if alloc is not None:
            self.device.free(alloc)
        live = self.live_ids()
        self._live = live
        nbytes = objects_nbytes(self._objects, live)
        self.device.transfer_to_device(nbytes)
        self._data_alloc = self.device.allocate(nbytes, "gpu-table-objects")

    @property
    def storage_bytes(self) -> int:
        # no index structure beyond the id list
        return int(self._live.nbytes)

    def _distance_table(self, queries: Sequence) -> tuple[np.ndarray, np.ndarray]:
        """Allocate and fill the |Q| x n distance table on the device."""
        live = self._live
        objs = [self._objects[int(i)] for i in live]
        table_bytes = len(queries) * len(live) * 8
        try:
            alloc = self.device.allocate(table_bytes, "gpu-table-distances")
        except Exception as exc:
            raise MemoryDeadlockError(
                f"GPU-Table cannot allocate a {len(queries)}x{len(live)} distance table: {exc}"
            ) from exc
        table = distance_matrix_kernel(self.device, self.metric, list(queries), objs)
        return table, alloc

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        table, alloc = self._distance_table(queries)
        # filtering kernel over every cell of the table
        self.device.launch_kernel(work_items=table.size, op_cost=1.0, label="gpu-table-filter")
        out = []
        for qi in range(len(queries)):
            hit = table[qi] <= radii_arr[qi]
            ids = self._live[hit]
            dists = table[qi][hit]
            order = np.lexsort((ids, dists))
            out.append([(int(ids[i]), float(dists[i])) for i in order])
            self.device.transfer_to_host(int(hit.sum()) * 16)
        self.device.free(alloc)
        return out

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        table, alloc = self._distance_table(queries)
        out = []
        for qi in range(len(queries)):
            kk = int(k_arr[qi])
            idx = topk_kernel(self.device, table[qi], kk, label="dr-topk")
            ids = self._live[idx]
            dists = table[qi][idx]
            order = np.lexsort((ids, dists))
            out.append([(int(ids[i]), float(dists[i])) for i in order])
            self.device.transfer_to_host(kk * 16)
        self.device.free(alloc)
        return out

    def insert(self, obj) -> int:
        """Insertion just appends to the device-resident object table."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        self.device.free(self._data_alloc)
        self._build_impl()
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Deletion removes the object from the device-resident table."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            from ..exceptions import BaselineError

            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.device.free(self._data_alloc)
        self._build_impl()
