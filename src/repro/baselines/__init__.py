"""Baseline similarity-search methods used in the paper's evaluation.

CPU methods (sequential cost model): the paper's competitors BST, MVPT and
EGNAT, plus a LinearScan oracle and the related-work methods LAESA, List of
Clusters, EPT, M-tree and GNAT (Section 2).  GPU methods (simulated device):
GPU-Table, GPU-Tree, LBPG-Tree and GANNS, plus the GTS adapter so every
method can be driven uniformly.
"""

from typing import Callable, Dict

from ..exceptions import BaselineError
from .base import CPUSimilarityIndex, GPUSimilarityIndex, SimilarityIndex
from .bst import BisectorTree
from .egnat import EGNAT
from .ept import ExtremePivotsTable
from .ganns import GANNS
from .gnat import GNAT
from .gpu_table import GPUTable
from .gpu_tree import GPUTree
from .gts_adapter import GTSIndex
from .laesa import LAESA
from .lbpg_tree import LBPGTree
from .linear_scan import LinearScan
from .list_of_clusters import ListOfClusters
from .mtree import MTree
from .mvpt import MVPTree

__all__ = [
    "SimilarityIndex",
    "CPUSimilarityIndex",
    "GPUSimilarityIndex",
    "LinearScan",
    "BisectorTree",
    "MVPTree",
    "EGNAT",
    "LAESA",
    "ListOfClusters",
    "ExtremePivotsTable",
    "MTree",
    "GNAT",
    "GPUTable",
    "GPUTree",
    "LBPGTree",
    "GANNS",
    "GTSIndex",
    "get_method",
    "available_methods",
    "METHOD_REGISTRY",
]

#: Factory registry used by the evaluation harness; keys match the paper's
#: method names (the related-work CPU methods extend the paper's set).
METHOD_REGISTRY: Dict[str, Callable[..., SimilarityIndex]] = {
    "LinearScan": LinearScan,
    "BST": BisectorTree,
    "MVPT": MVPTree,
    "EGNAT": EGNAT,
    "LAESA": LAESA,
    "LC": ListOfClusters,
    "EPT": ExtremePivotsTable,
    "M-tree": MTree,
    "GNAT": GNAT,
    "GPU-Table": GPUTable,
    "GPU-Tree": GPUTree,
    "LBPG-Tree": LBPGTree,
    "GANNS": GANNS,
    "GTS": GTSIndex,
}


def available_methods() -> list[str]:
    """Return the registered method names in the paper's presentation order."""
    return list(METHOD_REGISTRY)


def get_method(name: str, metric, **kwargs) -> SimilarityIndex:
    """Instantiate the method registered under ``name`` for ``metric``."""
    try:
        factory = METHOD_REGISTRY[name]
    except KeyError:
        raise BaselineError(
            f"unknown method {name!r}; available: {', '.join(available_methods())}"
        ) from None
    return factory(metric, **kwargs)
