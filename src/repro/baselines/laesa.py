"""LAESA — Linear AESA (Micó, Oncina & Vidal), a CPU table-based baseline.

LAESA is the canonical *table-based* metric index the paper's related-work
section contrasts with tree-based methods (Section 2): a fixed set of ``m``
pivots is chosen up front and the full ``n x m`` object-to-pivot distance
table is pre-computed.  At query time only the ``m`` query-to-pivot distances
are computed eagerly; every object is then screened with the triangle-
inequality lower bound

``lb(o) = max_j |d(o, p_j) - d(q, p_j)|``

and only the survivors pay a real distance computation.  Answers are exact.

Like the other CPU baselines it is sequential: the simulated
:class:`~repro.gpusim.cpu.CPUExecutor` charges one unit of work per distance,
which is what the evaluation harness measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["LAESA"]


class LAESA(CPUSimilarityIndex):
    """Exact CPU pivot-table index (Linear AESA)."""

    name = "LAESA"

    def __init__(self, metric, cpu_spec=None, num_pivots: int = 16, seed: int = 41):
        super().__init__(metric, cpu_spec)
        if num_pivots < 1:
            raise BaselineError("LAESA needs at least one pivot")
        self.num_pivots = int(num_pivots)
        self._rng = np.random.default_rng(seed)
        #: ids of the chosen pivots (a subset of the object ids)
        self._pivot_ids: list[int] = []
        #: the pivot objects themselves, kept so pruning survives pivot deletion
        self._pivot_objs: list = []
        #: dense ``n x m`` table of object-to-pivot distances, row per object id
        self._table: np.ndarray = np.zeros((0, 0), dtype=np.float64)

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        live = self.live_ids().tolist()
        m = min(self.num_pivots, len(live))
        self._pivot_ids = self._select_pivots(live, m)
        self._pivot_objs = [self._objects[i] for i in self._pivot_ids]
        self._table = np.full((len(self._objects), len(self._pivot_ids)), np.inf, dtype=np.float64)
        for j, pivot_obj in enumerate(self._pivot_objs):
            dists = self.executor.distances(
                self.metric,
                pivot_obj,
                [self._objects[i] for i in live],
                label="laesa-table",
            )
            self._table[live, j] = dists

    def _select_pivots(self, live: list[int], m: int) -> list[int]:
        """Maximally-separated pivots: the farthest-first traversal LAESA uses."""
        first = live[int(self._rng.integers(0, len(live)))]
        pivots = [first]
        min_dist = self.executor.distances(
            self.metric, self._objects[first], [self._objects[i] for i in live], label="laesa-pivots"
        )
        while len(pivots) < m:
            next_idx = int(np.argmax(min_dist))
            candidate = live[next_idx]
            if candidate in pivots:
                break
            pivots.append(candidate)
            dists = self.executor.distances(
                self.metric,
                self._objects[candidate],
                [self._objects[i] for i in live],
                label="laesa-pivots",
            )
            min_dist = np.minimum(min_dist, dists)
        return pivots

    @property
    def storage_bytes(self) -> int:
        return int(self._table.size * 8 + len(self._pivot_ids) * 8)

    # --------------------------------------------------------------- queries
    def _query_pivot_distances(self, query) -> np.ndarray:
        return self.executor.distances(
            self.metric, query, self._pivot_objs, label="laesa-query-pivots"
        )

    def _lower_bounds(self, live: np.ndarray, query_pivot_dists: np.ndarray) -> np.ndarray:
        rows = self._table[live, : len(self._pivot_ids)]
        return np.max(np.abs(rows - query_pivot_dists[None, :]), axis=1)

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        live = self.live_ids()
        out = []
        for query, radius in zip(queries, radii_arr):
            radius = float(radius)
            dq = self._query_pivot_distances(query)
            bounds = self._lower_bounds(live, dq)
            hits: list[tuple[int, float]] = []
            candidates = live[bounds <= radius]
            for obj_id in candidates:
                dist = self.executor.distance(self.metric, query, self._objects[int(obj_id)])
                if dist <= radius:
                    hits.append((int(obj_id), float(dist)))
            out.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return out

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        live = self.live_ids()
        out = []
        for query, kk in zip(queries, k_arr):
            kk = int(kk)
            dq = self._query_pivot_distances(query)
            bounds = self._lower_bounds(live, dq)
            order = np.argsort(bounds, kind="stable")
            pool: list[tuple[float, int]] = []
            bound = np.inf
            for idx in order:
                if bounds[idx] >= bound and len(pool) >= kk:
                    break  # lower bounds are sorted: nothing later can improve
                obj_id = int(live[idx])
                dist = float(self.executor.distance(self.metric, query, self._objects[obj_id]))
                pool.append((dist, obj_id))
                pool.sort()
                if len(pool) > kk:
                    pool = pool[:kk]
                if len(pool) == kk:
                    bound = pool[-1][0]
            out.append([(obj_id, dist) for dist, obj_id in pool])
        return out

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Append one row to the distance table (``m`` distance computations)."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        row = self.executor.distances(self.metric, obj, self._pivot_objs, label="laesa-insert")
        self._table = np.vstack([self._table, row[None, :]])
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: the table row stays, the object is hidden from answers."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        # a deleted pivot keeps filtering (its distances stay valid via
        # ``_pivot_objs``) but no longer appears in answers
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
