"""GNAT — Geometric Near-neighbor Access Tree (Brin), a CPU hybrid baseline.

GNAT is the hybrid method the paper's related work (Section 2) describes as
"storing the distance table of the minimum bounding box in tree nodes" (and
whose dynamic variant, EGNAT, is one of the paper's CPU competitors).  Every
internal node

* picks ``fanout`` *split points* with a farthest-first traversal,
* assigns each remaining object to its closest split point, and
* stores, for every pair ``(i, j)`` of split points, the ``[min, max]`` range
  of distances from split point ``i`` to the objects of group ``j``.

At query time the split-point distances are computed one at a time; each one
discards every group whose stored range cannot intersect the query ball,
usually eliminating most children before their own distances are ever
computed.  Answers are exact; execution is sequential on the simulated CPU
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["GNAT"]


@dataclass
class _GNATNode:
    """One node of the GNAT."""

    #: leaf payload: object ids stored directly in this node
    object_ids: list[int] = field(default_factory=list)
    #: split-point object ids (empty for leaves)
    split_ids: list[int] = field(default_factory=list)
    #: the split-point objects themselves (pruning survives deletions)
    split_objs: list = field(default_factory=list)
    #: ``ranges[i][j] = (lo, hi)`` distance range from split i to group j
    ranges: list[list[tuple[float, float]]] = field(default_factory=list)
    children: list["_GNATNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GNAT(CPUSimilarityIndex):
    """Exact CPU Geometric Near-neighbor Access Tree."""

    name = "GNAT"

    def __init__(self, metric, cpu_spec=None, fanout: int = 8, leaf_size: int = 16, seed: int = 59):
        super().__init__(metric, cpu_spec)
        if fanout < 2:
            raise BaselineError("GNAT fanout must be at least 2")
        if leaf_size < 1:
            raise BaselineError("GNAT leaf size must be at least 1")
        self.fanout = int(fanout)
        self.leaf_size = int(leaf_size)
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_GNATNode] = None
        self._node_count = 0
        self._range_entries = 0

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._node_count = 0
        self._range_entries = 0
        self._root = self._build_node(self.live_ids().tolist())

    def _build_node(self, ids: list[int]) -> _GNATNode:
        self._node_count += 1
        if len(ids) <= max(self.leaf_size, self.fanout):
            return _GNATNode(object_ids=list(ids))
        split_ids = self._select_splits(ids, min(self.fanout, len(ids)))
        split_objs = [self._objects[i] for i in split_ids]
        remaining = [i for i in ids if i not in set(split_ids)]
        groups: list[list[int]] = [[] for _ in split_ids]
        group_dists: list[list[list[float]]] = [
            [[] for _ in split_ids] for _ in split_ids
        ]  # [split i][group j] -> distances
        for obj_id in remaining:
            dists = self.executor.distances(
                self.metric, self._objects[obj_id], split_objs, label="gnat-build"
            )
            best = int(np.argmin(dists))
            groups[best].append(obj_id)
            for i in range(len(split_ids)):
                group_dists[i][best].append(float(dists[i]))
        if all(len(g) == len(remaining) for g in groups if g):
            # every object fell into a single group (e.g. all duplicates):
            # stop splitting to avoid unbounded recursion
            return _GNATNode(object_ids=list(ids))
        node = _GNATNode(split_ids=list(split_ids), split_objs=list(split_objs))
        for j, group in enumerate(groups):
            ranges_j = []
            for i in range(len(split_ids)):
                dists_ij = group_dists[i][j]
                if dists_ij:
                    ranges_j.append((float(min(dists_ij)), float(max(dists_ij))))
                else:
                    ranges_j.append((np.inf, -np.inf))  # empty group: never intersects
            node.children.append(self._build_node(group) if group else _GNATNode())
            for i in range(len(split_ids)):
                if len(node.ranges) <= i:
                    node.ranges.append([])
                node.ranges[i].append(ranges_j[i])
                self._range_entries += 1
        return node

    def _select_splits(self, ids: list[int], m: int) -> list[int]:
        """Farthest-first traversal over the node's objects."""
        first = ids[int(self._rng.integers(0, len(ids)))]
        splits = [first]
        min_dist = self.executor.distances(
            self.metric, self._objects[first], [self._objects[i] for i in ids], label="gnat-splits"
        )
        while len(splits) < m:
            candidate = ids[int(np.argmax(min_dist))]
            if candidate in splits:
                break
            splits.append(candidate)
            dists = self.executor.distances(
                self.metric, self._objects[candidate], [self._objects[i] for i in ids],
                label="gnat-splits",
            )
            min_dist = np.minimum(min_dist, dists)
        return splits

    @property
    def storage_bytes(self) -> int:
        return int(self._node_count * 16 + self._range_entries * 16 + self.num_objects * 8)

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            hits: list[tuple[int, float]] = []
            self._range_rec(self._root, query, float(radius), hits)
            out.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return out

    def _verify(self, obj_id: int, query, radius: float, hits: list) -> None:
        if self._objects[obj_id] is None:
            return
        dist = float(self.executor.distance(self.metric, query, self._objects[obj_id], label="gnat-query"))
        if dist <= radius:
            hits.append((int(obj_id), dist))

    def _range_rec(self, node: _GNATNode, query, radius: float, hits: list) -> None:
        if node.is_leaf:
            for obj_id in node.object_ids:
                self._verify(obj_id, query, radius, hits)
            return
        alive = [True] * len(node.children)
        # every split point is a real object stored only here, so its distance
        # is always computed (it doubles as the group filter)
        for i, (split_id, split_obj) in enumerate(zip(node.split_ids, node.split_objs)):
            di = float(self.executor.distance(self.metric, query, split_obj, label="gnat-query"))
            if di <= radius and self._objects[split_id] is not None:
                hits.append((int(split_id), di))
            for j in range(len(node.children)):
                if not alive[j]:
                    continue
                lo, hi = node.ranges[i][j]
                if di + radius < lo or di - radius > hi:
                    alive[j] = False
        for j, child in enumerate(node.children):
            if alive[j] and child is not None:
                self._range_rec(child, query, radius, hits)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            pool: dict[int, float] = {}
            self._knn_rec(self._root, query, int(kk), pool)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[: int(kk)]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out

    def _knn_bound(self, pool: dict, k: int) -> float:
        if len(pool) < k:
            return np.inf
        return sorted(pool.values())[k - 1]

    def _knn_offer(self, pool: dict, obj_id: int, dist: float) -> None:
        prev = pool.get(obj_id)
        if prev is None or dist < prev:
            pool[obj_id] = dist

    def _knn_rec(self, node: _GNATNode, query, k: int, pool: dict) -> None:
        if node.is_leaf:
            for obj_id in node.object_ids:
                if self._objects[obj_id] is None:
                    continue
                dist = float(self.executor.distance(self.metric, query, self._objects[obj_id], label="gnat-query"))
                self._knn_offer(pool, int(obj_id), dist)
            return
        alive = [True] * len(node.children)
        split_dists = []
        for i, (split_id, split_obj) in enumerate(zip(node.split_ids, node.split_objs)):
            di = float(self.executor.distance(self.metric, query, split_obj, label="gnat-query"))
            split_dists.append(di)
            if self._objects[split_id] is not None:
                self._knn_offer(pool, int(split_id), di)
            bound = self._knn_bound(pool, k)
            for j in range(len(node.children)):
                if not alive[j]:
                    continue
                lo, hi = node.ranges[i][j]
                if di + bound < lo or di - bound > hi:
                    alive[j] = False
        # visit the surviving children closest-first to tighten the bound early
        order = sorted(
            (j for j in range(len(node.children)) if alive[j]),
            key=lambda j: max(
                max(0.0, node.ranges[i][j][0] - split_dists[i], split_dists[i] - node.ranges[i][j][1])
                for i in range(len(node.split_ids))
            ),
        )
        for j in order:
            bound = self._knn_bound(pool, k)
            prunable = any(
                split_dists[i] + bound < node.ranges[i][j][0]
                or split_dists[i] - bound > node.ranges[i][j][1]
                for i in range(len(node.split_ids))
            )
            if not prunable:
                self._knn_rec(node.children[j], query, k, pool)

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Descend to the nearest split-point group, widening ranges on the way."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        node = self._root
        while not node.is_leaf:
            dists = self.executor.distances(self.metric, obj, node.split_objs, label="gnat-insert")
            best = int(np.argmin(dists))
            for i in range(len(node.split_ids)):
                lo, hi = node.ranges[i][best]
                node.ranges[i][best] = (min(lo, float(dists[i])), max(hi, float(dists[i])))
            node = node.children[best]
        node.object_ids.append(obj_id)
        if len(node.object_ids) > 4 * max(self.leaf_size, self.fanout):
            live = [i for i in node.object_ids if self._objects[i] is not None]
            rebuilt = self._build_node(live)
            node.object_ids = rebuilt.object_ids
            node.split_ids = rebuilt.split_ids
            node.split_objs = rebuilt.split_objs
            node.ranges = rebuilt.ranges
            node.children = rebuilt.children
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object; split geometry is unchanged."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
