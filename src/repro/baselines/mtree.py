"""M-tree (Ciaccia, Patella & Zezula), a CPU tree-based baseline.

The M-tree is the classic dynamic, balanced metric tree cited in the paper's
related work (Section 2).  Every internal node holds *routing entries*
``(routing object, covering radius, distance to parent, child)``; every leaf
holds *ground entries* ``(object, distance to parent)``.  Both query types
exploit two pruning rules:

* **covering-radius pruning** — a subtree whose ball ``(routing object,
  covering radius)`` cannot intersect the query ball is skipped;
* **parent-distance pruning** — ``|d(q, parent) - d(entry, parent)|`` lower
  bounds ``d(q, entry)``, so many entries are discarded *without* computing
  their real distance.

This implementation bulk-loads the tree with a recursive fanout-way
partitioning (random routing objects, nearest-assignment) and supports the
M-tree's structural streaming insertion (descend to the subtree whose ball
needs the least enlargement).  Answers are exact; execution is sequential on
the simulated CPU executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["MTree"]


@dataclass
class _Entry:
    """A routing entry (internal) or ground entry (leaf) of the M-tree."""

    obj_id: int
    obj: object
    dist_to_parent: float = 0.0
    covering_radius: float = 0.0
    child: Optional["_MNode"] = None


@dataclass
class _MNode:
    """One node of the M-tree."""

    is_leaf: bool
    entries: list[_Entry] = field(default_factory=list)


class MTree(CPUSimilarityIndex):
    """Exact CPU M-tree."""

    name = "M-tree"

    def __init__(self, metric, cpu_spec=None, fanout: int = 8, leaf_size: int = 16, seed: int = 53):
        super().__init__(metric, cpu_spec)
        if fanout < 2:
            raise BaselineError("M-tree fanout must be at least 2")
        if leaf_size < 1:
            raise BaselineError("M-tree leaf size must be at least 1")
        self.fanout = int(fanout)
        self.leaf_size = int(leaf_size)
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_MNode] = None
        self._node_count = 0

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._node_count = 0
        ids = self.live_ids().tolist()
        self._root = self._bulk_load(ids, parent_obj=None)

    def _bulk_load(self, ids: list[int], parent_obj) -> _MNode:
        """Recursive bulk-loading: random routing objects, nearest assignment."""
        self._node_count += 1
        if len(ids) <= self.leaf_size:
            node = _MNode(is_leaf=True)
            for obj_id in ids:
                dist = self._dist_to_parent(self._objects[obj_id], parent_obj)
                node.entries.append(_Entry(obj_id=obj_id, obj=self._objects[obj_id], dist_to_parent=dist))
            return node
        num_routes = min(self.fanout, len(ids))
        route_ids = [int(i) for i in self._rng.choice(ids, size=num_routes, replace=False)]
        # assign every object to its nearest routing object
        assignment: dict[int, list[tuple[int, float]]] = {rid: [] for rid in route_ids}
        for obj_id in ids:
            dists = self.executor.distances(
                self.metric, self._objects[obj_id], [self._objects[r] for r in route_ids],
                label="mtree-build",
            )
            best = int(np.argmin(dists))
            assignment[route_ids[best]].append((obj_id, float(dists[best])))
        node = _MNode(is_leaf=False)
        for rid in route_ids:
            members = assignment[rid]
            if not members:
                continue
            member_ids = [obj_id for obj_id, _ in members]
            covering = max(dist for _, dist in members)
            # guard against a degenerate split (everything landed on one route)
            if len(member_ids) == len(ids) and len(route_ids) > 1:
                child = _MNode(is_leaf=True)
                for obj_id, dist in members:
                    child.entries.append(_Entry(obj_id=obj_id, obj=self._objects[obj_id], dist_to_parent=dist))
                self._node_count += 1
            else:
                child = self._bulk_load(member_ids, parent_obj=self._objects[rid])
            node.entries.append(
                _Entry(
                    obj_id=rid,
                    obj=self._objects[rid],
                    dist_to_parent=self._dist_to_parent(self._objects[rid], parent_obj),
                    covering_radius=covering,
                    child=child,
                )
            )
        return node

    def _dist_to_parent(self, obj, parent_obj) -> float:
        if parent_obj is None:
            return 0.0
        return float(self.executor.distance(self.metric, obj, parent_obj, label="mtree-parent"))

    @property
    def storage_bytes(self) -> int:
        return int(self._node_count * 16 + self.num_objects * (8 + 8 + 8))

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            hits: list[tuple[int, float]] = []
            self._range_rec(self._root, query, float(radius), None, hits)
            out.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return out

    def _range_rec(self, node: _MNode, query, radius: float, dist_to_parent: Optional[float], hits: list) -> None:
        for entry in node.entries:
            if dist_to_parent is not None and abs(dist_to_parent - entry.dist_to_parent) > radius + entry.covering_radius:
                continue  # parent-distance pruning, no distance computation
            dist = float(self.executor.distance(self.metric, query, entry.obj, label="mtree-query"))
            if node.is_leaf:
                if dist <= radius and self._objects[entry.obj_id] is not None:
                    hits.append((entry.obj_id, dist))
            # routing objects also live in a leaf below, so they are only
            # reported there (otherwise they would be reported twice)
            elif dist <= radius + entry.covering_radius:
                self._range_rec(entry.child, query, radius, dist, hits)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            pool: dict[int, float] = {}
            self._knn_rec(self._root, query, int(kk), None, pool)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[: int(kk)]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out

    def _knn_bound(self, pool: dict, k: int) -> float:
        if len(pool) < k:
            return np.inf
        return sorted(pool.values())[k - 1]

    def _knn_rec(self, node: _MNode, query, k: int, dist_to_parent: Optional[float], pool: dict) -> None:
        entries = node.entries
        bound = self._knn_bound(pool, k)
        # compute the distances lazily, nearest-lower-bound first
        def parent_lb(entry: _Entry) -> float:
            if dist_to_parent is None:
                return 0.0
            return max(0.0, abs(dist_to_parent - entry.dist_to_parent) - entry.covering_radius)

        for entry in sorted(entries, key=parent_lb):
            bound = self._knn_bound(pool, k)
            if parent_lb(entry) > bound:
                continue
            dist = float(self.executor.distance(self.metric, query, entry.obj, label="mtree-query"))
            if self._objects[entry.obj_id] is not None:
                prev = pool.get(entry.obj_id)
                if prev is None or dist < prev:
                    pool[entry.obj_id] = dist
            if not node.is_leaf:
                bound = self._knn_bound(pool, k)
                if dist <= bound + entry.covering_radius:
                    self._knn_rec(entry.child, query, k, dist, pool)

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Structural insertion: descend into the subtree needing least enlargement."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        node = self._root
        parent_obj = None
        while not node.is_leaf:
            best_entry = None
            best_key = None
            best_dist = 0.0
            for entry in node.entries:
                dist = float(self.executor.distance(self.metric, obj, entry.obj, label="mtree-insert"))
                enlargement = max(0.0, dist - entry.covering_radius)
                key = (enlargement, dist)
                if best_key is None or key < best_key:
                    best_key, best_entry, best_dist = key, entry, dist
            best_entry.covering_radius = max(best_entry.covering_radius, best_dist)
            parent_obj = best_entry.obj
            node = best_entry.child
        node.entries.append(
            _Entry(obj_id=obj_id, obj=obj, dist_to_parent=self._dist_to_parent(obj, parent_obj))
        )
        if len(node.entries) > 4 * self.leaf_size:
            live = [e.obj_id for e in node.entries if self._objects[e.obj_id] is not None]
            rebuilt = self._bulk_load(live, parent_obj=parent_obj)
            node.is_leaf = rebuilt.is_leaf
            node.entries = rebuilt.entries
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object; routing geometry is unchanged."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
