"""LBPG-Tree — the GPU R-tree baseline for Lp-norm vector data.

The paper's LBPG-Tree competitor builds R-trees on the GPU and therefore
"supports similarity search only on vector data with Lp-norm distance"
(Section 6.1, Remark): it is evaluated only on T-Loc and Color, and its
high-dimensional behaviour is dominated by the *dimension curse* — minimum
bounding rectangles stop pruning anything in 282 dimensions, so its candidate
sets (and intermediate memory) blow up, which is why it runs out of memory on
Color at 80 % cardinality in Fig. 11.

Implementation:

* **Build** — Sort-Tile-Recursive (STR) bulk loading: objects are sorted by
  their first coordinate, cut into vertical slabs, each slab sorted by the
  second coordinate and packed into leaves of ``leaf_size`` entries; upper
  levels pack MBRs the same way.  Construction is cheap (matching the very
  low construction times of Table 4).
* **Queries** — level-synchronous batched traversal: for every level one
  kernel computes ``mindist(query, MBR)`` for all (query, node) candidates
  and keeps those within the radius / current k-th bound; leaves are verified
  with real distances.  Candidate lists are materialised on the device, so a
  poorly pruning tree exhausts memory.

Only ``MinkowskiDistance`` metrics (L1/L2/L∞) are supported; anything else
raises :class:`~repro.exceptions.UnsupportedMetricError`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import MemoryDeadlockError, UnsupportedMetricError
from ..metrics.base import Metric
from ..metrics.vector import MinkowskiDistance
from .base import GPUSimilarityIndex

__all__ = ["LBPGTree"]

CANDIDATE_ENTRY_BYTES = 16


class LBPGTree(GPUSimilarityIndex):
    """STR-packed R-tree with level-synchronous batched GPU traversal (exact)."""

    name = "LBPG-Tree"
    supports_range = True

    def __init__(self, metric, device=None, leaf_size: int = 64, fanout: int = 16):
        super().__init__(metric, device)
        self.leaf_size = int(leaf_size)
        self.fanout = int(fanout)
        self._levels: list[dict] = []

    @classmethod
    def supports_metric(cls, metric: Metric) -> bool:
        return isinstance(metric, MinkowskiDistance) and metric.is_lp_norm

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        # release allocations of any previous build (rebuild-on-update path)
        for attr in ("_data_alloc", "_index_alloc"):
            alloc = getattr(self, attr, None)
            if alloc is not None:
                self.device.free(alloc)
        live = self.live_ids()
        data = np.asarray([self._objects[int(i)] for i in live], dtype=np.float64)
        self._live = live
        self._data = data
        n, dim = data.shape
        self.device.transfer_to_device(data.nbytes)
        self._data_alloc = self.device.allocate(data.nbytes, "lbpg-objects")

        host_start = time.perf_counter()
        # --- leaf level via STR packing on the first two dimensions
        order = np.argsort(data[:, 0], kind="stable")
        slabs = max(1, int(np.ceil(np.sqrt(n / self.leaf_size))))
        slab_size = int(np.ceil(n / slabs))
        leaf_entries: list[np.ndarray] = []
        for s in range(slabs):
            slab = order[s * slab_size : (s + 1) * slab_size]
            if len(slab) == 0:
                continue
            key = data[slab, 1] if dim > 1 else data[slab, 0]
            slab = slab[np.argsort(key, kind="stable")]
            for start in range(0, len(slab), self.leaf_size):
                leaf_entries.append(slab[start : start + self.leaf_size])
        leaves = {
            "lo": np.stack([data[e].min(axis=0) for e in leaf_entries]),
            "hi": np.stack([data[e].max(axis=0) for e in leaf_entries]),
            "entries": leaf_entries,
            "is_leaf": True,
        }
        self._levels = [leaves]
        # --- internal levels: pack groups of `fanout` child MBRs
        while len(self._levels[0]["lo"]) > 1:
            child = self._levels[0]
            count = len(child["lo"])
            groups = [
                np.arange(start, min(start + self.fanout, count))
                for start in range(0, count, self.fanout)
            ]
            level = {
                "lo": np.stack([child["lo"][g].min(axis=0) for g in groups]),
                "hi": np.stack([child["hi"][g].max(axis=0) for g in groups]),
                "entries": groups,
                "is_leaf": False,
            }
            self._levels.insert(0, level)
        host = time.perf_counter() - host_start
        self.device.launch_kernel(
            work_items=n, op_cost=2.0, label="lbpg-build", host_time=host
        )
        self.device.sort_cost(n, label="lbpg-str-sort")
        self._index_alloc = self.device.allocate(self.storage_bytes, "lbpg-index")

    @property
    def storage_bytes(self) -> int:
        total = 0
        for level in self._levels:
            total += level["lo"].nbytes + level["hi"].nbytes
            total += sum(np.asarray(e).nbytes for e in level["entries"])
        return int(total)

    # --------------------------------------------------------------- helpers
    def _mindist(self, query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Lp mindist from the query point to each MBR."""
        gap = np.maximum(np.maximum(lo - query[None, :], query[None, :] - hi), 0.0)
        p = self.metric.p
        if np.isinf(p):
            return gap.max(axis=1)
        return np.sum(gap ** p, axis=1) ** (1.0 / p)

    def _allocate_candidates(self, count: int, label: str):
        try:
            return self.device.allocate(count * CANDIDATE_ENTRY_BYTES, label)
        except Exception as exc:
            raise MemoryDeadlockError(
                f"LBPG-Tree candidate list of {count} entries does not fit in device memory: {exc}"
            ) from exc

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        queries_arr = np.asarray(queries, dtype=np.float64)
        radii_arr = broadcast_query_param(radii, len(queries_arr), "radii", np.float64)
        # candidate node lists per query, one level at a time
        cands = [np.arange(len(self._levels[0]["lo"])) for _ in range(len(queries_arr))]
        for depth, level in enumerate(self._levels):
            total = sum(len(c) for c in cands)
            alloc = self._allocate_candidates(max(total, 1), f"lbpg-level-{depth}")
            host_start = time.perf_counter()
            if level["is_leaf"]:
                out = []
                verified = 0
                for qi, query in enumerate(queries_arr):
                    hits: dict[int, float] = {}
                    nodes = np.asarray(cands[qi], dtype=np.int64)
                    if len(nodes):
                        leaf_md = self._mindist(query, level["lo"][nodes], level["hi"][nodes])
                        nodes = nodes[leaf_md <= radii_arr[qi]]
                    for node in nodes:
                        entries = level["entries"][int(node)]
                        dists = self.metric.pairwise(query, self._data[entries])
                        verified += len(entries)
                        within = dists <= radii_arr[qi]
                        for pos, dist in zip(entries[within], dists[within]):
                            hits[int(self._live[pos])] = float(dist)
                    out.append(sorted(hits.items(), key=lambda p: (p[1], p[0])))
                host = time.perf_counter() - host_start
                self.device.launch_kernel(
                    work_items=verified,
                    op_cost=self.metric.unit_cost,
                    label="lbpg-verify",
                    host_time=host,
                )
                self.device.free(alloc)
                return out
            next_cands = []
            tested = 0
            for qi, query in enumerate(queries_arr):
                nodes = cands[qi]
                md = self._mindist(query, level["lo"][nodes], level["hi"][nodes])
                tested += len(nodes)
                keep = nodes[md <= radii_arr[qi]]
                children = [level["entries"][int(nid)] for nid in keep]
                next_cands.append(
                    np.concatenate(children) if children else np.zeros(0, dtype=np.int64)
                )
            host = time.perf_counter() - host_start
            self.device.launch_kernel(
                work_items=tested, op_cost=4.0, label="lbpg-mindist", host_time=host
            )
            self.device.free(alloc)
            cands = next_cands
        return [[] for _ in range(len(queries_arr))]

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        queries_arr = np.asarray(queries, dtype=np.float64)
        k_arr = broadcast_query_param(k, len(queries_arr), "k", np.int64)
        pools: list[dict[int, float]] = [dict() for _ in range(len(queries_arr))]
        # Seed pass: greedily descend to the most promising leaf per query and
        # verify it, so the level-synchronous sweep starts with a finite k-th
        # bound instead of scanning everything.
        seed_work = 0
        host_start = time.perf_counter()
        for qi, query in enumerate(queries_arr):
            node = 0
            for li, level in enumerate(self._levels):
                if level["is_leaf"]:
                    entries = level["entries"][int(node)]
                    dists = self.metric.pairwise(query, self._data[entries])
                    seed_work += len(entries)
                    for pos, dist in zip(entries, dists):
                        pools[qi][int(self._live[pos])] = float(dist)
                    break
                children = np.asarray(level["entries"][int(node)])
                nxt = self._levels[li + 1]
                md = self._mindist(query, nxt["lo"][children], nxt["hi"][children])
                seed_work += len(children)
                node = int(children[int(np.argmin(md))])
        host_seed = time.perf_counter() - host_start
        self.device.launch_kernel(
            work_items=seed_work,
            op_cost=self.metric.unit_cost,
            label="lbpg-knn-seed",
            host_time=host_seed,
        )
        cands = [np.arange(len(self._levels[0]["lo"])) for _ in range(len(queries_arr))]
        for depth, level in enumerate(self._levels):
            total = sum(len(c) for c in cands)
            alloc = self._allocate_candidates(max(total, 1), f"lbpg-knn-level-{depth}")
            host_start = time.perf_counter()
            if level["is_leaf"]:
                verified = 0
                for qi, query in enumerate(queries_arr):
                    kk = int(k_arr[qi])
                    nodes = np.asarray(cands[qi], dtype=np.int64)
                    if len(nodes):
                        bound = (
                            sorted(pools[qi].values())[kk - 1] if len(pools[qi]) >= kk else np.inf
                        )
                        leaf_md = self._mindist(query, level["lo"][nodes], level["hi"][nodes])
                        order = np.argsort(leaf_md, kind="stable")
                        nodes = nodes[order][leaf_md[order] <= bound]
                    for node in nodes:
                        entries = level["entries"][int(node)]
                        dists = self.metric.pairwise(query, self._data[entries])
                        verified += len(entries)
                        for pos, dist in zip(entries, dists):
                            oid = int(self._live[pos])
                            prev = pools[qi].get(oid)
                            if prev is None or dist < prev:
                                pools[qi][oid] = float(dist)
                host = time.perf_counter() - host_start
                self.device.launch_kernel(
                    work_items=verified,
                    op_cost=self.metric.unit_cost,
                    label="lbpg-knn-verify",
                    host_time=host,
                )
                self.device.free(alloc)
                break
            next_cands = []
            tested = 0
            for qi, query in enumerate(queries_arr):
                nodes = cands[qi]
                md = self._mindist(query, level["lo"][nodes], level["hi"][nodes])
                tested += len(nodes)
                kk = int(k_arr[qi])
                if len(pools[qi]) >= kk:
                    bound = sorted(pools[qi].values())[kk - 1]
                else:
                    bound = np.inf
                keep = nodes[md <= bound]
                # keep nodes ordered by mindist so deeper levels verify the
                # most promising leaves first
                keep = keep[np.argsort(md[md <= bound], kind="stable")]
                children = [level["entries"][int(nid)] for nid in keep]
                next_cands.append(
                    np.concatenate(children) if children else np.zeros(0, dtype=np.int64)
                )
            host = time.perf_counter() - host_start
            self.device.launch_kernel(
                work_items=tested, op_cost=4.0, label="lbpg-knn-mindist", host_time=host
            )
            self.device.free(alloc)
            cands = next_cands
        out = []
        for qi in range(len(queries_arr)):
            kk = int(k_arr[qi])
            ranked = sorted(pools[qi].items(), key=lambda p: (p[1], p[0]))[:kk]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out
