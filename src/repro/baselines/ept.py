"""EPT — Extreme Pivots Table (Ruiz et al.), a CPU table-based baseline.

EPT is the third table-based CPU method named in the paper's related work
(Section 2).  Instead of storing the distances from every object to *every*
pivot (as LAESA does), EPT keeps ``num_groups`` pivot groups and, per group,
each object stores only its distance to the *single* pivot of the group that
discriminates it best — the pivot whose distance to the object deviates the
most from the typical pivot-to-object distance ``mu``.  That keeps the table
at ``n x num_groups`` entries while retaining most of the pruning power of a
much larger pivot set.

The query procedure mirrors LAESA: compute the distances from the query to
all pivots once, derive a per-object lower bound from the stored
(pivot, distance) pairs, and verify only the survivors.  Answers are exact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["ExtremePivotsTable"]


class ExtremePivotsTable(CPUSimilarityIndex):
    """Exact CPU extreme-pivots table index."""

    name = "EPT"

    def __init__(
        self,
        metric,
        cpu_spec=None,
        num_groups: int = 4,
        pivots_per_group: int = 4,
        sample_size: int = 64,
        seed: int = 47,
    ):
        super().__init__(metric, cpu_spec)
        if num_groups < 1 or pivots_per_group < 1:
            raise BaselineError("EPT needs at least one group with at least one pivot")
        self.num_groups = int(num_groups)
        self.pivots_per_group = int(pivots_per_group)
        self.sample_size = int(sample_size)
        self._rng = np.random.default_rng(seed)
        #: pivot objects per group, ``[group][pivot]``
        self._group_pivots: list[list] = []
        #: flat list of (group, pivot_index) -> global pivot position
        self._pivot_offsets: list[int] = []
        #: per object and group: index of the selected pivot within the group
        self._selected: np.ndarray = np.zeros((0, 0), dtype=np.int64)
        #: per object and group: distance to the selected pivot
        self._selected_dist: np.ndarray = np.zeros((0, 0), dtype=np.float64)

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        live = self.live_ids().tolist()
        groups = min(self.num_groups, len(live))
        per_group = min(self.pivots_per_group, len(live))
        self._group_pivots = []
        n = len(self._objects)
        self._selected = np.zeros((n, groups), dtype=np.int64)
        self._selected_dist = np.full((n, groups), np.inf, dtype=np.float64)
        mu = self._estimate_mean_distance(live)
        for g in range(groups):
            pivot_ids = self._rng.choice(live, size=per_group, replace=False)
            pivots = [self._objects[int(i)] for i in pivot_ids]
            self._group_pivots.append(pivots)
            # distances from every pivot of the group to every live object
            dists = np.stack(
                [
                    self.executor.distances(self.metric, pivot, [self._objects[i] for i in live],
                                            label="ept-table")
                    for pivot in pivots
                ]
            )
            # the extreme pivot of an object deviates the most from mu
            deviation = np.abs(dists - mu)
            chosen = np.argmax(deviation, axis=0)
            self._selected[live, g] = chosen
            self._selected_dist[live, g] = dists[chosen, np.arange(len(live))]

    def _estimate_mean_distance(self, live: list[int]) -> float:
        """Estimate the typical pairwise distance ``mu`` from a small sample."""
        size = min(self.sample_size, len(live))
        if size < 2:
            return 0.0
        sample = self._rng.choice(live, size=size, replace=False)
        left = sample[: size // 2]
        right = sample[size // 2: 2 * (size // 2)]
        dists = [
            self.executor.distance(self.metric, self._objects[int(a)], self._objects[int(b)],
                                   label="ept-sample")
            for a, b in zip(left, right)
        ]
        return float(np.mean(dists)) if dists else 0.0

    @property
    def storage_bytes(self) -> int:
        pivot_count = sum(len(g) for g in self._group_pivots)
        return int(self._selected.size * (8 + 8) + pivot_count * 8)

    # --------------------------------------------------------------- queries
    def _query_pivot_distances(self, query) -> list[np.ndarray]:
        """Distances from the query to every pivot, grouped like the table."""
        return [
            self.executor.distances(self.metric, query, pivots, label="ept-query-pivots")
            for pivots in self._group_pivots
        ]

    def _lower_bounds(self, live: np.ndarray, query_dists: list[np.ndarray]) -> np.ndarray:
        bounds = np.zeros(len(live), dtype=np.float64)
        for g, dq in enumerate(query_dists):
            sel = self._selected[live, g]
            lb = np.abs(self._selected_dist[live, g] - dq[sel])
            bounds = np.maximum(bounds, lb)
        return bounds

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        live = self.live_ids()
        out = []
        for query, radius in zip(queries, radii_arr):
            radius = float(radius)
            query_dists = self._query_pivot_distances(query)
            bounds = self._lower_bounds(live, query_dists)
            hits: list[tuple[int, float]] = []
            for obj_id in live[bounds <= radius]:
                dist = self.executor.distance(self.metric, query, self._objects[int(obj_id)])
                if dist <= radius:
                    hits.append((int(obj_id), float(dist)))
            out.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return out

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        live = self.live_ids()
        out = []
        for query, kk in zip(queries, k_arr):
            kk = int(kk)
            query_dists = self._query_pivot_distances(query)
            bounds = self._lower_bounds(live, query_dists)
            order = np.argsort(bounds, kind="stable")
            pool: list[tuple[float, int]] = []
            bound = np.inf
            for idx in order:
                if bounds[idx] >= bound and len(pool) >= kk:
                    break
                obj_id = int(live[idx])
                dist = float(self.executor.distance(self.metric, query, self._objects[obj_id]))
                pool.append((dist, obj_id))
                pool.sort()
                if len(pool) > kk:
                    pool = pool[:kk]
                if len(pool) == kk:
                    bound = pool[-1][0]
            out.append([(obj_id, dist) for dist, obj_id in pool])
        return out

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Compute the new object's extreme pivot per group and append its row."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        groups = len(self._group_pivots)
        selected_row = np.zeros((1, groups), dtype=np.int64)
        dist_row = np.full((1, groups), np.inf, dtype=np.float64)
        for g, pivots in enumerate(self._group_pivots):
            dists = self.executor.distances(self.metric, obj, pivots, label="ept-insert")
            chosen = int(np.argmax(np.abs(dists - float(np.mean(dists)))))
            selected_row[0, g] = chosen
            dist_row[0, g] = dists[chosen]
        self._selected = np.vstack([self._selected, selected_row])
        self._selected_dist = np.vstack([self._selected_dist, dist_row])
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object from answers, keep its table row."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
