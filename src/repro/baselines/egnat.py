"""EGNAT — Evolutionary/Extended GNAT (Navarro & Uribe-Paredes), a CPU baseline.

EGNAT is the paper's "hybrid" CPU competitor: a Geometric Near-neighbor
Access Tree whose every internal node

* selects ``arity`` split points among its objects,
* assigns every remaining object to its closest split point, and
* pre-computes, for every (split point ``i``, subtree ``j``) pair, the
  ``[min, max]`` range of distances from split point ``i`` to the objects of
  subtree ``j``.

At query time the distances from the query to the node's split points prune
whole subtrees via those ranges.  The pre-computed ``arity × arity`` range
tables are also the reason for EGNAT's very large memory footprint — the
behaviour behind its out-of-memory entries in Table 4 and Fig. 11 — which the
optional ``memory_budget_bytes`` reproduces: construction aborts with
:class:`~repro.exceptions.BaselineError` once the estimated index size
exceeds the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError, HostMemoryError
from .base import CPUSimilarityIndex

__all__ = ["EGNAT"]


@dataclass
class _GNATNode:
    """One node of the (E)GNAT."""

    object_ids: list[int] = field(default_factory=list)
    split_ids: list[int] = field(default_factory=list)
    split_objs: list = field(default_factory=list)
    #: ranges[i][j] = (min, max) distance from split point i to subtree j
    ranges: list[list[tuple[float, float]]] = field(default_factory=list)
    children: list["_GNATNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class EGNAT(CPUSimilarityIndex):
    """Exact CPU GNAT-style index with pre-computed range tables."""

    name = "EGNAT"

    def __init__(
        self,
        metric,
        cpu_spec=None,
        arity: int = 8,
        leaf_size: int = 16,
        seed: int = 31,
        memory_budget_bytes: Optional[int] = None,
    ):
        super().__init__(metric, cpu_spec)
        if arity < 2:
            raise BaselineError("EGNAT arity must be at least 2")
        self.arity = int(arity)
        self.leaf_size = int(leaf_size)
        self.memory_budget_bytes = memory_budget_bytes
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_GNATNode] = None
        self._node_count = 0
        self._range_cells = 0

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._node_count = 0
        self._range_cells = 0
        self._root = self._build_node(self.live_ids().tolist())

    def _check_budget(self) -> None:
        if self.memory_budget_bytes is not None and self.storage_bytes > self.memory_budget_bytes:
            raise HostMemoryError(
                f"EGNAT ran out of memory: index needs more than "
                f"{self.memory_budget_bytes} bytes (pre-computed range tables)"
            )

    def _build_node(self, ids: list[int]) -> _GNATNode:
        self._node_count += 1
        self._check_budget()
        node = _GNATNode(object_ids=list(ids))
        if len(ids) <= max(self.leaf_size, self.arity):
            return node
        # split point selection: greedy farthest-first among a random sample
        split_ids = [ids[int(self._rng.integers(0, len(ids)))]]
        objs = [self._objects[i] for i in ids]
        while len(split_ids) < self.arity:
            dmin = np.full(len(ids), np.inf)
            for sid in split_ids:
                d = self.executor.distances(self.metric, self._objects[sid], objs)
                dmin = np.minimum(dmin, d)
            candidate = ids[int(np.argmax(dmin))]
            if candidate in split_ids:
                break
            split_ids.append(candidate)
        if len(split_ids) < 2:
            return node
        # assign objects to their closest split point
        dist_to_splits = np.stack(
            [self.executor.distances(self.metric, self._objects[sid], objs) for sid in split_ids]
        )
        nearest = np.argmin(dist_to_splits, axis=0)
        groups: list[list[int]] = [[] for _ in split_ids]
        position_of = {obj_id: pos for pos, obj_id in enumerate(ids)}
        for pos, obj_id in enumerate(ids):
            groups[int(nearest[pos])].append(obj_id)
        if sum(1 for g in groups if g) < 2:
            return node
        node.object_ids = []
        node.split_ids = split_ids
        node.split_objs = [self._objects[sid] for sid in split_ids]
        # pre-computed (split, subtree) distance ranges — the expensive part
        node.ranges = []
        for i in range(len(split_ids)):
            row = []
            for j, group in enumerate(groups):
                if not group:
                    row.append((np.inf, -np.inf))
                    continue
                d = dist_to_splits[i][[position_of[g] for g in group]]
                row.append((float(d.min()), float(d.max())))
                self._range_cells += 1
            node.ranges.append(row)
        self._check_budget()
        node.children = [self._build_node(group) if group else _GNATNode() for group in groups]
        return node

    @property
    def storage_bytes(self) -> int:
        # Each range cell stores two doubles; nodes store split ids and
        # pointers; in addition EGNAT keeps, for every object, the distances
        # to its ancestors' split points (the per-leaf distance tables that
        # make it the most storage-hungry CPU method in Table 4).
        return int(
            self._range_cells * 16
            + self._node_count * (self.arity * 16 + 16)
            + self.num_objects * (8 + self.arity * 8 * 4)
        )

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            hits: list[tuple[int, float]] = []
            self._range_rec(self._root, query, float(radius), hits)
            out.append(sorted(set(hits), key=lambda p: (p[1], p[0])))
        return out

    def _range_rec(self, node: _GNATNode, query, radius: float, hits: list) -> None:
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if not live:
                return
            dists = self.executor.distances(self.metric, query, [self._objects[i] for i in live])
            for obj_id, dist in zip(live, dists):
                if dist <= radius:
                    hits.append((int(obj_id), float(dist)))
            return
        split_dists = [
            self.executor.distance(self.metric, query, obj) for obj in node.split_objs
        ]
        for sid, dist in zip(node.split_ids, split_dists):
            if self._objects[sid] is not None and dist <= radius:
                hits.append((int(sid), float(dist)))
        alive = [True] * len(node.children)
        for i, dqs in enumerate(split_dists):
            for j in range(len(node.children)):
                if not alive[j]:
                    continue
                lo, hi = node.ranges[i][j]
                if dqs + radius < lo or dqs - radius > hi:
                    alive[j] = False
        for j, child in enumerate(node.children):
            if alive[j] and child.object_ids or (alive[j] and not child.is_leaf):
                self._range_rec(child, query, radius, hits)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            pool: dict[int, float] = {}
            self._knn_rec(self._root, query, int(kk), pool)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[: int(kk)]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out

    def _knn_bound(self, pool: dict, k: int) -> float:
        if len(pool) < k:
            return np.inf
        return sorted(pool.values())[k - 1]

    def _knn_rec(self, node: _GNATNode, query, k: int, pool: dict) -> None:
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if not live:
                return
            dists = self.executor.distances(self.metric, query, [self._objects[i] for i in live])
            for obj_id, dist in zip(live, dists):
                prev = pool.get(int(obj_id))
                if prev is None or dist < prev:
                    pool[int(obj_id)] = float(dist)
            return
        split_dists = [
            self.executor.distance(self.metric, query, obj) for obj in node.split_objs
        ]
        for sid, dist in zip(node.split_ids, split_dists):
            if self._objects[sid] is not None:
                prev = pool.get(int(sid))
                if prev is None or dist < prev:
                    pool[int(sid)] = float(dist)
        # visit children ordered by the distance to their split point
        order = np.argsort(split_dists)
        for j in order:
            child = node.children[int(j)]
            if child.is_leaf and not child.object_ids:
                continue
            bound = self._knn_bound(pool, k)
            prunable = False
            for i, dqs in enumerate(split_dists):
                lo, hi = node.ranges[i][int(j)]
                if dqs + bound < lo or dqs - bound > hi:
                    prunable = True
                    break
            if not prunable:
                self._knn_rec(child, query, k, pool)

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Structural insertion: descend to the closest split point's subtree."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        node = self._root
        while not node.is_leaf:
            dists = [self.executor.distance(self.metric, obj, o) for o in node.split_objs]
            j = int(np.argmin(dists))
            # widen the affected ranges so pruning stays correct
            for i, d in enumerate(dists):
                lo, hi = node.ranges[i][j]
                node.ranges[i][j] = (min(lo, float(d)), max(hi, float(d)))
            node = node.children[j]
        node.object_ids.append(obj_id)
        if len(node.object_ids) > 4 * max(self.leaf_size, self.arity):
            rebuilt = self._build_node([i for i in node.object_ids if self._objects[i] is not None])
            node.__dict__.update(rebuilt.__dict__)
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object from query answers."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
