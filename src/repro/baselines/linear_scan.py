"""Sequential linear scan — the correctness oracle and the trivial CPU baseline.

Not one of the paper's named competitors, but indispensable for the test
suite: every other method's answers are checked against this one.  It also
serves as the "no index" reference point in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from .base import CPUSimilarityIndex

__all__ = ["LinearScan"]


class LinearScan(CPUSimilarityIndex):
    """Exact brute-force scan over all live objects."""

    name = "LinearScan"

    def _build_impl(self) -> None:
        # Nothing to build: the "index" is the raw object list.
        self._live = self.live_ids()

    @property
    def storage_bytes(self) -> int:
        return int(self._live.nbytes)

    def _scan(self, query) -> tuple[np.ndarray, np.ndarray]:
        ids = self._live
        objs = [self._objects[int(i)] for i in ids]
        dists = self.executor.distances(self.metric, query, objs, label="scan")
        return ids, dists

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            ids, dists = self._scan(query)
            hit = dists <= radius
            pairs = sorted(
                zip(ids[hit].tolist(), dists[hit].tolist()), key=lambda p: (p[1], p[0])
            )
            out.append([(int(i), float(d)) for i, d in pairs])
        return out

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            ids, dists = self._scan(query)
            order = np.lexsort((ids, dists))[: int(kk)]
            out.append([(int(ids[i]), float(dists[i])) for i in order])
        return out

    def insert(self, obj) -> int:
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        self._live = self.live_ids()
        self.executor.execute(1.0, label="insert")
        return obj_id

    def delete(self, obj_id: int) -> None:
        self._require_built()
        super_objects = self._objects
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(super_objects) or super_objects[obj_id] is None:
            from ..exceptions import BaselineError

            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        super_objects[obj_id] = None
        self._live = self.live_ids()
        self.executor.execute(1.0, label="delete")
