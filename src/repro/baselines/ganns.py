"""GANNS — GPU-accelerated proximity-graph ANN search (approximate, vectors only).

The paper compares GTS against GANNS [58], a GPU graph-based *approximate*
nearest-neighbour method.  Its profile in the evaluation:

* vector data only (T-Loc, Vector, Color), kNN only — no range queries and no
  exactness guarantee;
* very fast MkNNQ once built (it beats GTS on raw kNN latency, Section 6.3);
* expensive construction and a much larger index than GTS — the paper reports
  roughly 40× more storage and >10× longer build time (Table 4) — and
  out-of-memory failures on the largest datasets (Fig. 11);
* a full rebuild for any data update (Fig. 5).

The implementation builds a navigable proximity graph: every object is linked
to its ``degree`` (approximate) nearest neighbours, computed block-wise on the
device, then searched with best-first beam search (``ef`` candidates) from
several entry points.  Recall is high but not guaranteed — the evaluation
harness reports it separately.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError, MemoryDeadlockError, UnsupportedMetricError
from ..gpusim.kernels import distance_matrix_kernel
from ..metrics.base import Metric
from .base import GPUSimilarityIndex

__all__ = ["GANNS"]


class GANNS(GPUSimilarityIndex):
    """Proximity-graph approximate kNN search on the simulated GPU."""

    name = "GANNS"
    is_exact = False
    supports_range = False

    def __init__(
        self,
        metric,
        device=None,
        degree: int = 16,
        ef_search: int = 48,
        num_entry_points: int = 8,
        long_range_links: int = 2,
        build_block: int = 1024,
        seed: int = 41,
    ):
        super().__init__(metric, device)
        self.degree = int(degree)
        self.ef_search = int(ef_search)
        self.num_entry_points = int(num_entry_points)
        self.long_range_links = int(long_range_links)
        self.build_block = int(build_block)
        self._rng = np.random.default_rng(seed)
        self._neighbors: np.ndarray | None = None

    @classmethod
    def supports_metric(cls, metric: Metric) -> bool:
        return bool(metric.supports_vectors)

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        # release allocations of any previous build (rebuild-on-update path)
        for attr in ("_data_alloc", "_graph_alloc"):
            alloc = getattr(self, attr, None)
            if alloc is not None:
                self.device.free(alloc)
        live = self.live_ids()
        data = np.asarray([self._objects[int(i)] for i in live], dtype=np.float64)
        self._live = live
        self._data = data
        n = len(live)
        self.device.transfer_to_device(data.nbytes)
        self._data_alloc = self.device.allocate(data.nbytes, "ganns-objects")

        degree = min(self.degree, max(1, n - 1))
        neighbors = np.zeros((n, degree), dtype=np.int64)
        # The kNN graph is built block-against-all on the device; the block
        # distance tables are what make GANNS construction slow and memory
        # hungry compared with GTS.
        for start in range(0, n, self.build_block):
            stop = min(start + self.build_block, n)
            block_bytes = (stop - start) * n * 8
            try:
                alloc = self.device.allocate(block_bytes, "ganns-build-block")
            except Exception as exc:
                raise MemoryDeadlockError(
                    f"GANNS graph construction block of {block_bytes} bytes does not fit: {exc}"
                ) from exc
            table = distance_matrix_kernel(
                self.device, self.metric, data[start:stop], data, label="ganns-build"
            )
            for row in range(stop - start):
                table[row, start + row] = np.inf  # exclude self
                idx = np.argpartition(table[row], degree - 1)[:degree]
                idx = idx[np.argsort(table[row][idx], kind="stable")]
                neighbors[start + row] = idx
            self.device.sort_cost(n, label="ganns-build-select")
            self.device.free(alloc)
        # a few random long-range links per node keep the graph navigable
        # across clusters (the NSW-style shortcut edges real systems rely on)
        if self.long_range_links > 0 and n > degree + 1:
            shortcuts = self._rng.integers(0, n, size=(n, self.long_range_links))
            neighbors[:, -self.long_range_links:] = shortcuts
        self._neighbors = neighbors
        self._graph_alloc = self.device.allocate(neighbors.nbytes + n * 8 * 4, "ganns-graph")
        self._entry_points = self._rng.choice(n, size=min(self.num_entry_points, n), replace=False)

    @property
    def storage_bytes(self) -> int:
        if self._neighbors is None:
            return 0
        # adjacency lists plus per-node metadata (visited flags, priority slots)
        return int(self._neighbors.nbytes + len(self._neighbors) * 8 * 4)

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        raise BaselineError("GANNS supports only kNN queries (no metric range queries)")

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        queries_arr = np.asarray(queries, dtype=np.float64)
        k_arr = broadcast_query_param(k, len(queries_arr), "k", np.int64)
        out: list[list[tuple[int, float]]] = []
        total_work = 0
        host_start = time.perf_counter()
        for qi, query in enumerate(queries_arr):
            kk = int(k_arr[qi])
            result, work = self._beam_search(query, kk)
            total_work += work
            out.append(result)
        host = time.perf_counter() - host_start
        self.device.launch_kernel(
            work_items=total_work,
            op_cost=self.metric.unit_cost,
            label="ganns-search",
            host_time=host,
        )
        return out

    def _beam_search(self, query: np.ndarray, k: int) -> tuple[list[tuple[int, float]], int]:
        """Best-first beam search over the proximity graph."""
        ef = max(self.ef_search, k)
        dists_entry = self.metric.pairwise(query, self._data[self._entry_points])
        work = len(self._entry_points)
        visited = set(int(e) for e in self._entry_points)
        # candidate frontier and result beam, both kept small and sorted
        frontier = sorted(zip(dists_entry.tolist(), self._entry_points.tolist()))
        beam = list(frontier)
        while frontier:
            dist, node = frontier.pop(0)
            if len(beam) >= ef and dist > beam[min(ef, len(beam)) - 1][0]:
                break
            neigh = [int(x) for x in self._neighbors[int(node)] if int(x) not in visited]
            if not neigh:
                continue
            visited.update(neigh)
            nd = self.metric.pairwise(query, self._data[neigh])
            work += len(neigh)
            for d, nid in zip(nd.tolist(), neigh):
                beam.append((d, nid))
                frontier.append((d, nid))
            beam.sort()
            beam = beam[:ef]
            frontier.sort()
        top = beam[:k]
        return [(int(self._live[nid]), float(d)) for d, nid in top], work
