"""MVPT — multi-vantage-point tree (Bozkaya & Özsoyoglu), a CPU baseline.

The paper calls MVPT "the most efficient CPU-based in-memory metric index"
and models GTS's own node layout on it.  This implementation follows the
classical design:

* every internal node selects a vantage point (pivot) from its objects;
* the remaining objects are ordered by their distance to the vantage point
  and split into ``fanout`` equal-size children; each child remembers the
  ``[min, max]`` distance range it covers;
* in addition, every object keeps the distances to its first
  ``path_length`` ancestor vantage points ("path distances"), which filter
  candidates at the leaves before any real distance is computed.

Range queries prune a child when the query ball cannot intersect its distance
range; kNN queries do the same with the running k-th bound.  All answers are
exact.  Being a CPU method it runs sequentially on the simulated CPU
executor, one query at a time — the very bottleneck GTS is built to remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["MVPTree"]


@dataclass
class _MVPNode:
    """One node of the MVP-tree."""

    object_ids: list[int] = field(default_factory=list)
    vantage_id: Optional[int] = None
    vantage_obj: object = None
    child_ranges: list[tuple[float, float]] = field(default_factory=list)
    children: list["_MVPNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class MVPTree(CPUSimilarityIndex):
    """Exact CPU multi-vantage-point tree."""

    name = "MVPT"

    def __init__(
        self,
        metric,
        cpu_spec=None,
        fanout: int = 4,
        leaf_size: int = 16,
        path_length: int = 4,
        seed: int = 29,
    ):
        super().__init__(metric, cpu_spec)
        if fanout < 2:
            raise BaselineError("MVPT fanout must be at least 2")
        if leaf_size < 1:
            raise BaselineError("MVPT leaf size must be at least 1")
        self.fanout = int(fanout)
        self.leaf_size = int(leaf_size)
        self.path_length = int(path_length)
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_MVPNode] = None
        self._node_count = 0
        #: per-object distances to its first ``path_length`` ancestor pivots
        self._path_dists: dict[int, list[float]] = {}

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._node_count = 0
        self._path_dists = {int(i): [] for i in self.live_ids()}
        self._root = self._build_node(self.live_ids().tolist(), depth=0)

    def _build_node(self, ids: list[int], depth: int) -> _MVPNode:
        self._node_count += 1
        node = _MVPNode(object_ids=list(ids))
        if len(ids) <= max(self.leaf_size, self.fanout):
            return node
        vantage = ids[int(self._rng.integers(0, len(ids)))]
        dists = self.executor.distances(
            self.metric, self._objects[vantage], [self._objects[i] for i in ids]
        )
        if depth < self.path_length:
            for obj_id, dist in zip(ids, dists):
                self._path_dists[int(obj_id)].append(float(dist))
        order = np.argsort(dists, kind="stable")
        sorted_ids = [ids[i] for i in order]
        sorted_dists = dists[order]
        if sorted_dists[0] == sorted_dists[-1]:
            return node  # all objects at the same distance: nothing to split on
        node.vantage_id = vantage
        node.vantage_obj = self._objects[vantage]
        node.object_ids = []
        chunk = len(ids) // self.fanout
        for j in range(self.fanout):
            lo = j * chunk
            hi = (j + 1) * chunk if j < self.fanout - 1 else len(ids)
            child_ids = sorted_ids[lo:hi]
            if not child_ids:
                continue
            lo_d = float(sorted_dists[lo])
            hi_d = float(sorted_dists[hi - 1])
            node.child_ranges.append((lo_d, hi_d))
            node.children.append(self._build_node(child_ids, depth + 1))
        return node

    @property
    def storage_bytes(self) -> int:
        per_node = 8 + self.fanout * (16 + 8)
        path_bytes = sum(len(v) for v in self._path_dists.values()) * 8
        return int(self._node_count * per_node + self.num_objects * 8 + path_bytes)

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            hits: list[tuple[int, float]] = []
            self._range_rec(self._root, query, float(radius), hits)
            out.append(sorted(set(hits), key=lambda p: (p[1], p[0])))
        return out

    def _verify_leaf(self, node: _MVPNode, query, hits_or_pool, radius=None, pool=None, k=None):
        live = [i for i in node.object_ids if self._objects[i] is not None]
        if not live:
            return
        dists = self.executor.distances(self.metric, query, [self._objects[i] for i in live])
        for obj_id, dist in zip(live, dists):
            if radius is not None:
                if dist <= radius:
                    hits_or_pool.append((int(obj_id), float(dist)))
            else:
                prev = pool.get(int(obj_id))
                if prev is None or dist < prev:
                    pool[int(obj_id)] = float(dist)

    def _range_rec(self, node: _MVPNode, query, radius: float, hits: list) -> None:
        if node.is_leaf:
            self._verify_leaf(node, query, hits, radius=radius)
            return
        dv = self.executor.distance(self.metric, query, node.vantage_obj)
        if self._objects[node.vantage_id] is not None and dv <= radius:
            hits.append((int(node.vantage_id), float(dv)))
        for (lo, hi), child in zip(node.child_ranges, node.children):
            if dv + radius >= lo and dv - radius <= hi:
                self._range_rec(child, query, radius, hits)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            pool: dict[int, float] = {}
            self._knn_rec(self._root, query, int(kk), pool)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[: int(kk)]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out

    def _knn_bound(self, pool: dict, k: int) -> float:
        if len(pool) < k:
            return np.inf
        return sorted(pool.values())[k - 1]

    def _knn_rec(self, node: _MVPNode, query, k: int, pool: dict) -> None:
        if node.is_leaf:
            self._verify_leaf(node, query, None, pool=pool)
            return
        dv = self.executor.distance(self.metric, query, node.vantage_obj)
        if self._objects[node.vantage_id] is not None:
            prev = pool.get(int(node.vantage_id))
            if prev is None or dv < prev:
                pool[int(node.vantage_id)] = float(dv)
        # nearest-range-first order tightens the bound early
        order = sorted(
            range(len(node.children)),
            key=lambda j: max(0.0, max(node.child_ranges[j][0] - dv, dv - node.child_ranges[j][1])),
        )
        for j in order:
            lo, hi = node.child_ranges[j]
            bound = self._knn_bound(pool, k)
            if dv + bound >= lo and dv - bound <= hi:
                self._knn_rec(node.children[j], query, k, pool)

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Structural insertion: route to the child whose range is nearest."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        self._path_dists[obj_id] = []
        node = self._root
        while not node.is_leaf:
            dv = self.executor.distance(self.metric, obj, node.vantage_obj)
            best_j = 0
            best_gap = np.inf
            for j, (lo, hi) in enumerate(node.child_ranges):
                gap = max(0.0, max(lo - dv, dv - hi))
                if gap < best_gap:
                    best_gap, best_j = gap, j
            lo, hi = node.child_ranges[best_j]
            node.child_ranges[best_j] = (min(lo, dv), max(hi, dv))
            node = node.children[best_j]
        node.object_ids.append(obj_id)
        if len(node.object_ids) > 4 * max(self.leaf_size, self.fanout):
            rebuilt = self._build_node(
                [i for i in node.object_ids if self._objects[i] is not None], depth=self.path_length
            )
            node.__dict__.update(rebuilt.__dict__)
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object from query answers."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
