"""BST — the Bisector Tree of Kalantari & McDonald (1983), a CPU baseline.

The bisector tree is the oldest of the paper's CPU competitors (Table 4 and
Figs. 5/7/9/11).  Every internal node holds two *centers* drawn from its
objects; each remaining object is assigned to its nearer center, and each of
the two resulting groups stores the covering radius of its center.  Queries
descend recursively and skip a subtree whenever the query ball cannot
intersect the subtree's covering ball:

    ``d(q, center) > covering_radius + r``            (range query)
    ``d(q, center) >= covering_radius + d(q, k_cur)``  (kNN)

Construction recursion stops when a node holds at most ``leaf_size`` objects.
Updates are structural: an insertion walks down to the closer center and
appends to a leaf (splitting it when it overflows), which is why BST-style
CPU trees win the *streaming* update comparison of Fig. 5(a) while losing the
batch one of Fig. 5(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["BisectorTree"]


@dataclass
class _BSTNode:
    """One node of the bisector tree."""

    object_ids: list[int] = field(default_factory=list)
    center_a: Optional[int] = None
    center_b: Optional[int] = None
    #: the center objects are stored by value so that lazily deleting the
    #: underlying object never breaks routing decisions
    center_a_obj: object = None
    center_b_obj: object = None
    radius_a: float = 0.0
    radius_b: float = 0.0
    child_a: Optional["_BSTNode"] = None
    child_b: Optional["_BSTNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.child_a is None and self.child_b is None


class BisectorTree(CPUSimilarityIndex):
    """Exact CPU bisector-tree index."""

    name = "BST"

    def __init__(self, metric, cpu_spec=None, leaf_size: int = 16, seed: int = 23):
        super().__init__(metric, cpu_spec)
        if leaf_size < 2:
            raise BaselineError("BST leaf size must be at least 2")
        self.leaf_size = int(leaf_size)
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_BSTNode] = None
        self._node_count = 0

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._node_count = 0
        ids = self.live_ids().tolist()
        self._root = self._build_node(ids)

    def _build_node(self, ids: list[int]) -> _BSTNode:
        self._node_count += 1
        node = _BSTNode(object_ids=list(ids))
        if len(ids) <= self.leaf_size:
            return node
        # pick two distinct centers: one random, the other the farthest from it
        first = ids[int(self._rng.integers(0, len(ids)))]
        dists_first = self.executor.distances(
            self.metric, self._objects[first], [self._objects[i] for i in ids]
        )
        second = ids[int(np.argmax(dists_first))]
        if second == first:
            return node  # all objects identical: keep as an (over-full) leaf
        dists_second = self.executor.distances(
            self.metric, self._objects[second], [self._objects[i] for i in ids]
        )
        group_a, group_b = [], []
        rad_a, rad_b = 0.0, 0.0
        for obj_id, da, db in zip(ids, dists_first, dists_second):
            if da <= db:
                group_a.append(obj_id)
                rad_a = max(rad_a, float(da))
            else:
                group_b.append(obj_id)
                rad_b = max(rad_b, float(db))
        if not group_a or not group_b:
            return node
        node.object_ids = []
        node.center_a, node.center_b = first, second
        node.center_a_obj = self._objects[first]
        node.center_b_obj = self._objects[second]
        node.radius_a, node.radius_b = rad_a, rad_b
        node.child_a = self._build_node(group_a)
        node.child_b = self._build_node(group_b)
        return node

    @property
    def storage_bytes(self) -> int:
        # centers, radii and child pointers per node plus one id slot per object
        return int(self._node_count * 48 + self.num_objects * 8)

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            hits: list[tuple[int, float]] = []
            self._range_rec(self._root, query, float(radius), hits)
            out.append(sorted(hits, key=lambda p: (p[1], p[0])))
        return out

    def _range_rec(self, node: _BSTNode, query, radius: float, hits: list) -> None:
        if node is None:
            return
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if not live:
                return
            dists = self.executor.distances(
                self.metric, query, [self._objects[i] for i in live]
            )
            for obj_id, dist in zip(live, dists):
                if dist <= radius:
                    hits.append((int(obj_id), float(dist)))
            return
        da = self.executor.distance(self.metric, query, node.center_a_obj)
        db = self.executor.distance(self.metric, query, node.center_b_obj)
        if self._objects[node.center_a] is not None and da <= radius:
            hits.append((int(node.center_a), float(da)))
        if self._objects[node.center_b] is not None and db <= radius:
            hits.append((int(node.center_b), float(db)))
        if da <= node.radius_a + radius:
            self._range_rec(node.child_a, query, radius, hits)
        if db <= node.radius_b + radius:
            self._range_rec(node.child_b, query, radius, hits)

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            pool: dict[int, float] = {}
            self._knn_rec(self._root, query, int(kk), pool)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[: int(kk)]
            out.append([(int(i), float(d)) for i, d in ranked])
        return out

    def _knn_bound(self, pool: dict, k: int) -> float:
        if len(pool) < k:
            return np.inf
        return sorted(pool.values())[k - 1]

    def _knn_rec(self, node: _BSTNode, query, k: int, pool: dict) -> None:
        if node is None:
            return
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if not live:
                return
            dists = self.executor.distances(
                self.metric, query, [self._objects[i] for i in live]
            )
            for obj_id, dist in zip(live, dists):
                prev = pool.get(int(obj_id))
                if prev is None or dist < prev:
                    pool[int(obj_id)] = float(dist)
            return
        da = self.executor.distance(self.metric, query, node.center_a_obj)
        db = self.executor.distance(self.metric, query, node.center_b_obj)
        if self._objects[node.center_a] is not None:
            pool[int(node.center_a)] = min(pool.get(int(node.center_a), np.inf), float(da))
        if self._objects[node.center_b] is not None:
            pool[int(node.center_b)] = min(pool.get(int(node.center_b), np.inf), float(db))
        # visit the nearer subtree first so the bound tightens quickly
        order = [(da, node.radius_a, node.child_a), (db, node.radius_b, node.child_b)]
        order.sort(key=lambda item: item[0])
        for dist, covering, child in order:
            bound = self._knn_bound(pool, k)
            if dist <= covering + bound:
                self._knn_rec(child, query, k, pool)

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Structural insertion: descend to the nearer center, append to a leaf."""
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        node = self._root
        while not node.is_leaf:
            da = self.executor.distance(self.metric, obj, node.center_a_obj)
            db = self.executor.distance(self.metric, obj, node.center_b_obj)
            if da <= db:
                node.radius_a = max(node.radius_a, float(da))
                node = node.child_a
            else:
                node.radius_b = max(node.radius_b, float(db))
                node = node.child_b
        node.object_ids.append(obj_id)
        if len(node.object_ids) > 4 * self.leaf_size:
            rebuilt = self._build_node([i for i in node.object_ids if self._objects[i] is not None])
            node.__dict__.update(rebuilt.__dict__)
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: the object is hidden from queries; structure unchanged."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
