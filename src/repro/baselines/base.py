"""Common interface of every baseline index used in the paper's evaluation.

The evaluation (Section 6) compares GTS against seven competitors.  They all
implement :class:`SimilarityIndex`, which mirrors the public surface of
:class:`repro.core.gts.GTS` — ``build``, ``range_query_batch``,
``knn_query_batch``, streaming ``insert`` / ``delete`` and ``batch_update`` —
so the evaluation runner can drive every method identically.

Two execution substrates exist:

* CPU baselines own a :class:`~repro.gpusim.cpu.CPUExecutor`;
* GPU baselines own a :class:`~repro.gpusim.device.Device`.

``sim_stats`` exposes whichever one applies, so throughput is always computed
from the same kind of simulated clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from ..exceptions import BaselineError, UnsupportedMetricError
from ..gpusim.cpu import CPUExecutor
from ..gpusim.device import Device
from ..gpusim.specs import CPUSpec, DeviceSpec
from ..gpusim.stats import ExecutionStats
from ..metrics.base import Metric

__all__ = ["SimilarityIndex", "CPUSimilarityIndex", "GPUSimilarityIndex"]


class SimilarityIndex(ABC):
    """Abstract similarity-search index over a metric space."""

    #: short method name used in reports ("BST", "MVPT", "GTS", ...)
    name: str = "abstract"
    #: whether the method runs on the (simulated) GPU
    is_gpu: bool = False
    #: whether the method returns exact answers
    is_exact: bool = True
    #: whether the method supports metric range queries
    supports_range: bool = True

    def __init__(self, metric: Metric):
        self.metric = metric
        self._objects: list = []
        self._built = False

    # ------------------------------------------------------------ capability
    @classmethod
    def supports_metric(cls, metric: Metric) -> bool:
        """Whether this method can index data under ``metric``.

        General-purpose methods return True unconditionally; special-purpose
        ones (LBPG-Tree, GANNS) override this, which is how the "/" cells of
        Table 4 arise.
        """
        return True

    def _check_metric(self) -> None:
        if not self.supports_metric(self.metric):
            raise UnsupportedMetricError(
                f"{self.name} does not support the {self.metric.name!r} metric"
            )

    # --------------------------------------------------------------- building
    def build(self, objects: Sequence) -> None:
        """Index ``objects``; their positions become the persistent ids."""
        self._check_metric()
        if len(objects) == 0:
            raise BaselineError(f"{self.name}: cannot build over an empty object set")
        self._objects = [objects[i] for i in range(len(objects))]
        self._build_impl()
        self._built = True

    @abstractmethod
    def _build_impl(self) -> None:
        """Method-specific construction over ``self._objects``."""

    def _require_built(self) -> None:
        if not self._built:
            raise BaselineError(f"{self.name}: the index has not been built yet")

    # ---------------------------------------------------------------- queries
    @abstractmethod
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        """Answer a batch of metric range queries."""

    @abstractmethod
    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        """Answer a batch of metric kNN queries."""

    def range_query(self, query, radius: float) -> list[tuple[int, float]]:
        """Single-query convenience wrapper."""
        return self.range_query_batch([query], radius)[0]

    def knn_query(self, query, k: int) -> list[tuple[int, float]]:
        """Single-query convenience wrapper."""
        return self.knn_query_batch([query], k)[0]

    # ---------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Streaming insertion.  Default strategy: rebuild from scratch.

        This default mirrors the paper's observation that most competitors
        (LBPG-Tree, GANNS, and GPU methods in general) have no incremental
        path and must reconstruct; CPU trees override it with their cheaper
        structural insertions.
        """
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        self._build_impl()
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Streaming deletion.  Default strategy: rebuild from scratch."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self._build_impl()

    def batch_update(self, inserts: Sequence = (), deletes: Sequence[int] = ()) -> None:
        """Bulk update: apply all changes then rebuild once."""
        self._require_built()
        for obj_id in deletes:
            obj_id = int(obj_id)
            if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
                raise BaselineError(f"{self.name}: unknown object id {obj_id}")
            self._objects[obj_id] = None
        for obj in inserts:
            self._objects.append(obj)
        self._build_impl()

    # ------------------------------------------------------------- accounting
    @property
    @abstractmethod
    def sim_stats(self) -> ExecutionStats:
        """Execution statistics of the method's substrate."""

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Bytes of index storage (excluding the raw objects)."""

    @property
    def num_objects(self) -> int:
        """Number of live objects currently indexed."""
        return sum(1 for o in self._objects if o is not None)

    def live_ids(self) -> np.ndarray:
        """Ids of the live (non-deleted) objects."""
        return np.array(
            [i for i, o in enumerate(self._objects) if o is not None], dtype=np.int64
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "built" if self._built else "empty"
        return f"{type(self).__name__}({state}, objects={self.num_objects})"


class CPUSimilarityIndex(SimilarityIndex):
    """Baseline running on the sequential CPU cost model."""

    is_gpu = False

    def __init__(self, metric: Metric, cpu_spec: Optional[CPUSpec] = None):
        super().__init__(metric)
        self.executor = CPUExecutor(cpu_spec)

    @property
    def sim_stats(self) -> ExecutionStats:
        return self.executor.stats


class GPUSimilarityIndex(SimilarityIndex):
    """Baseline running on the simulated GPU device."""

    is_gpu = True

    def __init__(self, metric: Metric, device: Optional[Device] = None):
        super().__init__(metric)
        self.device = device or Device(DeviceSpec())

    @property
    def sim_stats(self) -> ExecutionStats:
        return self.device.stats
