"""GPU-Tree — the multi-tree GPU baseline (G-PICS-style) of the evaluation.

The paper's "GPU-Tree" competitor "implements the SOTA GPU-based tree index
G-PICS strategy for general similarity search on a single GPU by constructing
multiple MVP-Trees" (Section 6.1).  Its defining characteristics — and the
weaknesses GTS fixes — are:

* the dataset is divided over ``num_trees`` independent trees so that each
  tree is small enough to be built by a single thread block;
* at query time every query is dispatched to *every* tree, and each
  ``(query, tree)`` pair is handled by one fixed-size thread block that walks
  its tree **sequentially**, node by node;
* every ``(query, tree)`` pair owns a fixed-size result buffer for the whole
  batch, so large batches exhaust device memory — the *memory deadlock* the
  paper demonstrates for 512-query batches on Color (Fig. 9).

The implementation builds per-tree MVP-style partitions and walks them with
exact pruning, so the answers are correct; the timing model charges each
(query, tree) traversal as sequential work within a block, with only
``cores / block_size`` blocks running concurrently — which is precisely why
its throughput trails GTS by an order of magnitude in the reproduced figures.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import MemoryDeadlockError
from .base import GPUSimilarityIndex

__all__ = ["GPUTree"]

#: bytes reserved per (query, tree) pair for its fixed-size result buffer
RESULT_BUFFER_ENTRIES = 256
RESULT_ENTRY_BYTES = 16


@dataclass
class _SubTreeNode:
    """Node of one of the per-partition MVP-style trees."""

    object_ids: list[int] = field(default_factory=list)
    pivot_id: Optional[int] = None
    pivot_obj: object = None
    child_ranges: list[tuple[float, float]] = field(default_factory=list)
    children: list["_SubTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GPUTree(GPUSimilarityIndex):
    """Multi-MVP-tree GPU method with block-sequential traversal (exact)."""

    name = "GPU-Tree"

    def __init__(
        self,
        metric,
        device=None,
        num_trees: int = 32,
        fanout: int = 4,
        leaf_size: int = 16,
        block_size: int = 128,
        seed: int = 37,
    ):
        super().__init__(metric, device)
        self.num_trees = int(num_trees)
        self.fanout = int(fanout)
        self.leaf_size = int(leaf_size)
        self.block_size = int(block_size)
        self._rng = np.random.default_rng(seed)
        self._trees: list[_SubTreeNode] = []
        self._node_count = 0

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        from ..core.construction import objects_nbytes

        alloc = getattr(self, "_data_alloc", None)
        if alloc is not None:
            self.device.free(alloc)
        live = self.live_ids()
        nbytes = objects_nbytes(self._objects, live)
        self.device.transfer_to_device(nbytes)
        self._data_alloc = self.device.allocate(nbytes, "gpu-tree-objects")
        self._node_count = 0
        # round-robin partition of the data over the trees
        partitions: list[list[int]] = [[] for _ in range(self.num_trees)]
        for pos, obj_id in enumerate(live.tolist()):
            partitions[pos % self.num_trees].append(obj_id)
        self._trees = []
        total_build_work = 0
        host_start = time.perf_counter()
        for part in partitions:
            if not part:
                continue
            root, work = self._build_node(part)
            self._trees.append(root)
            total_build_work += work
        host = time.perf_counter() - host_start
        # each tree is built by one block => parallel over trees, sequential inside
        concurrent_trees = max(1, self.device.spec.cores // self.block_size)
        waves = math.ceil(len(self._trees) / concurrent_trees)
        per_tree_work = total_build_work / max(1, len(self._trees))
        self.device.launch_kernel(
            work_items=total_build_work,
            op_cost=self.metric.unit_cost,
            label="gpu-tree-build",
            host_time=host,
        )
        # sequential-inside-a-block penalty: blocks idle while one thread walks
        extra_steps = int(waves * per_tree_work)
        self.device.stats.parallel_steps += extra_steps
        self.device.stats.sim_time += extra_steps * self.metric.unit_cost * self.device.spec.op_time

    def _build_node(self, ids: list[int]) -> tuple[_SubTreeNode, int]:
        self._node_count += 1
        node = _SubTreeNode(object_ids=list(ids))
        work = 0
        if len(ids) <= max(self.leaf_size, self.fanout):
            return node, work
        pivot = ids[int(self._rng.integers(0, len(ids)))]
        dists = self.metric.pairwise(self._objects[pivot], [self._objects[i] for i in ids])
        work += len(ids)
        order = np.argsort(dists, kind="stable")
        if dists[order[0]] == dists[order[-1]]:
            return node, work
        node.pivot_id = pivot
        node.pivot_obj = self._objects[pivot]
        node.object_ids = []
        chunk = len(ids) // self.fanout
        for j in range(self.fanout):
            lo = j * chunk
            hi = (j + 1) * chunk if j < self.fanout - 1 else len(ids)
            child_ids = [ids[i] for i in order[lo:hi]]
            if not child_ids:
                continue
            node.child_ranges.append((float(dists[order[lo]]), float(dists[order[hi - 1]])))
            child, child_work = self._build_node(child_ids)
            node.children.append(child)
            work += child_work
        return node, work

    @property
    def storage_bytes(self) -> int:
        per_node = 8 + self.fanout * 24
        return int(self._node_count * per_node + self.num_objects * 8)

    # --------------------------------------------------------------- queries
    def _allocate_result_buffers(self, num_queries: int):
        pairs = num_queries * len(self._trees)
        nbytes = pairs * RESULT_BUFFER_ENTRIES * RESULT_ENTRY_BYTES
        try:
            return self.device.allocate(nbytes, "gpu-tree-result-buffers")
        except Exception as exc:
            raise MemoryDeadlockError(
                f"GPU-Tree memory deadlock: {num_queries} queries x {len(self._trees)} trees "
                f"need {nbytes} bytes of fixed result buffers: {exc}"
            ) from exc

    def _charge_traversals(self, per_pair_work: list[int], host: float) -> None:
        """Charge block-sequential traversal time for all (query, tree) pairs."""
        concurrent = max(1, self.device.spec.cores // self.block_size)
        total_work = int(sum(per_pair_work))
        self.device.launch_kernel(
            work_items=total_work,
            op_cost=self.metric.unit_cost,
            label="gpu-tree-traverse",
            host_time=host,
        )
        # Sequential traversal inside each block: the wall time is governed by
        # waves of at most `concurrent` pairs, each taking its own sequential
        # distance-computation count (divided by the block's threads that can
        # only cooperate on leaf verification).
        if per_pair_work:
            work = sorted(per_pair_work, reverse=True)
            waves = [work[i : i + concurrent] for i in range(0, len(work), concurrent)]
            extra_steps = int(sum(max(w) for w in waves if w))
            self.device.stats.parallel_steps += extra_steps
            self.device.stats.sim_time += (
                extra_steps * self.metric.unit_cost * self.device.spec.op_time
            )

    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        buffers = self._allocate_result_buffers(len(queries))
        out: list[list[tuple[int, float]]] = []
        per_pair_work: list[int] = []
        host_start = time.perf_counter()
        for qi, query in enumerate(queries):
            hits: dict[int, float] = {}
            for tree in self._trees:
                work = self._range_walk(tree, query, float(radii_arr[qi]), hits)
                per_pair_work.append(work)
            out.append(sorted(hits.items(), key=lambda p: (p[1], p[0])))
        host = time.perf_counter() - host_start
        self._charge_traversals(per_pair_work, host)
        self.device.free(buffers)
        return out

    def _range_walk(self, node: _SubTreeNode, query, radius: float, hits: dict) -> int:
        work = 0
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if live:
                dists = self.metric.pairwise(query, [self._objects[i] for i in live])
                work += len(live)
                for obj_id, dist in zip(live, dists):
                    if dist <= radius:
                        hits[int(obj_id)] = float(dist)
            return work
        dv = self.metric.distance(query, node.pivot_obj)
        work += 1
        if self._objects[node.pivot_id] is not None and dv <= radius:
            hits[int(node.pivot_id)] = float(dv)
        for (lo, hi), child in zip(node.child_ranges, node.children):
            if dv + radius >= lo and dv - radius <= hi:
                work += self._range_walk(child, query, radius, hits)
        return work

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        buffers = self._allocate_result_buffers(len(queries))
        out: list[list[tuple[int, float]]] = []
        per_pair_work: list[int] = []
        host_start = time.perf_counter()
        for qi, query in enumerate(queries):
            pool: dict[int, float] = {}
            kk = int(k_arr[qi])
            for tree in self._trees:
                work = self._knn_walk(tree, query, kk, pool)
                per_pair_work.append(work)
            ranked = sorted(pool.items(), key=lambda p: (p[1], p[0]))[:kk]
            out.append([(int(i), float(d)) for i, d in ranked])
        host = time.perf_counter() - host_start
        self._charge_traversals(per_pair_work, host)
        self.device.free(buffers)
        return out

    def _knn_walk(self, node: _SubTreeNode, query, k: int, pool: dict) -> int:
        work = 0
        if node.is_leaf:
            live = [i for i in node.object_ids if self._objects[i] is not None]
            if live:
                dists = self.metric.pairwise(query, [self._objects[i] for i in live])
                work += len(live)
                for obj_id, dist in zip(live, dists):
                    prev = pool.get(int(obj_id))
                    if prev is None or dist < prev:
                        pool[int(obj_id)] = float(dist)
            return work
        dv = self.metric.distance(query, node.pivot_obj)
        work += 1
        if self._objects[node.pivot_id] is not None:
            prev = pool.get(int(node.pivot_id))
            if prev is None or dv < prev:
                pool[int(node.pivot_id)] = float(dv)
        order = sorted(
            range(len(node.children)),
            key=lambda j: max(0.0, max(node.child_ranges[j][0] - dv, dv - node.child_ranges[j][1])),
        )
        for j in order:
            lo, hi = node.child_ranges[j]
            bound = np.inf if len(pool) < k else sorted(pool.values())[k - 1]
            if dv + bound >= lo and dv - bound <= hi:
                work += self._knn_walk(node.children[j], query, k, pool)
        return work
