"""List of Clusters (Chávez & Navarro), a CPU table/cluster-based baseline.

The List of Clusters is the compact clustering structure cited in the paper's
related work (Section 2) as a prominent table-based CPU method.  The dataset
is decomposed into an ordered list of fixed-size clusters; each cluster keeps

* a *center* object,
* the distances from the center to its bucket members, and
* the *covering radius* ``cr`` (the largest of those distances).

Construction removes the ``bucket_size`` objects closest to each new center,
so every object left for later clusters lies strictly outside the current
cluster ball.  That ordering gives the structure its signature early-stop
rule: if the query ball is fully contained in a cluster ball
(``d(q, c) + r <= cr``), no later cluster can contain an answer and the scan
stops.  All answers are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.searchcommon import broadcast_query_param
from ..exceptions import BaselineError
from .base import CPUSimilarityIndex

__all__ = ["ListOfClusters"]


@dataclass
class _Cluster:
    """One fixed-size cluster of the list."""

    center_id: int
    #: the center object itself, kept so pruning survives center deletion
    center_obj: object
    member_ids: list[int]
    member_dists: list[float]
    covering_radius: float


class ListOfClusters(CPUSimilarityIndex):
    """Exact CPU List-of-Clusters index."""

    name = "LC"

    def __init__(self, metric, cpu_spec=None, bucket_size: int = 16, seed: int = 43):
        super().__init__(metric, cpu_spec)
        if bucket_size < 1:
            raise BaselineError("List of Clusters bucket size must be at least 1")
        self.bucket_size = int(bucket_size)
        self._rng = np.random.default_rng(seed)
        self._clusters: list[_Cluster] = []

    # ---------------------------------------------------------------- build
    def _build_impl(self) -> None:
        self._clusters = []
        remaining = self.live_ids().tolist()
        previous_center = None
        while remaining:
            center_id = self._next_center(remaining, previous_center)
            remaining.remove(center_id)
            if remaining:
                dists = self.executor.distances(
                    self.metric,
                    self._objects[center_id],
                    [self._objects[i] for i in remaining],
                    label="lc-build",
                )
                order = np.argsort(dists, kind="stable")
                take = order[: self.bucket_size]
                member_ids = [remaining[i] for i in take]
                member_dists = [float(dists[i]) for i in take]
                remaining = [remaining[i] for i in order[self.bucket_size:]]
            else:
                member_ids, member_dists = [], []
            covering = max(member_dists) if member_dists else 0.0
            self._clusters.append(
                _Cluster(
                    center_id=int(center_id),
                    center_obj=self._objects[center_id],
                    member_ids=member_ids,
                    member_dists=member_dists,
                    covering_radius=covering,
                )
            )
            previous_center = center_id

    def _next_center(self, remaining: list[int], previous_center) -> int:
        """Pick the next center: random first, then farthest from the previous one."""
        if previous_center is None or len(remaining) == 1:
            return int(remaining[int(self._rng.integers(0, len(remaining)))])
        dists = self.executor.distances(
            self.metric,
            self._objects[previous_center],
            [self._objects[i] for i in remaining],
            label="lc-center",
        )
        return int(remaining[int(np.argmax(dists))])

    @property
    def storage_bytes(self) -> int:
        members = sum(len(c.member_ids) for c in self._clusters)
        return int(len(self._clusters) * (8 + 8 + 8) + members * (8 + 8))

    # --------------------------------------------------------------- queries
    def range_query_batch(self, queries: Sequence, radii) -> list[list[tuple[int, float]]]:
        self._require_built()
        radii_arr = broadcast_query_param(radii, len(queries), "radii", np.float64)
        out = []
        for query, radius in zip(queries, radii_arr):
            out.append(self._range_one(query, float(radius)))
        return out

    def _range_one(self, query, radius: float) -> list[tuple[int, float]]:
        hits: list[tuple[int, float]] = []
        for cluster in self._clusters:
            dc = float(self.executor.distance(self.metric, query, cluster.center_obj))
            if dc <= radius and self._objects[cluster.center_id] is not None:
                hits.append((cluster.center_id, dc))
            if dc <= cluster.covering_radius + radius:
                self._scan_bucket_range(cluster, query, dc, radius, hits)
            if dc + radius < cluster.covering_radius:
                break  # the query ball lies strictly inside this cluster ball: stop
        return sorted(hits, key=lambda p: (p[1], p[0]))

    def _scan_bucket_range(self, cluster: _Cluster, query, dc: float, radius: float, hits: list) -> None:
        for obj_id, dco in zip(cluster.member_ids, cluster.member_dists):
            if self._objects[obj_id] is None:
                continue
            if abs(dc - dco) > radius:
                continue  # triangle-inequality screen using the stored distance
            dist = float(self.executor.distance(self.metric, query, self._objects[obj_id]))
            if dist <= radius:
                hits.append((int(obj_id), dist))

    def knn_query_batch(self, queries: Sequence, k) -> list[list[tuple[int, float]]]:
        self._require_built()
        k_arr = broadcast_query_param(k, len(queries), "k", np.int64)
        out = []
        for query, kk in zip(queries, k_arr):
            out.append(self._knn_one(query, int(kk)))
        return out

    def _knn_one(self, query, k: int) -> list[tuple[int, float]]:
        pool: list[tuple[float, int]] = []

        def bound() -> float:
            return pool[-1][0] if len(pool) >= k else np.inf

        def offer(obj_id: int, dist: float) -> None:
            pool.append((dist, obj_id))
            pool.sort()
            del pool[k:]

        for cluster in self._clusters:
            dc = float(self.executor.distance(self.metric, query, cluster.center_obj))
            if self._objects[cluster.center_id] is not None and (dc < bound() or len(pool) < k):
                offer(cluster.center_id, dc)
            if dc <= cluster.covering_radius + bound():
                for obj_id, dco in zip(cluster.member_ids, cluster.member_dists):
                    if self._objects[obj_id] is None:
                        continue
                    if abs(dc - dco) >= bound() and len(pool) >= k:
                        continue
                    dist = float(self.executor.distance(self.metric, query, self._objects[obj_id]))
                    if dist < bound() or len(pool) < k:
                        offer(int(obj_id), dist)
            if len(pool) >= k and dc + bound() < cluster.covering_radius:
                break
        return [(obj_id, dist) for dist, obj_id in pool]

    # --------------------------------------------------------------- updates
    def insert(self, obj) -> int:
        """Place the object in the first cluster ball that covers it.

        Falling outside every covering radius appends a new singleton cluster,
        which is the standard dynamic List-of-Clusters behaviour.
        """
        self._require_built()
        obj_id = len(self._objects)
        self._objects.append(obj)
        for cluster in self._clusters:
            dc = float(self.executor.distance(self.metric, obj, cluster.center_obj))
            if dc <= cluster.covering_radius:
                cluster.member_ids.append(obj_id)
                cluster.member_dists.append(dc)
                return obj_id
        self._clusters.append(
            _Cluster(center_id=obj_id, center_obj=obj, member_ids=[], member_dists=[], covering_radius=0.0)
        )
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Lazy deletion: hide the object; the cluster geometry is unchanged."""
        self._require_built()
        obj_id = int(obj_id)
        if obj_id < 0 or obj_id >= len(self._objects) or self._objects[obj_id] is None:
            raise BaselineError(f"{self.name}: unknown object id {obj_id}")
        self._objects[obj_id] = None
        self.executor.execute(1.0, label="delete")
