"""Simulated GPU device: memory manager + SIMT timing model.

The :class:`Device` is the substrate every "GPU-based" method in this
repository runs on.  It does two jobs:

1. **Memory accounting.**  Allocations are explicit and bounded by the spec's
   ``memory_bytes``.  Exceeding the capacity raises
   :class:`~repro.exceptions.DeviceMemoryError`; algorithms that cannot make
   progress because intermediate results fill the device raise
   :class:`~repro.exceptions.MemoryDeadlockError`.  This is what lets the
   reproduction exhibit the out-of-memory / memory-deadlock behaviour the
   paper reports for EGNAT, GPU-Tree, GANNS and LBPG-Tree (Figs. 9 and 11)
   and what forces GTS's two-stage query grouping to kick in.

2. **Timing.**  Work is submitted as *kernels*: a kernel processing ``W``
   independent work items of per-item cost ``c`` on a device with ``C`` cores
   takes ``launch_overhead + ceil(W / C) * c * op_time`` simulated seconds.
   ``ceil(W / C)`` is exactly the paper's ``⌈n/C⌉`` term; sorting uses the
   ``⌈n/C⌉ * log2 n`` term of Section 4.5.  Host↔device transfers are charged
   at ``bytes / transfer_bandwidth``.

The device never executes user code itself — callers do the actual arithmetic
with NumPy and tell the device how much *parallel* work it represented.  That
keeps the simulation honest (the numbers cannot depend on Python overhead)
while still producing the relative performance shapes of the paper.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from ..exceptions import DeviceMemoryError, KernelError, MemoryLeakError
from .specs import DeviceSpec
from .stats import ExecutionStats

__all__ = ["Device", "Allocation", "DeviceArray", "DEFAULT_POOL"]

#: Pool that unqualified allocations are charged to.
DEFAULT_POOL = "main"


@dataclass
class Allocation:
    """Handle to a live region of simulated device memory."""

    alloc_id: int
    nbytes: int
    label: str
    freed: bool = False
    #: memory pool the allocation is accounted under (per-pool high-water
    #: marks land in ``ExecutionStats.pool_peak_bytes``)
    pool: str = DEFAULT_POOL


class DeviceArray:
    """A NumPy array whose storage is accounted against a :class:`Device`.

    The data itself lives in host memory (it is a plain ``numpy.ndarray``),
    but its size is charged to the simulated device so that memory-capacity
    effects are reproduced.  Freeing the array releases the simulated memory;
    the NumPy buffer is dropped with it.
    """

    def __init__(self, device: "Device", data: np.ndarray, allocation: Allocation):
        self._device = device
        self._data: Optional[np.ndarray] = data
        self._allocation = allocation

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise KernelError("device array used after free")
        return self._data

    @property
    def nbytes(self) -> int:
        return self._allocation.nbytes

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def free(self) -> None:
        """Release the simulated device memory backing this array."""
        if self._data is not None:
            self._device.free(self._allocation)
            self._data = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._data is None else f"shape={self._data.shape}"
        return f"DeviceArray({self._allocation.label!r}, {state})"


class Device:
    """A simulated GPU with bounded memory and a SIMT cost model."""

    def __init__(self, spec: Optional[DeviceSpec] = None):
        self.spec = spec or DeviceSpec()
        self.stats = ExecutionStats()
        self._used_bytes = 0
        self._next_alloc_id = 0
        self._live: Dict[int, Allocation] = {}
        self._pool_used: Dict[str, int] = {}

    # ------------------------------------------------------------ memory API
    @property
    def capacity_bytes(self) -> int:
        """Total simulated device memory."""
        return self.spec.memory_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used_bytes

    @property
    def available_bytes(self) -> int:
        """Bytes still free for allocation."""
        return self.spec.memory_bytes - self._used_bytes

    def allocate(self, nbytes: int, label: str = "buffer", pool: str = DEFAULT_POOL) -> Allocation:
        """Reserve ``nbytes`` of device memory.

        ``pool`` names the accounting pool the bytes are charged under —
        pools share the device's physical capacity but keep independent
        high-water marks in ``stats.pool_peak_bytes``, so multi-pool
        workflows (tree storage vs. paged object blocks vs. per-query
        workspace) can report what actually pinned memory.

        Raises :class:`DeviceMemoryError` when the request does not fit.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise KernelError(f"allocation size must be non-negative, got {nbytes}")
        if nbytes > self.available_bytes:
            raise DeviceMemoryError(nbytes, self.available_bytes, self.capacity_bytes)
        self._next_alloc_id += 1
        alloc = Allocation(self._next_alloc_id, nbytes, label, pool=pool)
        self._live[alloc.alloc_id] = alloc
        self._used_bytes += nbytes
        self._pool_used[pool] = self._pool_used.get(pool, 0) + nbytes
        self.stats.allocations += 1
        self.stats.peak_memory_bytes = max(self.stats.peak_memory_bytes, self._used_bytes)
        self.stats.pool_peak_bytes[pool] = max(
            self.stats.pool_peak_bytes.get(pool, 0), self._pool_used[pool]
        )
        return alloc

    def free(self, allocation: Allocation) -> None:
        """Release a previous allocation (idempotent)."""
        if allocation.freed:
            return
        live = self._live.pop(allocation.alloc_id, None)
        if live is None:
            return
        allocation.freed = True
        self._used_bytes -= allocation.nbytes
        self._pool_used[allocation.pool] = self._pool_used.get(allocation.pool, 0) - allocation.nbytes
        self.stats.frees += 1

    def free_all(self) -> None:
        """Release every live allocation (used when an index is dropped)."""
        for alloc in list(self._live.values()):
            self.free(alloc)

    def alloc_array(
        self, shape, dtype=np.float64, label: str = "array", fill=None
    ) -> DeviceArray:
        """Allocate a device-resident NumPy array of the given shape."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        nbytes = size * dtype.itemsize
        allocation = self.allocate(nbytes, label=label)
        if fill is None:
            data = np.zeros(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        return DeviceArray(self, data, allocation)

    def to_device(self, array: np.ndarray, label: str = "h2d") -> DeviceArray:
        """Copy a host array to the device, charging the transfer time."""
        array = np.asarray(array)
        self.transfer_to_device(array.nbytes)
        allocation = self.allocate(array.nbytes, label=label)
        return DeviceArray(self, array.copy(), allocation)

    def live_allocations(self) -> list[Allocation]:
        """Return the currently live allocations (for diagnostics/tests)."""
        return list(self._live.values())

    def pool_used_bytes(self, pool: str = DEFAULT_POOL) -> int:
        """Bytes currently allocated under the named pool."""
        return self._pool_used.get(pool, 0)

    # ------------------------------------------------------------ leak guard
    def assert_no_leaks(self, baseline: Optional[set] = None) -> None:
        """Fail loudly when allocations are live that should have been freed.

        With ``baseline`` omitted every live allocation counts as a leak;
        passing a set of allocation ids (as :meth:`leak_guard` does) only
        flags allocations created since the baseline was captured.  Raises
        :class:`~repro.exceptions.MemoryLeakError` naming the leaked labels.
        """
        leaked = [
            alloc
            for alloc in self._live.values()
            if baseline is None or alloc.alloc_id not in baseline
        ]
        if leaked:
            summary = ", ".join(
                f"{alloc.label}[{alloc.pool}]={alloc.nbytes}B" for alloc in leaked[:8]
            )
            if len(leaked) > 8:
                summary += f", ... ({len(leaked) - 8} more)"
            raise MemoryLeakError(
                f"{len(leaked)} simulated allocation(s) leaked "
                f"({sum(a.nbytes for a in leaked)} bytes): {summary}"
            )

    @contextmanager
    def leak_guard(self) -> Iterator["Device"]:
        """Context manager asserting the block frees everything it allocates.

        Only allocations made *inside* the block are checked, so a guard can
        wrap individual operations against a device that already holds an
        index.  The check is skipped when the block raises, letting the
        original error surface.
        """
        baseline = set(self._live)
        yield self
        self.assert_no_leaks(baseline=baseline)

    # ---------------------------------------------------------- timing model
    def parallel_steps_for(self, work_items: int) -> int:
        """Number of sequential rounds needed for ``work_items`` on this device."""
        if work_items <= 0:
            return 0
        return math.ceil(work_items / self.spec.cores)

    def launch_kernel(
        self,
        work_items: int,
        op_cost: float = 1.0,
        label: str = "kernel",
        host_time: float = 0.0,
    ) -> float:
        """Record the launch of one kernel over ``work_items`` independent items.

        Parameters
        ----------
        work_items:
            Number of independent work items (threads' worth of work).
        op_cost:
            Abstract operations per item; e.g. a distance computation passes
            the metric's ``unit_cost`` times the per-distance operation count.
        label:
            Debug label (not interpreted).
        host_time:
            Optional wall-clock seconds the caller spent doing the actual
            NumPy work, recorded for diagnostics.

        Returns
        -------
        float
            Simulated seconds charged for this kernel.
        """
        work_items = int(work_items)
        if work_items < 0:
            raise KernelError(f"work_items must be non-negative, got {work_items}")
        if op_cost < 0:
            raise KernelError(f"op_cost must be non-negative, got {op_cost}")
        steps = self.parallel_steps_for(work_items)
        elapsed = self.spec.kernel_launch_overhead + steps * op_cost * self.spec.op_time
        self.stats.kernel_launches += 1
        self.stats.parallel_steps += steps
        self.stats.total_ops += work_items * op_cost
        self.stats.sim_time += elapsed
        self.stats.host_time += host_time
        return elapsed

    def sort_cost(self, n: int, op_cost: float = 1.0, label: str = "sort") -> float:
        """Charge the cost of a device-wide parallel sort of ``n`` keys.

        Follows the paper's ``O(⌈n/C⌉ · log2 n)`` term for GPU sorting
        (Section 4.5, citing [30]).
        """
        n = int(n)
        if n <= 1:
            return 0.0
        steps = self.parallel_steps_for(n) * max(1.0, math.log2(n))
        elapsed = self.spec.kernel_launch_overhead + steps * op_cost * self.spec.op_time
        self.stats.kernel_launches += 1
        self.stats.parallel_steps += int(math.ceil(steps))
        self.stats.total_ops += n * max(1.0, math.log2(n)) * op_cost
        self.stats.sorted_elements += n
        self.stats.sim_time += elapsed
        return elapsed

    def transfer_to_device(
        self, nbytes: int, label: Optional[str] = None, latency: float = 0.0
    ) -> float:
        """Charge a host→device copy of ``nbytes``.

        ``latency`` adds a fixed per-transaction cost (e.g. the PCIe fault
        round-trip the block pager models); ``label`` attributes the elapsed
        seconds under ``stats.transfer_seconds[label]`` so flows like pager
        traffic stay distinguishable from bulk loads.
        """
        nbytes = int(nbytes)
        if latency < 0:
            raise KernelError(f"transfer latency must be non-negative, got {latency}")
        elapsed = latency + nbytes / self.spec.transfer_bandwidth
        self.stats.bytes_to_device += nbytes
        self.stats.sim_time += elapsed
        if label is not None:
            self.stats.transfer_seconds[label] = (
                self.stats.transfer_seconds.get(label, 0.0) + elapsed
            )
        return elapsed

    def transfer_to_host(
        self, nbytes: int, label: Optional[str] = None, latency: float = 0.0
    ) -> float:
        """Charge a device→host copy of ``nbytes`` (see :meth:`transfer_to_device`)."""
        nbytes = int(nbytes)
        if latency < 0:
            raise KernelError(f"transfer latency must be non-negative, got {latency}")
        elapsed = latency + nbytes / self.spec.transfer_bandwidth
        self.stats.bytes_to_host += nbytes
        self.stats.sim_time += elapsed
        if label is not None:
            self.stats.transfer_seconds[label] = (
                self.stats.transfer_seconds.get(label, 0.0) + elapsed
            )
        return elapsed

    def absorb(self, stats: ExecutionStats, sim_time: Optional[float] = None) -> float:
        """Fold another executor's activity delta into this device's timeline.

        The multi-device sharding layer (:mod:`repro.shard`) runs shards on
        independent devices *in parallel*, so the coordinating timeline must
        advance by the round's **makespan** — pass it as ``sim_time`` — while
        the additive work counters (kernel launches, ops, transfers) keep
        their true totals across shards.  With ``sim_time`` omitted the
        delta's own ``sim_time`` is charged (serial host-side work).  Memory
        counters (allocations, frees, peak) describe the *other* device's
        memory and are not folded in.  Returns the seconds charged.
        """
        elapsed = stats.sim_time if sim_time is None else float(sim_time)
        if elapsed < 0:
            raise KernelError(f"absorbed sim_time must be non-negative, got {elapsed}")
        self.stats.kernel_launches += stats.kernel_launches
        self.stats.parallel_steps += stats.parallel_steps
        self.stats.total_ops += stats.total_ops
        self.stats.sorted_elements += stats.sorted_elements
        self.stats.bytes_to_device += stats.bytes_to_device
        self.stats.bytes_to_host += stats.bytes_to_host
        self.stats.host_time += stats.host_time
        for key, value in stats.transfer_seconds.items():
            self.stats.transfer_seconds[key] = self.stats.transfer_seconds.get(key, 0.0) + value
        self.stats.maintenance_seconds += stats.maintenance_seconds
        self.stats.sim_time += elapsed
        return elapsed

    # ------------------------------------------------------------- lifecycle
    def snapshot(self) -> ExecutionStats:
        """Return a copy of the current counters (for delta measurements)."""
        return self.stats.copy()

    def reset_stats(self) -> None:
        """Zero the counters without touching live allocations."""
        self.stats.reset()
        self.stats.peak_memory_bytes = self._used_bytes
        self.stats.pool_peak_bytes = {
            pool: used for pool, used in self._pool_used.items() if used > 0
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = self._used_bytes / (1024 ** 2)
        cap = self.capacity_bytes / (1024 ** 2)
        return f"Device({self.spec.name!r}, {used:.1f}/{cap:.1f} MiB used)"
