"""Simulated GPU device: memory manager + SIMT timing model.

The :class:`Device` is the substrate every "GPU-based" method in this
repository runs on.  It does two jobs:

1. **Memory accounting.**  Allocations are explicit and bounded by the spec's
   ``memory_bytes``.  Exceeding the capacity raises
   :class:`~repro.exceptions.DeviceMemoryError`; algorithms that cannot make
   progress because intermediate results fill the device raise
   :class:`~repro.exceptions.MemoryDeadlockError`.  This is what lets the
   reproduction exhibit the out-of-memory / memory-deadlock behaviour the
   paper reports for EGNAT, GPU-Tree, GANNS and LBPG-Tree (Figs. 9 and 11)
   and what forces GTS's two-stage query grouping to kick in.

2. **Timing.**  Work is submitted as *kernels*: a kernel processing ``W``
   independent work items of per-item cost ``c`` on a device with ``C`` cores
   takes ``launch_overhead + ceil(W / C) * c * op_time`` simulated seconds.
   ``ceil(W / C)`` is exactly the paper's ``⌈n/C⌉`` term; sorting uses the
   ``⌈n/C⌉ * log2 n`` term of Section 4.5.  Host↔device transfers are charged
   at ``bytes / transfer_bandwidth``.

The device never executes user code itself — callers do the actual arithmetic
with NumPy and tell the device how much *parallel* work it represented.  That
keeps the simulation honest (the numbers cannot depend on Python overhead)
while still producing the relative performance shapes of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from ..exceptions import DeviceMemoryError, KernelError
from .specs import DeviceSpec
from .stats import ExecutionStats

__all__ = ["Device", "Allocation", "DeviceArray"]


@dataclass
class Allocation:
    """Handle to a live region of simulated device memory."""

    alloc_id: int
    nbytes: int
    label: str
    freed: bool = False


class DeviceArray:
    """A NumPy array whose storage is accounted against a :class:`Device`.

    The data itself lives in host memory (it is a plain ``numpy.ndarray``),
    but its size is charged to the simulated device so that memory-capacity
    effects are reproduced.  Freeing the array releases the simulated memory;
    the NumPy buffer is dropped with it.
    """

    def __init__(self, device: "Device", data: np.ndarray, allocation: Allocation):
        self._device = device
        self._data: Optional[np.ndarray] = data
        self._allocation = allocation

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise KernelError("device array used after free")
        return self._data

    @property
    def nbytes(self) -> int:
        return self._allocation.nbytes

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def free(self) -> None:
        """Release the simulated device memory backing this array."""
        if self._data is not None:
            self._device.free(self._allocation)
            self._data = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._data is None else f"shape={self._data.shape}"
        return f"DeviceArray({self._allocation.label!r}, {state})"


class Device:
    """A simulated GPU with bounded memory and a SIMT cost model."""

    def __init__(self, spec: Optional[DeviceSpec] = None):
        self.spec = spec or DeviceSpec()
        self.stats = ExecutionStats()
        self._used_bytes = 0
        self._next_alloc_id = 0
        self._live: Dict[int, Allocation] = {}

    # ------------------------------------------------------------ memory API
    @property
    def capacity_bytes(self) -> int:
        """Total simulated device memory."""
        return self.spec.memory_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used_bytes

    @property
    def available_bytes(self) -> int:
        """Bytes still free for allocation."""
        return self.spec.memory_bytes - self._used_bytes

    def allocate(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve ``nbytes`` of device memory.

        Raises :class:`DeviceMemoryError` when the request does not fit.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise KernelError(f"allocation size must be non-negative, got {nbytes}")
        if nbytes > self.available_bytes:
            raise DeviceMemoryError(nbytes, self.available_bytes, self.capacity_bytes)
        self._next_alloc_id += 1
        alloc = Allocation(self._next_alloc_id, nbytes, label)
        self._live[alloc.alloc_id] = alloc
        self._used_bytes += nbytes
        self.stats.allocations += 1
        self.stats.peak_memory_bytes = max(self.stats.peak_memory_bytes, self._used_bytes)
        return alloc

    def free(self, allocation: Allocation) -> None:
        """Release a previous allocation (idempotent)."""
        if allocation.freed:
            return
        live = self._live.pop(allocation.alloc_id, None)
        if live is None:
            return
        allocation.freed = True
        self._used_bytes -= allocation.nbytes
        self.stats.frees += 1

    def free_all(self) -> None:
        """Release every live allocation (used when an index is dropped)."""
        for alloc in list(self._live.values()):
            self.free(alloc)

    def alloc_array(
        self, shape, dtype=np.float64, label: str = "array", fill=None
    ) -> DeviceArray:
        """Allocate a device-resident NumPy array of the given shape."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        nbytes = size * dtype.itemsize
        allocation = self.allocate(nbytes, label=label)
        if fill is None:
            data = np.zeros(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        return DeviceArray(self, data, allocation)

    def to_device(self, array: np.ndarray, label: str = "h2d") -> DeviceArray:
        """Copy a host array to the device, charging the transfer time."""
        array = np.asarray(array)
        self.transfer_to_device(array.nbytes)
        allocation = self.allocate(array.nbytes, label=label)
        return DeviceArray(self, array.copy(), allocation)

    def live_allocations(self) -> list[Allocation]:
        """Return the currently live allocations (for diagnostics/tests)."""
        return list(self._live.values())

    # ---------------------------------------------------------- timing model
    def parallel_steps_for(self, work_items: int) -> int:
        """Number of sequential rounds needed for ``work_items`` on this device."""
        if work_items <= 0:
            return 0
        return math.ceil(work_items / self.spec.cores)

    def launch_kernel(
        self,
        work_items: int,
        op_cost: float = 1.0,
        label: str = "kernel",
        host_time: float = 0.0,
    ) -> float:
        """Record the launch of one kernel over ``work_items`` independent items.

        Parameters
        ----------
        work_items:
            Number of independent work items (threads' worth of work).
        op_cost:
            Abstract operations per item; e.g. a distance computation passes
            the metric's ``unit_cost`` times the per-distance operation count.
        label:
            Debug label (not interpreted).
        host_time:
            Optional wall-clock seconds the caller spent doing the actual
            NumPy work, recorded for diagnostics.

        Returns
        -------
        float
            Simulated seconds charged for this kernel.
        """
        work_items = int(work_items)
        if work_items < 0:
            raise KernelError(f"work_items must be non-negative, got {work_items}")
        if op_cost < 0:
            raise KernelError(f"op_cost must be non-negative, got {op_cost}")
        steps = self.parallel_steps_for(work_items)
        elapsed = self.spec.kernel_launch_overhead + steps * op_cost * self.spec.op_time
        self.stats.kernel_launches += 1
        self.stats.parallel_steps += steps
        self.stats.total_ops += work_items * op_cost
        self.stats.sim_time += elapsed
        self.stats.host_time += host_time
        return elapsed

    def sort_cost(self, n: int, op_cost: float = 1.0, label: str = "sort") -> float:
        """Charge the cost of a device-wide parallel sort of ``n`` keys.

        Follows the paper's ``O(⌈n/C⌉ · log2 n)`` term for GPU sorting
        (Section 4.5, citing [30]).
        """
        n = int(n)
        if n <= 1:
            return 0.0
        steps = self.parallel_steps_for(n) * max(1.0, math.log2(n))
        elapsed = self.spec.kernel_launch_overhead + steps * op_cost * self.spec.op_time
        self.stats.kernel_launches += 1
        self.stats.parallel_steps += int(math.ceil(steps))
        self.stats.total_ops += n * max(1.0, math.log2(n)) * op_cost
        self.stats.sorted_elements += n
        self.stats.sim_time += elapsed
        return elapsed

    def transfer_to_device(self, nbytes: int) -> float:
        """Charge a host→device copy of ``nbytes``."""
        nbytes = int(nbytes)
        elapsed = nbytes / self.spec.transfer_bandwidth
        self.stats.bytes_to_device += nbytes
        self.stats.sim_time += elapsed
        return elapsed

    def transfer_to_host(self, nbytes: int) -> float:
        """Charge a device→host copy of ``nbytes``."""
        nbytes = int(nbytes)
        elapsed = nbytes / self.spec.transfer_bandwidth
        self.stats.bytes_to_host += nbytes
        self.stats.sim_time += elapsed
        return elapsed

    def absorb(self, stats: ExecutionStats, sim_time: Optional[float] = None) -> float:
        """Fold another executor's activity delta into this device's timeline.

        The multi-device sharding layer (:mod:`repro.shard`) runs shards on
        independent devices *in parallel*, so the coordinating timeline must
        advance by the round's **makespan** — pass it as ``sim_time`` — while
        the additive work counters (kernel launches, ops, transfers) keep
        their true totals across shards.  With ``sim_time`` omitted the
        delta's own ``sim_time`` is charged (serial host-side work).  Memory
        counters (allocations, frees, peak) describe the *other* device's
        memory and are not folded in.  Returns the seconds charged.
        """
        elapsed = stats.sim_time if sim_time is None else float(sim_time)
        if elapsed < 0:
            raise KernelError(f"absorbed sim_time must be non-negative, got {elapsed}")
        self.stats.kernel_launches += stats.kernel_launches
        self.stats.parallel_steps += stats.parallel_steps
        self.stats.total_ops += stats.total_ops
        self.stats.sorted_elements += stats.sorted_elements
        self.stats.bytes_to_device += stats.bytes_to_device
        self.stats.bytes_to_host += stats.bytes_to_host
        self.stats.host_time += stats.host_time
        self.stats.sim_time += elapsed
        return elapsed

    # ------------------------------------------------------------- lifecycle
    def snapshot(self) -> ExecutionStats:
        """Return a copy of the current counters (for delta measurements)."""
        return self.stats.copy()

    def reset_stats(self) -> None:
        """Zero the counters without touching live allocations."""
        self.stats.reset()
        self.stats.peak_memory_bytes = self._used_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = self._used_bytes / (1024 ** 2)
        cap = self.capacity_bytes / (1024 ** 2)
        return f"Device({self.spec.name!r}, {used:.1f}/{cap:.1f} MiB used)"
