"""Reusable simulated kernels built on top of :class:`~repro.gpusim.device.Device`.

These helpers pair the *actual* NumPy computation with the corresponding
device-time charge so that callers cannot forget one half.  They model the
handful of primitives GTS and the GPU baselines need:

* :func:`distance_kernel` — one query (or pivot) against a block of objects;
* :func:`segmented_distance_kernel` — a batch of queries against per-query
  segments of one flat candidate sequence (the fused level-wide shape the
  GTS batch engine runs on);
* :func:`distance_matrix_kernel` — a full cross-distance table;
* :func:`elementwise_kernel` — generic per-element transforms (encoding,
  decoding, normalisation, filtering);
* :func:`sort_kernel` — global key sort with the parallel-sort cost model;
* :func:`reduce_kernel` — parallel reductions (max, min, top-k selection).

Each returns the NumPy result; timing flows into ``device.stats``.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence

import numpy as np

from ..metrics.base import Metric
from .device import Device

__all__ = [
    "distance_kernel",
    "segmented_distance_kernel",
    "distance_matrix_kernel",
    "elementwise_kernel",
    "sort_kernel",
    "reduce_kernel",
    "topk_kernel",
]


def distance_kernel(
    device: Device,
    metric: Metric,
    query,
    objects: Sequence,
    label: str = "distance",
) -> np.ndarray:
    """Compute ``d(query, o)`` for every object in parallel on the device."""
    start = time.perf_counter()
    dists = metric.pairwise(query, objects)
    host = time.perf_counter() - start
    device.launch_kernel(
        work_items=len(objects), op_cost=metric.unit_cost, label=label, host_time=host
    )
    return dists


def segmented_distance_kernel(
    device: Device,
    metric: Metric,
    queries: Sequence,
    objects: Sequence,
    segment_boundaries,
    label: str = "segmented-distance",
) -> np.ndarray:
    """Evaluate per-query candidate segments of one flat object sequence.

    The fused batch shape: segment ``i`` of ``objects`` (rows
    ``segment_boundaries[i]:segment_boundaries[i + 1]``) is evaluated against
    ``queries[i]``, all in one ``Metric.pairwise_segmented`` pass; device
    time is charged as a single kernel over every (query, candidate) pair.
    """
    start = time.perf_counter()
    dists = metric.pairwise_segmented(queries, objects, segment_boundaries)
    host = time.perf_counter() - start
    device.launch_kernel(
        work_items=len(objects), op_cost=metric.unit_cost, label=label, host_time=host
    )
    return dists


def distance_matrix_kernel(
    device: Device,
    metric: Metric,
    queries: Sequence,
    objects: Sequence,
    label: str = "distance-matrix",
) -> np.ndarray:
    """Compute the full ``len(queries) x len(objects)`` distance table."""
    start = time.perf_counter()
    table = metric.matrix(queries, objects)
    host = time.perf_counter() - start
    device.launch_kernel(
        work_items=len(queries) * len(objects),
        op_cost=metric.unit_cost,
        label=label,
        host_time=host,
    )
    return table


def elementwise_kernel(
    device: Device,
    fn: Callable[[np.ndarray], np.ndarray],
    array: np.ndarray,
    op_cost: float = 1.0,
    label: str = "elementwise",
) -> np.ndarray:
    """Apply ``fn`` to ``array`` as one element-parallel kernel."""
    start = time.perf_counter()
    out = fn(array)
    host = time.perf_counter() - start
    device.launch_kernel(
        work_items=int(np.size(array)), op_cost=op_cost, label=label, host_time=host
    )
    return out


def sort_kernel(
    device: Device,
    keys: np.ndarray,
    op_cost: float = 1.0,
    label: str = "global-sort",
) -> np.ndarray:
    """Return the argsort of ``keys``, charging the parallel-sort cost."""
    start = time.perf_counter()
    order = np.argsort(keys, kind="stable")
    host = time.perf_counter() - start
    device.sort_cost(len(keys), op_cost=op_cost, label=label)
    device.stats.host_time += host
    return order


def reduce_kernel(
    device: Device,
    fn: Callable[[np.ndarray], np.ndarray],
    array: np.ndarray,
    op_cost: float = 1.0,
    label: str = "reduce",
):
    """Apply a reduction ``fn`` (max, min, sum, ...) with log-depth cost."""
    start = time.perf_counter()
    out = fn(array)
    host = time.perf_counter() - start
    n = int(np.size(array))
    depth = max(1, int(math.ceil(math.log2(n)))) if n > 1 else 1
    device.launch_kernel(
        work_items=n, op_cost=op_cost * depth / max(n, 1), label=label, host_time=host
    )
    return out


def topk_kernel(
    device: Device,
    values: np.ndarray,
    k: int,
    op_cost: float = 1.0,
    label: str = "topk",
) -> np.ndarray:
    """Return the indices of the ``k`` smallest values (device-selected).

    Models a Dr.Top-k style parallel selection: a full pass over the values
    plus a ``log``-depth merge, which is what the GPU-Table baseline uses for
    MkNNQ answering.
    """
    k = min(int(k), len(values))
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    start = time.perf_counter()
    idx = np.argpartition(values, k - 1)[:k]
    idx = idx[np.argsort(values[idx], kind="stable")]
    host = time.perf_counter() - start
    n = len(values)
    device.launch_kernel(work_items=n, op_cost=op_cost, label=label, host_time=host)
    device.launch_kernel(
        work_items=k, op_cost=op_cost * max(1.0, math.log2(max(k, 2))), label=f"{label}-merge"
    )
    return idx
