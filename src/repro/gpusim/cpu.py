"""Simulated CPU executor used by the CPU baselines (BST, MVPT, EGNAT).

The CPU baselines of the paper are sequential, single-query-at-a-time
main-memory indexes.  To keep their reported numbers comparable with the
simulated GPU, they run on a :class:`CPUExecutor` that charges

``ops * op_time / cores``

simulated seconds per operation batch.  It shares the
:class:`~repro.gpusim.stats.ExecutionStats` vocabulary with the GPU device so
the evaluation harness treats both uniformly, and it performs the same
distance-count bookkeeping, which is what actually drives the orders-of-
magnitude gap in the reproduced figures.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..metrics.base import Metric
from .specs import CPUSpec
from .stats import ExecutionStats

__all__ = ["CPUExecutor"]


class CPUExecutor:
    """Sequential (or lightly multi-core) execution-cost model."""

    def __init__(self, spec: CPUSpec | None = None):
        self.spec = spec or CPUSpec()
        self.stats = ExecutionStats()

    def execute(self, ops: float, label: str = "cpu", host_time: float = 0.0) -> float:
        """Charge ``ops`` abstract operations of sequential CPU work."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        elapsed = ops * self.spec.op_time / self.spec.cores
        self.stats.total_ops += ops
        self.stats.parallel_steps += int(np.ceil(ops / self.spec.cores))
        self.stats.sim_time += elapsed
        self.stats.host_time += host_time
        return elapsed

    def distances(self, metric: Metric, query, objects: Sequence, label: str = "cpu-dist") -> np.ndarray:
        """Compute distances from ``query`` to ``objects`` sequentially."""
        start = time.perf_counter()
        dists = metric.pairwise(query, objects)
        host = time.perf_counter() - start
        self.execute(len(objects) * metric.unit_cost, label=label, host_time=host)
        return dists

    def distance(self, metric: Metric, a, b, label: str = "cpu-dist") -> float:
        """Compute a single distance sequentially."""
        start = time.perf_counter()
        d = metric.distance(a, b)
        host = time.perf_counter() - start
        self.execute(metric.unit_cost, label=label, host_time=host)
        return d

    def snapshot(self) -> ExecutionStats:
        """Return a copy of the current counters."""
        return self.stats.copy()

    def reset_stats(self) -> None:
        """Zero the counters."""
        self.stats.reset()
