"""Simulated GPU execution substrate.

The paper evaluates GTS on a physical NVIDIA RTX 2080 Ti.  This package
replaces that hardware with an execution-model simulator: bounded device
memory, SIMT ``ceil(work/cores)`` kernel timing, parallel-sort and transfer
costs, plus a matching sequential-CPU cost model for the CPU baselines.  See
DESIGN.md §2 for why this substitution preserves the paper's measured shapes.
"""

from .cpu import CPUExecutor
from .device import DEFAULT_POOL, Allocation, Device, DeviceArray
from .kernels import (
    distance_kernel,
    distance_matrix_kernel,
    elementwise_kernel,
    reduce_kernel,
    sort_kernel,
    topk_kernel,
)
from .specs import DESKTOP_CPU_LIKE, RTX_2080TI_LIKE, CPUSpec, DeviceSpec, GiB, KiB, MiB
from .stats import ExecutionStats
from .timing import MeasuredRun, PhaseTimer, measure, throughput_per_minute

__all__ = [
    "Device",
    "DeviceArray",
    "Allocation",
    "DEFAULT_POOL",
    "DeviceSpec",
    "CPUSpec",
    "CPUExecutor",
    "ExecutionStats",
    "RTX_2080TI_LIKE",
    "DESKTOP_CPU_LIKE",
    "GiB",
    "MiB",
    "KiB",
    "distance_kernel",
    "distance_matrix_kernel",
    "elementwise_kernel",
    "sort_kernel",
    "reduce_kernel",
    "topk_kernel",
    "measure",
    "MeasuredRun",
    "PhaseTimer",
    "throughput_per_minute",
]
