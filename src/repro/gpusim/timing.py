"""Timing helpers shared by the evaluation harness.

The paper reports *throughput* (queries per minute) for the search
experiments and seconds for construction and updates.  These helpers convert
between simulated seconds and those units, and provide a small scoped timer
for measuring deltas of device activity.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from .device import Device
from .stats import ExecutionStats

__all__ = ["throughput_per_minute", "MeasuredRun", "measure"]


def throughput_per_minute(num_queries: int, elapsed_seconds: float) -> float:
    """Convert a batch of ``num_queries`` answered in ``elapsed_seconds`` to q/min."""
    if num_queries <= 0:
        return 0.0
    if elapsed_seconds <= 0:
        return float("inf")
    return 60.0 * num_queries / elapsed_seconds


@dataclass
class MeasuredRun:
    """Result of a :func:`measure` block: the stats delta plus derived values."""

    stats: ExecutionStats
    num_queries: int = 0

    @property
    def sim_time(self) -> float:
        return self.stats.sim_time

    @property
    def throughput(self) -> float:
        return throughput_per_minute(self.num_queries, self.stats.sim_time)


@contextmanager
def measure(device: Device, num_queries: int = 0) -> Iterator[MeasuredRun]:
    """Measure the device activity of a ``with`` block.

    >>> run = None
    >>> with measure(device, num_queries=len(queries)) as run:   # doctest: +SKIP
    ...     index.range_query(queries)
    >>> run.throughput                                           # doctest: +SKIP
    """
    before = device.snapshot()
    run = MeasuredRun(stats=ExecutionStats(), num_queries=num_queries)
    try:
        yield run
    finally:
        run.stats = device.stats.delta_since(before)
