"""Timing helpers shared by the evaluation harness.

The paper reports *throughput* (queries per minute) for the search
experiments and seconds for construction and updates.  These helpers convert
between simulated seconds and those units, and provide a small scoped timer
for measuring deltas of device activity.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .device import Device
from .stats import ExecutionStats

__all__ = ["throughput_per_minute", "MeasuredRun", "measure", "PhaseTimer"]


def throughput_per_minute(num_queries: int, elapsed_seconds: float) -> float:
    """Convert a batch of ``num_queries`` answered in ``elapsed_seconds`` to q/min."""
    if num_queries <= 0:
        return 0.0
    if elapsed_seconds <= 0:
        return float("inf")
    return 60.0 * num_queries / elapsed_seconds


@dataclass
class MeasuredRun:
    """Result of a :func:`measure` block: the stats delta plus derived values."""

    stats: ExecutionStats
    num_queries: int = 0

    @property
    def sim_time(self) -> float:
        return self.stats.sim_time

    @property
    def throughput(self) -> float:
        return throughput_per_minute(self.num_queries, self.stats.sim_time)


@contextmanager
def measure(device: Device, num_queries: int = 0) -> Iterator[MeasuredRun]:
    """Measure the device activity of a ``with`` block.

    >>> run = None
    >>> with measure(device, num_queries=len(queries)) as run:   # doctest: +SKIP
    ...     index.range_query(queries)
    >>> run.throughput                                           # doctest: +SKIP
    """
    before = device.snapshot()
    run = MeasuredRun(stats=ExecutionStats(), num_queries=num_queries)
    try:
        yield run
    finally:
        run.stats = device.stats.delta_since(before)


class PhaseTimer:
    """Attribute device activity to named phases of a larger operation.

    The serving layer needs to split the cost of one micro-batch into
    *dispatch* (batch assembly, host→device staging) and *kernel* (the actual
    query descent) so each request's latency can be decomposed.  A
    ``PhaseTimer`` measures a sequence of named ``with`` blocks against one
    device and accumulates a stats delta per phase::

        timer = PhaseTimer(device)
        with timer.phase("dispatch"):
            ...  # stage the batch
        with timer.phase("kernel"):
            ...  # run the queries
        timer.sim_time("kernel")        # simulated seconds of that phase
        timer.stats["dispatch"]         # full ExecutionStats delta

    Re-entering a phase name accumulates into the same bucket.
    """

    def __init__(self, device: Device):
        self._device = device
        self.stats: Dict[str, ExecutionStats] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one ``with`` block and accumulate it under ``name``."""
        before = self._device.snapshot()
        try:
            yield
        finally:
            delta = self._device.stats.delta_since(before)
            if name in self.stats:
                self.stats[name] = self.stats[name].merge(delta)
            else:
                self.stats[name] = delta

    def sim_time(self, name: str) -> float:
        """Simulated seconds accumulated under ``name`` (0.0 when unused)."""
        entry = self.stats.get(name)
        return entry.sim_time if entry is not None else 0.0

    @property
    def total_sim_time(self) -> float:
        """Simulated seconds across every recorded phase."""
        return sum(entry.sim_time for entry in self.stats.values())
