"""Hardware specifications for the simulated execution substrates.

The reproduction replaces the paper's physical GPU (an NVIDIA RTX 2080 Ti with
4352 CUDA cores and 11 GB of device memory) with an execution-*model*
simulator.  A :class:`DeviceSpec` captures the handful of parameters that the
model needs:

* ``cores`` — the concurrent computing power ``C`` of the paper's cost model;
* ``memory_bytes`` — device memory capacity, which drives the two-stage query
  grouping and the out-of-memory behaviour of the baselines;
* ``op_time`` — simulated seconds per abstract operation on one core;
* ``kernel_launch_overhead`` — fixed cost per kernel launch (the reason
  level-synchronous algorithms want few, large launches);
* ``transfer_bandwidth`` — host↔device copy bandwidth in bytes/second.

A :class:`CPUSpec` models the CPU baselines with the same vocabulary so that
all methods report comparable simulated times.  Absolute values are loosely
calibrated to the paper's hardware but only *relative* results are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["DeviceSpec", "CPUSpec", "RTX_2080TI_LIKE", "DESKTOP_CPU_LIKE"]

GiB = 1024 ** 3
MiB = 1024 ** 2
KiB = 1024


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU."""

    name: str = "sim-gpu"
    cores: int = 4096
    memory_bytes: int = 11 * GiB
    op_time: float = 2.0e-9
    kernel_launch_overhead: float = 2.0e-7
    transfer_bandwidth: float = 12.0e9
    shared_memory_bytes: int = 48 * KiB
    warp_size: int = 32
    max_threads_per_block: int = 1024

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.op_time <= 0 or self.transfer_bandwidth <= 0:
            raise ValueError("op_time and transfer_bandwidth must be positive")

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """Return a copy of this spec with a different memory capacity."""
        return replace(self, memory_bytes=int(memory_bytes))

    def with_cores(self, cores: int) -> "DeviceSpec":
        """Return a copy of this spec with a different core count."""
        return replace(self, cores=int(cores))


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a simulated CPU used by the CPU baselines."""

    name: str = "sim-cpu"
    cores: int = 1
    op_time: float = 1.0e-9
    memory_bytes: int = 128 * GiB

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.op_time <= 0:
            raise ValueError("op_time must be positive")


#: Spec loosely resembling the paper's Nvidia GeForce RTX 2080 Ti (11 GB).
RTX_2080TI_LIKE = DeviceSpec(name="rtx-2080ti-like", cores=4352, memory_bytes=11 * GiB)

#: Spec loosely resembling the paper's Intel Core i9-10900X host.
DESKTOP_CPU_LIKE = CPUSpec(name="i9-10900x-like", cores=1, op_time=1.0e-9)
