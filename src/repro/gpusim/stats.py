"""Execution statistics collected by the simulated device.

Every kernel launch, sort, transfer and allocation on a
:class:`~repro.gpusim.device.Device` updates an :class:`ExecutionStats`
instance.  The evaluation harness converts the accumulated ``sim_time`` into
the throughput numbers (queries/min) that the paper's figures report, and the
tests assert on the structural counters (kernel launches, parallel steps,
distance-op counts) to verify that the algorithms behave as described.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ExecutionStats"]


def _merge_max(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    out = dict(a)
    for key, value in b.items():
        out[key] = max(out.get(key, 0), value)
    return out


def _merge_sum(a: Dict[str, float], b: Dict[str, float]) -> Dict[str, float]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0.0) + value
    return out


@dataclass
class ExecutionStats:
    """Mutable accumulator of simulated execution activity."""

    kernel_launches: int = 0
    parallel_steps: int = 0
    total_ops: float = 0.0
    sorted_elements: int = 0
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    allocations: int = 0
    frees: int = 0
    peak_memory_bytes: int = 0
    sim_time: float = 0.0
    #: wall-clock seconds spent inside simulated kernels (host-side NumPy work)
    host_time: float = 0.0
    #: per-pool high-water marks of allocated bytes (e.g. "tree" vs "pager");
    #: ``peak_memory_bytes`` remains the device-wide mark across all pools
    pool_peak_bytes: Dict[str, int] = field(default_factory=dict)
    #: simulated transfer seconds attributed to named flows (e.g. "pager-h2d",
    #: "pager-d2h", "results-d2h"); a subset of ``sim_time``
    transfer_seconds: Dict[str, float] = field(default_factory=dict)
    #: simulated seconds spent inside incremental-maintenance slices
    #: (generation-swap rebuild work, DESIGN.md §9); a subset of ``sim_time``
    maintenance_seconds: float = 0.0

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Return a new stats object that is the element-wise sum of both."""
        return ExecutionStats(
            kernel_launches=self.kernel_launches + other.kernel_launches,
            parallel_steps=self.parallel_steps + other.parallel_steps,
            total_ops=self.total_ops + other.total_ops,
            sorted_elements=self.sorted_elements + other.sorted_elements,
            bytes_to_device=self.bytes_to_device + other.bytes_to_device,
            bytes_to_host=self.bytes_to_host + other.bytes_to_host,
            allocations=self.allocations + other.allocations,
            frees=self.frees + other.frees,
            peak_memory_bytes=max(self.peak_memory_bytes, other.peak_memory_bytes),
            sim_time=self.sim_time + other.sim_time,
            host_time=self.host_time + other.host_time,
            pool_peak_bytes=_merge_max(self.pool_peak_bytes, other.pool_peak_bytes),
            transfer_seconds=_merge_sum(self.transfer_seconds, other.transfer_seconds),
            maintenance_seconds=self.maintenance_seconds + other.maintenance_seconds,
        )

    def delta_since(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """Return the activity that happened after ``earlier`` was snapshotted."""
        return ExecutionStats(
            kernel_launches=self.kernel_launches - earlier.kernel_launches,
            parallel_steps=self.parallel_steps - earlier.parallel_steps,
            total_ops=self.total_ops - earlier.total_ops,
            sorted_elements=self.sorted_elements - earlier.sorted_elements,
            bytes_to_device=self.bytes_to_device - earlier.bytes_to_device,
            bytes_to_host=self.bytes_to_host - earlier.bytes_to_host,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            peak_memory_bytes=self.peak_memory_bytes,
            sim_time=self.sim_time - earlier.sim_time,
            host_time=self.host_time - earlier.host_time,
            pool_peak_bytes=dict(self.pool_peak_bytes),
            transfer_seconds={
                key: value - earlier.transfer_seconds.get(key, 0.0)
                for key, value in self.transfer_seconds.items()
            },
            maintenance_seconds=self.maintenance_seconds - earlier.maintenance_seconds,
        )

    def copy(self) -> "ExecutionStats":
        """Return an independent snapshot of the current counters."""
        return ExecutionStats(**self.as_dict())

    def scale(self, factor: float) -> "ExecutionStats":
        """Return a copy with every additive counter multiplied by ``factor``.

        Used to attribute the cost of a shared micro-batch to its individual
        requests: a batch of ``n`` requests whose dispatch cost ``stats``
        charges each request ``stats.scale(1 / n)``.  Scaled counters are
        left as floats (fractional kernel launches, bytes, ...) so that
        summing the per-request shares reproduces the batch totals exactly;
        ``peak_memory_bytes`` is a high-water mark, not an additive quantity,
        so it is carried over unscaled.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return ExecutionStats(
            kernel_launches=self.kernel_launches * factor,
            parallel_steps=self.parallel_steps * factor,
            total_ops=self.total_ops * factor,
            sorted_elements=self.sorted_elements * factor,
            bytes_to_device=self.bytes_to_device * factor,
            bytes_to_host=self.bytes_to_host * factor,
            allocations=self.allocations * factor,
            frees=self.frees * factor,
            peak_memory_bytes=self.peak_memory_bytes,
            sim_time=self.sim_time * factor,
            host_time=self.host_time * factor,
            pool_peak_bytes=dict(self.pool_peak_bytes),
            transfer_seconds={k: v * factor for k, v in self.transfer_seconds.items()},
            maintenance_seconds=self.maintenance_seconds * factor,
        )

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports/JSON)."""
        return {
            "kernel_launches": self.kernel_launches,
            "parallel_steps": self.parallel_steps,
            "total_ops": self.total_ops,
            "sorted_elements": self.sorted_elements,
            "bytes_to_device": self.bytes_to_device,
            "bytes_to_host": self.bytes_to_host,
            "allocations": self.allocations,
            "frees": self.frees,
            "peak_memory_bytes": self.peak_memory_bytes,
            "sim_time": self.sim_time,
            "host_time": self.host_time,
            "pool_peak_bytes": dict(self.pool_peak_bytes),
            "transfer_seconds": dict(self.transfer_seconds),
            "maintenance_seconds": self.maintenance_seconds,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.kernel_launches = 0
        self.parallel_steps = 0
        self.total_ops = 0.0
        self.sorted_elements = 0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.allocations = 0
        self.frees = 0
        self.peak_memory_bytes = 0
        self.sim_time = 0.0
        self.host_time = 0.0
        self.pool_peak_bytes = {}
        self.transfer_seconds = {}
        self.maintenance_seconds = 0.0
