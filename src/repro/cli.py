"""Command-line interface of the GTS reproduction.

The CLI wraps the library's main workflows so they can be driven without
writing Python:

``repro list datasets|methods|metrics|experiments``
    Show what the library ships.
``repro build``
    Generate one of the synthetic stand-in datasets, build a GTS index over
    it and (optionally) save the index archive.
``repro query``
    Load a saved index and answer a batch of kNN / range queries sampled
    from its own objects, reporting simulated throughput.
``repro compare``
    Build several methods (GTS and baselines) over one dataset and print a
    throughput/storage comparison table.
``repro experiment``
    Re-run one of the paper's tables/figures (the same functions the
    benchmark harness uses) and print its rows, optionally writing CSV.
``repro serve-sim``
    Simulate the concurrent query-serving layer: N open-loop clients issue
    mixed range/kNN/insert/delete requests, a micro-batching scheduler
    coalesces them, and the throughput/latency-percentile report is printed
    (see DESIGN.md §4).  With ``--shards K`` the service runs over a
    multi-device :class:`~repro.shard.ShardedGTS` instead of a single-GPU
    index (DESIGN.md §6).

Every command prints plain text to stdout; exit status is 0 on success and
2 on argument errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .baselines import available_methods
from .core.gts import GTS
from .datasets import available_datasets, get_dataset
from .evalsuite import experiments as _experiments
from .evalsuite import extensions as _extensions
from .evalsuite.reporting import format_bytes, format_seconds, format_throughput, rows_to_csv
from .evalsuite.runner import MethodRunner
from .evalsuite.workloads import make_workload, radius_for_selectivity
from .gpusim.specs import DeviceSpec, MiB
from .metrics import available_metrics
from .service import experiment as _service_experiment
from .service.scheduler import POLICY_REGISTRY, make_policy
from .shard import ASSIGNMENT_POLICIES, ShardedGTS
from .shard import experiment as _shard_experiment
from .tier import EVICTION_POLICIES, TierConfig
from .tier import experiment as _tier_experiment

__all__ = ["main", "build_parser", "EXPERIMENT_REGISTRY"]

#: Experiment-name -> callable registry exposed by ``repro experiment``.
EXPERIMENT_REGISTRY = {
    "table4": _experiments.experiment_table4_construction,
    "table5": _experiments.experiment_table5_cache_size,
    "fig5": _experiments.experiment_fig5_updates,
    "fig6": _experiments.experiment_fig6_node_capacity,
    "fig7": _experiments.experiment_fig7_radius_and_k,
    "fig8": _experiments.experiment_fig8_gpu_memory,
    "fig9": _experiments.experiment_fig9_batch_size,
    "fig10": _experiments.experiment_fig10_identical_objects,
    "fig11": _experiments.experiment_fig11_cardinality,
    "ablation-cost-model": _experiments.ablation_cost_model,
    "ablation-two-stage": _experiments.ablation_two_stage,
    "ablation-prune-pivot": _experiments.ablation_prune_and_pivot,
    "extended-baselines": _extensions.experiment_extended_baselines,
    "approx-tradeoff": _extensions.experiment_approximate_tradeoff,
    "service-batching": _service_experiment.experiment_service_batching,
    "update-heavy-serving": _service_experiment.experiment_update_heavy_serving,
    "sharding-scaleout": _shard_experiment.experiment_sharding_scaleout,
    "memory-tiering": _tier_experiment.experiment_memory_tiering,
}


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------
def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GTS (GPU-based Tree index for Similarity search) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list datasets, methods, metrics or experiments")
    p_list.add_argument(
        "what",
        choices=("datasets", "methods", "metrics", "experiments"),
        help="which registry to print",
    )

    p_build = sub.add_parser("build", help="generate a dataset and build a GTS index over it")
    _add_dataset_arguments(p_build)
    p_build.add_argument("--node-capacity", type=int, default=20, help="tree fan-out Nc (default 20)")
    p_build.add_argument("--pivot-strategy", default="fft", help="pivot selection strategy (default fft)")
    p_build.add_argument("--output", default=None, help="path to save the built index archive")

    p_query = sub.add_parser("query", help="answer queries with a saved index")
    p_query.add_argument("--index", required=True, help="index archive written by 'repro build'")
    p_query.add_argument("--num-queries", type=int, default=16, help="queries per batch (default 16)")
    p_query.add_argument("--k", type=int, default=8, help="k for kNN queries (default 8)")
    p_query.add_argument("--radius", type=float, default=None, help="also run range queries with this radius")
    p_query.add_argument("--seed", type=int, default=7, help="query sampling seed")
    p_query.add_argument("--show", type=int, default=3, help="how many per-query answers to print")

    p_compare = sub.add_parser("compare", help="compare methods on one dataset")
    _add_dataset_arguments(p_compare)
    p_compare.add_argument(
        "--methods",
        default="GTS,MVPT,BST",
        help="comma-separated method names (see 'repro list methods')",
    )
    p_compare.add_argument("--num-queries", type=int, default=16, help="queries per batch (default 16)")
    p_compare.add_argument("--k", type=int, default=8, help="k for kNN queries (default 8)")
    p_compare.add_argument("--device-memory-mb", type=float, default=None, help="simulated GPU memory in MB")

    p_serve = sub.add_parser(
        "serve-sim",
        help="simulate the concurrent query-serving layer over a GTS index",
    )
    _add_dataset_arguments(p_serve)
    p_serve.add_argument("--node-capacity", type=int, default=20, help="tree fan-out Nc (default 20)")
    p_serve.add_argument(
        "--shards", type=_positive_int, default=1,
        help="serve a multi-device sharded index with this many shards (default 1 = single GPU)",
    )
    p_serve.add_argument(
        "--shard-policy", choices=sorted(ASSIGNMENT_POLICIES), default="round-robin",
        help="shard-assignment policy when --shards > 1 (default round-robin)",
    )
    p_serve.add_argument(
        "--device-memory", type=float, default=None, metavar="MB",
        help="serve out-of-core: cap the device-resident object pool at this many "
        "MB and page blocks from host memory on demand (default: fully resident)",
    )
    p_serve.add_argument(
        "--eviction", choices=sorted(EVICTION_POLICIES), default="lru",
        help="block-pager eviction policy when --device-memory is set (default lru)",
    )
    p_serve.add_argument(
        "--block-kb", type=float, default=16.0,
        help="object-block size in KB for the tiered pool (default 16)",
    )
    p_serve.add_argument(
        "--prefetch", action="store_true",
        help="coalesce block faults via candidate-list lookahead prefetch",
    )
    p_serve.add_argument(
        "--maintenance", action="store_true",
        help="non-blocking updates: cache overflows schedule generation-swap "
        "rebuilds advanced in bounded slices between micro-batches (DESIGN.md §9)",
    )
    p_serve.add_argument(
        "--update-heavy", action="store_true",
        help="use the update-heavy request mix (50%% inserts) instead of the "
        "query-heavy default",
    )
    p_serve.add_argument(
        "--cache-kb", type=float, default=None,
        help="cache-table budget in KB (default: the paper's ~5 KB)",
    )
    p_serve.add_argument("--clients", type=int, default=6, help="number of simulated clients (default 6)")
    p_serve.add_argument(
        "--rate", type=float, default=100_000.0,
        help="per-client request rate in requests per simulated second (default 1e5)",
    )
    p_serve.add_argument(
        "--duration", type=float, default=2e-3,
        help="simulated seconds of arrivals to generate (default 2e-3)",
    )
    p_serve.add_argument(
        "--policy", choices=sorted(POLICY_REGISTRY),
        default="greedy", help="micro-batching policy (default greedy)",
    )
    p_serve.add_argument("--max-batch", type=int, default=64, help="micro-batch size budget (default 64)")
    p_serve.add_argument(
        "--max-wait", type=float, default=200e-6,
        help="max simulated seconds the oldest request may wait (default 200e-6)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None,
        help="relative completion deadline per request in simulated seconds",
    )
    p_serve.add_argument("--k", type=int, default=8, help="k for kNN requests (default 8)")
    p_serve.add_argument(
        "--selectivity", type=float, default=0.01,
        help="range-query selectivity used to derive the radius (default 0.01)",
    )
    p_serve.add_argument(
        "--verify", action="store_true",
        help="also replay the stream sequentially and check the answers match",
    )

    p_exp = sub.add_parser("experiment", help="re-run one of the paper's tables or figures")
    p_exp.add_argument("name", choices=sorted(EXPERIMENT_REGISTRY), help="experiment id")
    p_exp.add_argument("--scale", type=float, default=0.2, help="dataset scale factor (default 0.2)")
    p_exp.add_argument("--num-queries", type=int, default=None, help="override the number of queries")
    p_exp.add_argument("--csv", default=None, help="also write the rows to this CSV file")

    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="tloc",
        choices=available_datasets(),
        help="synthetic stand-in dataset (default tloc)",
    )
    parser.add_argument("--cardinality", type=int, default=None, help="number of objects to generate")
    parser.add_argument("--seed", type=int, default=7, help="dataset generation seed")


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    entries = {
        "datasets": available_datasets,
        "methods": available_methods,
        "metrics": available_metrics,
        "experiments": lambda: sorted(EXPERIMENT_REGISTRY),
    }[args.what]()
    for name in entries:
        print(name)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, cardinality=args.cardinality, seed=args.seed)
    print(f"dataset    : {dataset.name} ({dataset.cardinality} objects, metric {dataset.metric.name})")
    index = GTS.build(
        dataset.objects,
        dataset.metric,
        node_capacity=args.node_capacity,
        pivot_strategy=args.pivot_strategy,
        seed=args.seed,
    )
    build = index.build_result
    print(f"height     : {index.height}")
    print(f"build time : {format_seconds(build.sim_time)} (simulated)")
    print(f"distances  : {build.distance_computations}")
    print(f"storage    : {format_bytes(index.storage_bytes)}")
    if args.output:
        path = index.save(args.output)
        print(f"saved      : {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = GTS.load(args.index)
    print(f"index      : {index.num_objects} objects, Nc={index.node_capacity}, metric {index.metric.name}")
    rng = np.random.default_rng(args.seed)
    live_ids = [int(i) for i in index._indexed_ids if index.is_live(int(i))]
    chosen = rng.choice(live_ids, size=min(args.num_queries, len(live_ids)), replace=False)
    queries = [index.get_object(int(i)) for i in chosen]

    before = index.device.stats.sim_time
    answers = index.knn_query_batch(queries, args.k)
    elapsed = index.device.stats.sim_time - before
    throughput = 60.0 * len(queries) / elapsed if elapsed > 0 else float("inf")
    print(f"kNN batch  : {len(queries)} queries, k={args.k}, "
          f"{format_seconds(elapsed)} simulated, {format_throughput(throughput)}")
    for qi in range(min(args.show, len(queries))):
        shown = ", ".join(f"{oid}:{dist:.4g}" for oid, dist in answers[qi][: args.k])
        print(f"  query {int(chosen[qi])}: {shown}")

    if args.radius is not None:
        before = index.device.stats.sim_time
        results = index.range_query_batch(queries, args.radius)
        elapsed = index.device.stats.sim_time - before
        sizes = [len(r) for r in results]
        print(f"MRQ batch  : radius={args.radius}, avg answer size {np.mean(sizes):.1f}, "
              f"{format_seconds(elapsed)} simulated")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.dataset, cardinality=args.cardinality, seed=args.seed)
    workload = make_workload(dataset, num_queries=args.num_queries, k=args.k, seed=args.seed)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in available_methods()]
    if unknown:
        print(f"error: unknown methods {', '.join(unknown)}; see 'repro list methods'", file=sys.stderr)
        return 2
    device_spec = None
    if args.device_memory_mb is not None:
        device_spec = DeviceSpec(memory_bytes=int(args.device_memory_mb * MiB))

    header = f"{'method':<12} {'build':>12} {'storage':>10} {'kNN thpt':>16} {'distances':>12} {'status':>8}"
    print(f"dataset: {dataset.name} ({dataset.cardinality} objects), "
          f"{args.num_queries} queries, k={args.k}")
    print(header)
    print("-" * len(header))
    for method in methods:
        runner = MethodRunner(method, dataset, device_spec=device_spec)
        build = runner.build()
        if build.failed:
            print(f"{method:<12} {'-':>12} {'-':>10} {'-':>16} {'-':>12} {build.status:>8}")
            continue
        knn = runner.run_knn(workload.queries, workload.k)
        print(
            f"{method:<12} {format_seconds(build.sim_time):>12} "
            f"{format_bytes(knn.storage_bytes):>10} {format_throughput(knn.throughput):>16} "
            f"{knn.distance_computations:>12} {knn.status:>8}"
        )
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from .core.gts import DEFAULT_CACHE_BYTES
    from .service import GTSService, MaintenanceHook, WorkloadSpec, generate_workload, summarize
    from .service.experiment import HOLDOUT_FRACTION, UPDATE_HEAVY_MIX, sequential_replay
    from .service.workload import DEFAULT_MIX

    dataset = get_dataset(args.dataset, cardinality=args.cardinality, seed=args.seed)
    num_indexed = max(2, int(dataset.cardinality * (1.0 - HOLDOUT_FRACTION)))
    radius = radius_for_selectivity(
        dataset.objects[:num_indexed], dataset.metric, args.selectivity
    )
    print(f"dataset    : {dataset.name} ({num_indexed} indexed, "
          f"{dataset.cardinality - num_indexed} held out for inserts)")

    tier = None
    if args.device_memory is not None:
        tier = TierConfig(
            memory_budget_bytes=max(1, int(args.device_memory * MiB)),
            block_bytes=max(1, int(args.block_kb * 1024)),
            eviction=args.eviction,
            prefetch=args.prefetch,
        )
        print(f"tiering    : {args.device_memory} MB device pool, "
              f"{args.eviction} eviction, blocks {args.block_kb} KB"
              f"{', prefetch' if args.prefetch else ''}")

    cache_bytes = (
        DEFAULT_CACHE_BYTES if args.cache_kb is None else max(1, int(args.cache_kb * 1024))
    )
    if args.shards > 1:
        index = ShardedGTS.build(
            dataset.objects[:num_indexed],
            dataset.metric,
            num_shards=args.shards,
            assignment=args.shard_policy,
            node_capacity=args.node_capacity,
            cache_capacity_bytes=cache_bytes,
            seed=args.seed,
            tier=tier,
        )
        print(f"index      : {args.shards} shards ({args.shard_policy}), "
              f"sizes {index.shard_sizes}")
    else:
        index = GTS.build(
            dataset.objects[:num_indexed],
            dataset.metric,
            node_capacity=args.node_capacity,
            cache_capacity_bytes=cache_bytes,
            seed=args.seed,
            tier=tier,
        )
    spec = WorkloadSpec(
        num_clients=args.clients,
        rate_per_client=args.rate,
        duration=args.duration,
        mix=dict(UPDATE_HEAVY_MIX if args.update_heavy else DEFAULT_MIX),
        radius=radius,
        k=args.k,
        deadline=args.deadline,
        seed=args.seed,
    )
    workload = generate_workload(dataset.objects, num_indexed, spec)
    counts = ", ".join(f"{kind}={n}" for kind, n in sorted(workload.kind_counts().items()))
    print(f"workload   : {len(workload.requests)} requests from {args.clients} clients "
          f"({counts})")

    policy_kwargs = {"max_batch_size": args.max_batch, "max_wait": args.max_wait}
    service = GTSService(
        index,
        policy=make_policy(args.policy, **policy_kwargs),
        maintenance=MaintenanceHook() if args.maintenance else None,
    )
    if tier is not None:
        # report steady-state serving traffic, not the build's streaming pass
        for shard in index.shards if args.shards > 1 else [index]:
            shard.pager.stats.reset()
        serve_snapshot = index.device.snapshot()
    responses = service.serve(workload.requests)
    report = summarize(responses, service.batches, service.maintenance_records)
    print(f"policy     : {args.policy} (max batch {args.max_batch}, "
          f"max wait {args.max_wait * 1e6:.0f} us"
          f"{', non-blocking maintenance' if args.maintenance else ''})")
    print(report.to_text(title=f"{args.policy} policy on {dataset.name}"))
    if args.maintenance:
        print(f"maintenance: {report.num_maintenance_slices} slices, "
              f"{report.rebuilds_completed} generation swaps, "
              f"{report.maintenance_time * 1e3:.3f} ms total "
              f"(max slice {report.max_slice_time * 1e6:.1f} us); "
              f"automatic rebuilds {index.automatic_rebuild_count}")

    if tier is not None:
        if args.shards > 1:
            pager = index.pager_stats()
        else:
            pager = index.pager.stats.as_dict()
        delta = index.device.stats.delta_since(serve_snapshot)
        print(f"pager      : hit rate {pager['hit_rate']:.3f} "
              f"({pager['hits']} hits / {pager['misses']} misses, "
              f"{pager['evictions']} evictions) while serving")
        print(f"transfers  : h2d {delta.transfer_seconds.get('pager-h2d', 0.0) * 1e3:.3f} ms, "
              f"d2h {delta.transfer_seconds.get('pager-d2h', 0.0) * 1e3:.3f} ms (paging), "
              f"{delta.transfer_seconds.get('results-d2h', 0.0) * 1e3:.3f} ms (results)")

    if args.verify:
        oracle = GTS.build(
            dataset.objects[:num_indexed],
            dataset.metric,
            node_capacity=args.node_capacity,
            cache_capacity_bytes=cache_bytes,
            seed=args.seed,
        )
        expected = sequential_replay(oracle, workload.requests)
        got = [r.result for r in responses]
        if got != expected:
            print("verify     : MISMATCH against sequential replay", file=sys.stderr)
            return 1
        print("verify     : identical to sequential replay")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = EXPERIMENT_REGISTRY[args.name]
    kwargs = {"scale": args.scale}
    if args.num_queries is not None and "num_queries" in inspect.signature(fn).parameters:
        kwargs["num_queries"] = args.num_queries
    result = fn(**kwargs)
    print(result.to_text())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(result.rows))
        print(f"wrote {args.csv}")
    return 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "build": _cmd_build,
        "query": _cmd_query,
        "compare": _cmd_compare,
        "serve-sim": _cmd_serve_sim,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
