"""Dataset abstraction shared by the generators and the evaluation harness.

A :class:`Dataset` bundles the generated objects, the metric they live under
and bookkeeping used by the experiment runner (name, cardinality, a seed for
reproducibility).  The paper's five datasets are real corpora (Words, T-Loc,
Vector, DNA, Color); the generators in this package synthesise stand-ins with
the same metric, dimensionality/length profile and clustering character —
DESIGN.md §2 records the substitution.

Generators are deterministic functions of ``(cardinality, seed)`` so every
test and benchmark can regenerate exactly the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..exceptions import DatasetError
from ..metrics.base import Metric

__all__ = ["Dataset", "make_duplicates"]


@dataclass
class Dataset:
    """A generated dataset plus the metric it is searched under."""

    name: str
    objects: Sequence
    metric: Metric
    seed: int
    description: str = ""
    #: the cardinality of the real dataset this one stands in for
    paper_cardinality: int = 0
    #: dimensionality (vectors) or maximum length (strings)
    dimensionality: int = 0

    def __post_init__(self) -> None:
        if len(self.objects) == 0:
            raise DatasetError(f"dataset {self.name!r} generated no objects")

    @property
    def cardinality(self) -> int:
        """Number of generated objects."""
        return len(self.objects)

    def subsample(self, fraction: float, seed: int | None = None) -> "Dataset":
        """Return a new dataset holding a random ``fraction`` of the objects.

        Used by the cardinality-scalability experiment (Fig. 11), which varies
        the dataset between 20 % and 100 % of its full size.
        """
        if not 0 < fraction <= 1:
            raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        count = max(1, int(round(len(self.objects) * fraction)))
        idx = np.sort(rng.choice(len(self.objects), size=count, replace=False))
        if isinstance(self.objects, np.ndarray):
            objects = self.objects[idx]
        else:
            objects = [self.objects[int(i)] for i in idx]
        return Dataset(
            name=f"{self.name}@{int(fraction * 100)}%",
            objects=objects,
            metric=type(self.metric)() if not hasattr(self.metric, "expected_length")
            else type(self.metric)(expected_length=self.metric.expected_length),
            seed=self.seed,
            description=self.description,
            paper_cardinality=self.paper_cardinality,
            dimensionality=self.dimensionality,
        )

    def sample_queries(self, count: int, seed: int | None = None, perturb: bool = True) -> list:
        """Draw ``count`` query objects from the dataset's distribution.

        Queries are dataset objects, optionally perturbed (vectors get small
        Gaussian noise; strings get a single random edit) so that queries are
        near, but not exactly equal to, indexed objects — the usual set-up for
        similarity-search benchmarks.
        """
        rng = np.random.default_rng((self.seed * 7919 + 13) if seed is None else seed)
        idx = rng.integers(0, len(self.objects), size=count)
        queries = []
        for i in idx:
            obj = self.objects[int(i)]
            if not perturb:
                queries.append(obj)
            elif isinstance(obj, str):
                queries.append(_perturb_string(obj, rng))
            else:
                arr = np.asarray(obj, dtype=np.float64)
                scale = 0.01 * (np.abs(arr).mean() + 1e-9)
                queries.append(arr + rng.normal(0.0, scale, size=arr.shape))
        return queries

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, n={self.cardinality}, metric={self.metric.name!r})"
        )


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _perturb_string(s: str, rng: np.random.Generator) -> str:
    """Apply one random edit (insert / delete / substitute) to a string."""
    if not s:
        return rng.choice(list(_ALPHABET))
    op = int(rng.integers(0, 3))
    pos = int(rng.integers(0, len(s)))
    letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    if op == 0:  # substitute
        return s[:pos] + letter + s[pos + 1 :]
    if op == 1:  # insert
        return s[:pos] + letter + s[pos:]
    return s[:pos] + s[pos + 1 :] or letter  # delete (never return empty)


def make_duplicates(dataset: Dataset, distinct_fraction: float, seed: int = 97) -> Dataset:
    """Return a dataset of the same size with only ``distinct_fraction`` unique objects.

    Implements the "distinct data proportion" knob of Fig. 10: the remaining
    objects are exact copies of randomly chosen kept objects, so the overall
    cardinality is unchanged but duplicate keys abound.
    """
    if not 0 < distinct_fraction <= 1:
        raise DatasetError(f"distinct_fraction must be in (0, 1], got {distinct_fraction}")
    rng = np.random.default_rng(seed)
    n = len(dataset.objects)
    keep = max(1, int(round(n * distinct_fraction)))
    kept_idx = rng.choice(n, size=keep, replace=False)
    copies_idx = rng.choice(kept_idx, size=n - keep, replace=True)
    all_idx = np.concatenate([kept_idx, copies_idx])
    rng.shuffle(all_idx)
    if isinstance(dataset.objects, np.ndarray):
        objects = dataset.objects[all_idx]
    else:
        objects = [dataset.objects[int(i)] for i in all_idx]
    return Dataset(
        name=f"{dataset.name}-distinct{int(distinct_fraction * 100)}",
        objects=objects,
        metric=dataset.metric,
        seed=dataset.seed,
        description=f"{dataset.description} (distinct fraction {distinct_fraction:.0%})",
        paper_cardinality=dataset.paper_cardinality,
        dimensionality=dataset.dimensionality,
    )
