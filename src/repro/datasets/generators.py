"""Synthetic generators standing in for the paper's five real datasets.

| Paper dataset | Cardinality (paper) | Metric            | Stand-in generator            |
|---------------|---------------------|-------------------|-------------------------------|
| Words         | 611,756             | edit distance     | :func:`generate_words`        |
| T-Loc         | 10,000,000          | L2 norm (2-d)     | :func:`generate_tloc`         |
| Vector        | 200,000             | word cosine (300-d)| :func:`generate_vector`      |
| DNA           | 1,000,000           | edit distance (~108)| :func:`generate_dna`        |
| Color         | 5,000,000           | L1 norm (282-d)   | :func:`generate_color`        |

The defaults are scaled down (DESIGN.md §2) but keep the paper's *relative*
sizes — T-Loc largest, Vector smallest among the vector sets — along with the
metric, dimensionality and clustered structure that drive index behaviour.
Every generator is a deterministic function of ``(cardinality, seed)``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..metrics.string import EditDistance
from ..metrics.vector import AngularDistance, EuclideanDistance, ManhattanDistance
from .base import Dataset

__all__ = [
    "generate_words",
    "generate_tloc",
    "generate_vector",
    "generate_dna",
    "generate_color",
    "DEFAULT_CARDINALITIES",
]

#: Default scaled-down cardinalities, preserving the paper's size ordering
#: (T-Loc > Color > DNA ≈ Words > Vector after scaling).
DEFAULT_CARDINALITIES = {
    "words": 4000,
    "tloc": 20000,
    "vector": 1500,
    "dna": 600,
    "color": 5000,
}

_LETTERS = np.array(list("abcdefghijklmnopqrstuvwxyz"))
_DNA_BASES = np.array(list("ACGT"))


def _check_cardinality(n: int) -> None:
    if n <= 1:
        raise DatasetError(f"cardinality must be at least 2, got {n}")


def generate_words(cardinality: int | None = None, seed: int = 101) -> Dataset:
    """English-like words (length 1-34, Zipf-ish), compared with edit distance.

    Words are built from a pool of common "roots" plus prefixes/suffixes so
    that — like the Moby corpus — many words share long substrings and the
    edit-distance distribution has a dense near range.
    """
    n = DEFAULT_CARDINALITIES["words"] if cardinality is None else int(cardinality)
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    num_roots = max(8, n // 40)
    root_lengths = np.clip(rng.integers(2, 26, size=num_roots), 2, 26)
    roots = ["".join(rng.choice(_LETTERS, size=int(length))) for length in root_lengths]
    suffixes = ["", "s", "ed", "ing", "er", "ly", "ness", "tion", "al", "ic"]
    prefixes = ["", "", "", "un", "re", "pre", "non", "anti"]
    words = []
    for _ in range(n):
        root = roots[int(rng.integers(0, num_roots))]
        word = prefixes[int(rng.integers(0, len(prefixes)))] + root
        word += suffixes[int(rng.integers(0, len(suffixes)))]
        # occasional random mutation to diversify lengths up to ~34
        if rng.random() < 0.15:
            extra = "".join(rng.choice(_LETTERS, size=int(rng.integers(1, 12))))
            word += extra
        words.append(word[:34])
    return Dataset(
        name="words",
        objects=words,
        metric=EditDistance(expected_length=8),
        seed=seed,
        description="Synthetic stand-in for the Moby Words corpus (edit distance)",
        paper_cardinality=611_756,
        dimensionality=34,
    )


def generate_tloc(cardinality: int | None = None, seed: int = 102) -> Dataset:
    """2-d geo-locations (clustered around cities), compared with the L2 norm.

    Twitter-user locations cluster heavily around urban centres; the stand-in
    draws points from a mixture of anisotropic Gaussians plus a uniform
    background, in degree-like coordinates.
    """
    n = DEFAULT_CARDINALITIES["tloc"] if cardinality is None else int(cardinality)
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    num_cities = 24
    centers = np.column_stack(
        [rng.uniform(-180, 180, size=num_cities), rng.uniform(-60, 70, size=num_cities)]
    )
    weights = rng.dirichlet(np.full(num_cities, 0.6))
    assignment = rng.choice(num_cities, size=n, p=weights)
    spread = rng.uniform(0.2, 3.0, size=num_cities)
    points = centers[assignment] + rng.normal(0, 1, size=(n, 2)) * spread[assignment][:, None]
    background = rng.random(n) < 0.05
    points[background] = np.column_stack(
        [rng.uniform(-180, 180, size=int(background.sum())),
         rng.uniform(-90, 90, size=int(background.sum()))]
    )
    return Dataset(
        name="tloc",
        objects=points,
        metric=EuclideanDistance(),
        seed=seed,
        description="Synthetic stand-in for the T-Loc Twitter locations (L2 norm)",
        paper_cardinality=10_000_000,
        dimensionality=2,
    )


def generate_vector(cardinality: int | None = None, seed: int = 103, dim: int = 300) -> Dataset:
    """300-d word-embedding-like vectors, compared with angular (word cosine) distance.

    Embeddings live near a low-dimensional manifold: the stand-in mixes a few
    dominant latent directions with isotropic noise and normalises to unit
    length, giving the anisotropic angular-distance distribution typical of
    word2vec-style embeddings.
    """
    n = DEFAULT_CARDINALITIES["vector"] if cardinality is None else int(cardinality)
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    latent_dim = 8
    basis = rng.normal(size=(latent_dim, dim))
    codes = rng.normal(size=(n, latent_dim)) * rng.uniform(0.5, 2.0, size=latent_dim)
    vectors = codes @ basis + 0.15 * rng.normal(size=(n, dim))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return Dataset(
        name="vector",
        objects=vectors,
        metric=AngularDistance(),
        seed=seed,
        description="Synthetic stand-in for Spanish-billion-words embeddings (word cosine)",
        paper_cardinality=200_000,
        dimensionality=dim,
    )


def generate_dna(cardinality: int | None = None, seed: int = 104, length: int = 108) -> Dataset:
    """DNA reads (~108 bases) derived from a few reference motifs, edit distance.

    Real sequencing reads are mutated copies of reference regions; the
    stand-in mutates (substitutes / inserts / deletes) a handful of reference
    strings so that near-duplicates at small edit distances exist, exactly
    the regime where metric pruning matters.
    """
    n = DEFAULT_CARDINALITIES["dna"] if cardinality is None else int(cardinality)
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    num_refs = max(4, n // 100)
    references = ["".join(rng.choice(_DNA_BASES, size=length)) for _ in range(num_refs)]
    reads = []
    for _ in range(n):
        ref = list(references[int(rng.integers(0, num_refs))])
        num_mutations = int(rng.integers(0, max(2, length // 10)))
        for _ in range(num_mutations):
            op = int(rng.integers(0, 3))
            pos = int(rng.integers(0, len(ref)))
            base = str(rng.choice(_DNA_BASES))
            if op == 0:
                ref[pos] = base
            elif op == 1 and len(ref) < length + 8:
                ref.insert(pos, base)
            elif len(ref) > 4:
                del ref[pos]
        reads.append("".join(ref))
    return Dataset(
        name="dna",
        objects=reads,
        metric=EditDistance(expected_length=length),
        seed=seed,
        description="Synthetic stand-in for NCBI DNA reads (edit distance)",
        paper_cardinality=1_000_000,
        dimensionality=length,
    )


def generate_color(cardinality: int | None = None, seed: int = 105, dim: int = 282) -> Dataset:
    """282-d image colour-feature histograms, compared with the L1 norm.

    Image features are sparse, non-negative histograms; the stand-in draws
    Dirichlet histograms from a handful of "scene types" so that clusters of
    visually similar images exist.
    """
    n = DEFAULT_CARDINALITIES["color"] if cardinality is None else int(cardinality)
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    num_scenes = 16
    # every point is a blend of its scene's centre histogram and an individual
    # sample: intra-scene L1 distances stay small while inter-scene distances
    # spread out with the distance between scene centres, giving the pivot
    # pruning a usable signal (unlike fully disjoint supports, whose pairwise
    # distances all concentrate at the maximum)
    shared = rng.dirichlet(np.full(dim, 0.15))
    centers = np.stack([
        0.5 * shared + 0.5 * rng.dirichlet(np.full(dim, rng.uniform(0.05, 0.4)))
        for _ in range(num_scenes)
    ])
    assignment = rng.integers(0, num_scenes, size=n)
    blend = rng.uniform(0.55, 0.85, size=n)[:, None]
    individual = rng.dirichlet(np.full(dim, 0.2), size=n)
    features = blend * centers[assignment] + (1.0 - blend) * individual
    return Dataset(
        name="color",
        objects=features,
        metric=ManhattanDistance(),
        seed=seed,
        description="Synthetic stand-in for Flickr colour features (L1 norm)",
        paper_cardinality=5_000_000,
        dimensionality=dim,
    )
