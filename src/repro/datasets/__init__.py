"""Synthetic stand-ins for the paper's five evaluation datasets."""

from typing import Callable, Dict

from ..exceptions import DatasetError
from .base import Dataset, make_duplicates
from .generators import (
    DEFAULT_CARDINALITIES,
    generate_color,
    generate_dna,
    generate_tloc,
    generate_vector,
    generate_words,
)

__all__ = [
    "Dataset",
    "make_duplicates",
    "generate_words",
    "generate_tloc",
    "generate_vector",
    "generate_dna",
    "generate_color",
    "DEFAULT_CARDINALITIES",
    "DATASET_REGISTRY",
    "get_dataset",
    "available_datasets",
]

#: Name-based registry used by the evaluation harness and the benchmarks.
DATASET_REGISTRY: Dict[str, Callable[..., Dataset]] = {
    "words": generate_words,
    "tloc": generate_tloc,
    "vector": generate_vector,
    "dna": generate_dna,
    "color": generate_color,
}


def available_datasets() -> list[str]:
    """Return the registered dataset names in the paper's order."""
    return list(DATASET_REGISTRY)


def get_dataset(name: str, cardinality: int | None = None, seed: int | None = None) -> Dataset:
    """Generate the dataset registered under ``name``."""
    key = name.strip().lower()
    try:
        factory = DATASET_REGISTRY[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
    kwargs = {}
    if cardinality is not None:
        kwargs["cardinality"] = cardinality
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
