"""The concurrent query-serving front-end over a :class:`~repro.core.GTS` index.

:class:`GTSService` is what the ROADMAP's "heavy traffic from millions of
users" scenario looks like on the simulated GPU: many clients submit
interleaved range/kNN/insert/delete requests with open-loop arrival times, a
:class:`~repro.service.scheduler.SchedulingPolicy` coalesces them into
micro-batches, and each micro-batch is dispatched through the index's
mixed-batch entry point (:meth:`GTS.execute_batch`) so homogeneous runs of
queries ride the paper's batch algorithms (Algorithms 4-5) with their
memory-aware two-stage grouping.

Time model.  The service runs an event-driven loop over *simulated* seconds —
the same clock the :mod:`repro.gpusim` device charges kernel time against.
The loop alternates between two moves:

1. advance the clock to the next interesting instant (a request arrival or
   the policy's wake-up time), admitting newly-arrived requests; and
2. when the policy cuts a batch, execute it on the device and advance the
   clock by the batch's measured dispatch + kernel time.

The device is busy while a batch runs, so requests arriving mid-batch simply
queue until the loop looks again — exactly the head-of-line behaviour a real
single-GPU serving process exhibits.

Maintenance.  With a :class:`MaintenanceHook`, the service also drives the
index's incremental maintenance subsystem (DESIGN.md §9): after each
micro-batch — and whenever the device would otherwise sit idle — it runs one
bounded generation-rebuild slice, so a cache overflow never stalls a query
batch behind a full stop-the-world reconstruction.  The hook is
deadline-aware in the simple, load-shedding sense: while the request queue is
deep, slices are deferred (up to ``max_deferrals`` consecutive times) so
queries keep priority; idle time is always spent on maintenance first — the
serving-layer realisation of the paper's "peak-valley" strategy.

Correctness.  Policies dispatch arrival-ordered prefixes of the queue and
:meth:`GTS.execute_batch` treats updates as barriers, so the answers are
identical to replaying the same request stream sequentially against the bare
index — the property ``tests/test_service.py`` locks in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.gts import GTS
from ..exceptions import QueryError
from ..gpusim.timing import PhaseTimer
from .requests import Request, Response
from .scheduler import GreedyBatchPolicy, SchedulingPolicy

__all__ = [
    "GTSService",
    "MicroBatchRecord",
    "MaintenanceHook",
    "MaintenanceSliceRecord",
]


@dataclass(frozen=True)
class MaintenanceHook:
    """Service-side schedule of incremental-maintenance slices.

    Parameters
    ----------
    defer_queue_threshold:
        Pending-request count at or above which a due slice is deferred in
        favour of serving queries first.
    max_deferrals:
        Consecutive deferrals after which a slice runs regardless of load,
        bounding how long maintenance can be starved.
    config:
        Optional :class:`~repro.core.maintenance.MaintenanceConfig` applied
        when the service auto-enables maintenance on an index that does not
        have it switched on yet.
    """

    defer_queue_threshold: int = 8
    max_deferrals: int = 4
    config: object = None

    def __post_init__(self) -> None:
        if self.defer_queue_threshold < 1:
            raise QueryError(
                f"defer_queue_threshold must be >= 1, got {self.defer_queue_threshold}"
            )
        if self.max_deferrals < 0:
            raise QueryError(f"max_deferrals must be >= 0, got {self.max_deferrals}")


@dataclass
class MaintenanceSliceRecord:
    """Bookkeeping of one maintenance slice the service ran."""

    #: simulated time at which the slice started
    at: float
    #: simulated seconds the slice held the device
    sim_time: float
    #: construction levels the slice advanced
    levels: int
    #: True when this slice completed the rebuild and swapped generations
    swapped: bool
    #: True when the slice ran in an idle gap (no pending requests)
    idle: bool


@dataclass
class MicroBatchRecord:
    """Bookkeeping of one dispatched micro-batch (for reports and tests)."""

    batch_id: int
    size: int
    dispatched_at: float
    completed_at: float
    dispatch_time: float
    kernel_time: float
    #: request-kind histogram, e.g. ``{"range": 3, "knn": 5}``
    kinds: dict = field(default_factory=dict)
    #: full device-activity delta of the batch (dispatch + kernel phases)
    stats: object = None

    @property
    def service_time(self) -> float:
        """Total simulated seconds the device was busy with this batch."""
        return self.dispatch_time + self.kernel_time


class GTSService:
    """Serve interleaved requests from many clients over one GTS index.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.GTS` index.  The service shares the
        index's simulated device; all timing is charged there.
    policy:
        The micro-batching policy; defaults to a
        :class:`~repro.service.scheduler.GreedyBatchPolicy` with its stock
        batch size / max wait.
    maintenance:
        Optional :class:`MaintenanceHook`.  When given, the service enables
        incremental maintenance on the index (unless already enabled) and
        schedules generation-rebuild slices between micro-batches and in
        idle gaps; slices run are recorded in :attr:`maintenance_records`.

    Use :meth:`serve` for a whole pre-generated workload (the benchmark and
    CLI path) or :meth:`submit` + :meth:`flush` for ad-hoc request lists.
    """

    def __init__(
        self,
        index: GTS,
        policy: Optional[SchedulingPolicy] = None,
        maintenance: Optional[MaintenanceHook] = None,
    ):
        index._require_built()
        self.index = index
        self.policy = policy or GreedyBatchPolicy()
        self.maintenance_hook = maintenance
        self.batches: list[MicroBatchRecord] = []
        self.maintenance_records: list[MaintenanceSliceRecord] = []
        self._deferrals = 0
        self._batch_counter = 0
        self._submitted: list[Request] = []
        self._next_request_id = 0
        if maintenance is not None and not getattr(index, "maintenance_enabled", False):
            index.enable_incremental_maintenance(maintenance.config)

    # ------------------------------------------------------------- submission
    def submit(
        self,
        kind: str,
        payload=None,
        radius: Optional[float] = None,
        k: Optional[int] = None,
        client_id: int = 0,
        arrival_time: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Request:
        """Queue one ad-hoc request and return it (served on :meth:`flush`).

        ``arrival_time`` defaults to just after the previously submitted
        request so that a plain submit/submit/flush sequence replays in
        submission order.
        """
        if arrival_time is None:
            arrival_time = self._submitted[-1].arrival_time if self._submitted else 0.0
        request = Request(
            request_id=self._next_request_id,
            client_id=client_id,
            kind=kind,
            arrival_time=float(arrival_time),
            payload=payload,
            radius=radius,
            k=k,
            deadline=deadline,
        )
        self._next_request_id += 1
        self._submitted.append(request)
        return request

    def flush(self) -> list[Response]:
        """Serve every request queued via :meth:`submit` and clear the queue."""
        requests, self._submitted = self._submitted, []
        return self.serve(requests)

    # -------------------------------------------------------------- main loop
    def serve(self, requests: Iterable[Request]) -> list[Response]:
        """Run the event loop over a request stream; returns one response each.

        Responses come back in dispatch order, which for the shipped
        (prefix-dispatching) policies equals arrival order.  An empty stream
        is served trivially (no batches, no device activity).
        """
        stream = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        responses: list[Response] = []
        pending: deque[Request] = deque()
        cursor = 0
        now = 0.0

        while cursor < len(stream) or pending:
            while cursor < len(stream) and stream[cursor].arrival_time <= now:
                pending.append(stream[cursor])
                cursor += 1
            next_arrival = stream[cursor].arrival_time if cursor < len(stream) else None

            decision = self.policy.decide(pending, now, next_arrival)
            if decision.batch:
                batch = decision.batch
                # Sequential equivalence requires arrival-ordered prefixes; a
                # policy returning anything else would silently drop/duplicate
                # requests below, so refuse it loudly instead.
                for request in batch:
                    if not pending or pending[0] is not request:
                        raise QueryError(
                            f"{self.policy.name} returned a non-prefix batch; "
                            "policies must dispatch requests in arrival order"
                        )
                    pending.popleft()
                record, batch_responses = self._dispatch(batch, now)
                responses.extend(batch_responses)
                self.policy.observe(record.size, record.service_time)
                now = record.completed_at
                # maintenance rides between micro-batches: at most one
                # bounded slice before the next batch can form
                now = self._run_maintenance_slice(now, len(pending))
                continue

            # No batch cut: the device is idle until the policy's wake-up or
            # the next arrival — idle time is maintenance time first (the
            # "valley" of the paper's peak-valley strategy).
            advanced = self._run_maintenance_slice(now, len(pending))
            if advanced != now:
                now = advanced
                continue

            # Sleep until the policy's wake-up or the next arrival.  A policy
            # that neither dispatches nor names a finite wake-up while the
            # stream is drained would hang the loop, so force-flush in that
            # case.
            candidates = [t for t in (decision.wake_at, next_arrival) if t is not None]
            wake = min(candidates) if candidates else float("inf")
            if wake == float("inf"):
                if pending:
                    record, batch_responses = self._dispatch(list(pending), now)
                    pending.clear()
                    responses.extend(batch_responses)
                    self.policy.observe(record.size, record.service_time)
                    now = record.completed_at
                continue
            now = max(now, wake)

        # the stream is fully served; drain any rebuild still in flight so
        # the index is fresh before the next serve() call
        while True:
            advanced = self._run_maintenance_slice(now, 0)
            if advanced == now:
                break
            now = advanced

        return responses

    # ------------------------------------------------------------ maintenance
    def _run_maintenance_slice(self, now: float, pending_count: int) -> float:
        """Run at most one due maintenance slice at ``now``; returns the clock.

        Deadline-aware deferral: under load (``pending_count`` at or above
        the hook's threshold) a due slice is skipped up to ``max_deferrals``
        consecutive times so queries keep priority; idle slices always run.
        """
        hook = self.maintenance_hook
        if hook is None or not getattr(self.index, "maintenance_due", False):
            self._deferrals = 0
            return now
        idle = pending_count == 0
        if (
            not idle
            and pending_count >= hook.defer_queue_threshold
            and self._deferrals < hook.max_deferrals
        ):
            self._deferrals += 1
            return now
        self._deferrals = 0
        before = self.index.device.stats.sim_time
        report = self.index.run_maintenance_slice()
        elapsed = self.index.device.stats.sim_time - before
        if report is None:
            return now
        self.maintenance_records.append(
            MaintenanceSliceRecord(
                at=now,
                sim_time=elapsed,
                levels=report.levels,
                swapped=report.swapped,
                idle=idle,
            )
        )
        return now + elapsed

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, batch: Sequence[Request], now: float):
        """Execute one micro-batch at simulated time ``now``."""
        if not batch:
            raise QueryError("cannot dispatch an empty micro-batch")
        self._batch_counter += 1
        device = self.index.device
        timer = PhaseTimer(device)

        with timer.phase("dispatch"):
            # Batch assembly: stage the request descriptors onto the device in
            # one coalesced copy (Section 5.1 copies queries host→device
            # before processing) plus one scatter kernel.
            device.transfer_to_device(len(batch) * 32)
            device.launch_kernel(
                work_items=len(batch), op_cost=1.0, label="service-batch-assemble"
            )
        with timer.phase("kernel"):
            results = self.index.execute_batch([r.as_op() for r in batch])

        dispatch_time = timer.sim_time("dispatch")
        kernel_time = timer.sim_time("kernel")
        completed_at = now + dispatch_time + kernel_time
        batch_stats = timer.stats["dispatch"].merge(timer.stats["kernel"])
        per_request_stats = batch_stats.scale(1.0 / len(batch))

        kinds: dict = {}
        for request in batch:
            kinds[request.kind] = kinds.get(request.kind, 0) + 1
        record = MicroBatchRecord(
            batch_id=self._batch_counter,
            size=len(batch),
            dispatched_at=now,
            completed_at=completed_at,
            dispatch_time=dispatch_time,
            kernel_time=kernel_time,
            kinds=kinds,
            stats=batch_stats,
        )
        self.batches.append(record)

        responses = [
            Response(
                request=request,
                result=result,
                batch_id=record.batch_id,
                batch_size=record.size,
                dispatched_at=now,
                completed_at=completed_at,
                dispatch_time=dispatch_time,
                kernel_time=kernel_time,
                attributed_stats=per_request_stats,
            )
            for request, result in zip(batch, results)
        ]
        return record, responses
