"""The concurrent query-serving front-end over a :class:`~repro.core.GTS` index.

:class:`GTSService` is what the ROADMAP's "heavy traffic from millions of
users" scenario looks like on the simulated GPU: many clients submit
interleaved range/kNN/insert/delete requests with open-loop arrival times, a
:class:`~repro.service.scheduler.SchedulingPolicy` coalesces them into
micro-batches, and each micro-batch is dispatched through the index's
mixed-batch entry point (:meth:`GTS.execute_batch`) so homogeneous runs of
queries ride the paper's batch algorithms (Algorithms 4-5) with their
memory-aware two-stage grouping.

Time model.  The service runs an event-driven loop over *simulated* seconds —
the same clock the :mod:`repro.gpusim` device charges kernel time against.
The loop alternates between two moves:

1. advance the clock to the next interesting instant (a request arrival or
   the policy's wake-up time), admitting newly-arrived requests; and
2. when the policy cuts a batch, execute it on the device and advance the
   clock by the batch's measured dispatch + kernel time.

The device is busy while a batch runs, so requests arriving mid-batch simply
queue until the loop looks again — exactly the head-of-line behaviour a real
single-GPU serving process exhibits.

Correctness.  Policies dispatch arrival-ordered prefixes of the queue and
:meth:`GTS.execute_batch` treats updates as barriers, so the answers are
identical to replaying the same request stream sequentially against the bare
index — the property ``tests/test_service.py`` locks in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.gts import GTS
from ..exceptions import QueryError
from ..gpusim.timing import PhaseTimer
from .requests import Request, Response
from .scheduler import GreedyBatchPolicy, SchedulingPolicy

__all__ = ["GTSService", "MicroBatchRecord"]


@dataclass
class MicroBatchRecord:
    """Bookkeeping of one dispatched micro-batch (for reports and tests)."""

    batch_id: int
    size: int
    dispatched_at: float
    completed_at: float
    dispatch_time: float
    kernel_time: float
    #: request-kind histogram, e.g. ``{"range": 3, "knn": 5}``
    kinds: dict = field(default_factory=dict)
    #: full device-activity delta of the batch (dispatch + kernel phases)
    stats: object = None

    @property
    def service_time(self) -> float:
        """Total simulated seconds the device was busy with this batch."""
        return self.dispatch_time + self.kernel_time


class GTSService:
    """Serve interleaved requests from many clients over one GTS index.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.GTS` index.  The service shares the
        index's simulated device; all timing is charged there.
    policy:
        The micro-batching policy; defaults to a
        :class:`~repro.service.scheduler.GreedyBatchPolicy` with its stock
        batch size / max wait.

    Use :meth:`serve` for a whole pre-generated workload (the benchmark and
    CLI path) or :meth:`submit` + :meth:`flush` for ad-hoc request lists.
    """

    def __init__(self, index: GTS, policy: Optional[SchedulingPolicy] = None):
        index._require_built()
        self.index = index
        self.policy = policy or GreedyBatchPolicy()
        self.batches: list[MicroBatchRecord] = []
        self._batch_counter = 0
        self._submitted: list[Request] = []
        self._next_request_id = 0

    # ------------------------------------------------------------- submission
    def submit(
        self,
        kind: str,
        payload=None,
        radius: Optional[float] = None,
        k: Optional[int] = None,
        client_id: int = 0,
        arrival_time: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Request:
        """Queue one ad-hoc request and return it (served on :meth:`flush`).

        ``arrival_time`` defaults to just after the previously submitted
        request so that a plain submit/submit/flush sequence replays in
        submission order.
        """
        if arrival_time is None:
            arrival_time = self._submitted[-1].arrival_time if self._submitted else 0.0
        request = Request(
            request_id=self._next_request_id,
            client_id=client_id,
            kind=kind,
            arrival_time=float(arrival_time),
            payload=payload,
            radius=radius,
            k=k,
            deadline=deadline,
        )
        self._next_request_id += 1
        self._submitted.append(request)
        return request

    def flush(self) -> list[Response]:
        """Serve every request queued via :meth:`submit` and clear the queue."""
        requests, self._submitted = self._submitted, []
        return self.serve(requests)

    # -------------------------------------------------------------- main loop
    def serve(self, requests: Iterable[Request]) -> list[Response]:
        """Run the event loop over a request stream; returns one response each.

        Responses come back in dispatch order, which for the shipped
        (prefix-dispatching) policies equals arrival order.  An empty stream
        is served trivially (no batches, no device activity).
        """
        stream = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        responses: list[Response] = []
        pending: deque[Request] = deque()
        cursor = 0
        now = 0.0

        while cursor < len(stream) or pending:
            while cursor < len(stream) and stream[cursor].arrival_time <= now:
                pending.append(stream[cursor])
                cursor += 1
            next_arrival = stream[cursor].arrival_time if cursor < len(stream) else None

            decision = self.policy.decide(pending, now, next_arrival)
            if decision.batch:
                batch = decision.batch
                # Sequential equivalence requires arrival-ordered prefixes; a
                # policy returning anything else would silently drop/duplicate
                # requests below, so refuse it loudly instead.
                for request in batch:
                    if not pending or pending[0] is not request:
                        raise QueryError(
                            f"{self.policy.name} returned a non-prefix batch; "
                            "policies must dispatch requests in arrival order"
                        )
                    pending.popleft()
                record, batch_responses = self._dispatch(batch, now)
                responses.extend(batch_responses)
                self.policy.observe(record.size, record.service_time)
                now = record.completed_at
                continue

            # No batch cut: sleep until the policy's wake-up or the next
            # arrival.  A policy that neither dispatches nor names a finite
            # wake-up while the stream is drained would hang the loop, so
            # force-flush in that case.
            candidates = [t for t in (decision.wake_at, next_arrival) if t is not None]
            wake = min(candidates) if candidates else float("inf")
            if wake == float("inf"):
                if pending:
                    record, batch_responses = self._dispatch(list(pending), now)
                    pending.clear()
                    responses.extend(batch_responses)
                    self.policy.observe(record.size, record.service_time)
                    now = record.completed_at
                continue
            now = max(now, wake)

        return responses

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, batch: Sequence[Request], now: float):
        """Execute one micro-batch at simulated time ``now``."""
        if not batch:
            raise QueryError("cannot dispatch an empty micro-batch")
        self._batch_counter += 1
        device = self.index.device
        timer = PhaseTimer(device)

        with timer.phase("dispatch"):
            # Batch assembly: stage the request descriptors onto the device in
            # one coalesced copy (Section 5.1 copies queries host→device
            # before processing) plus one scatter kernel.
            device.transfer_to_device(len(batch) * 32)
            device.launch_kernel(
                work_items=len(batch), op_cost=1.0, label="service-batch-assemble"
            )
        with timer.phase("kernel"):
            results = self.index.execute_batch([r.as_op() for r in batch])

        dispatch_time = timer.sim_time("dispatch")
        kernel_time = timer.sim_time("kernel")
        completed_at = now + dispatch_time + kernel_time
        batch_stats = timer.stats["dispatch"].merge(timer.stats["kernel"])
        per_request_stats = batch_stats.scale(1.0 / len(batch))

        kinds: dict = {}
        for request in batch:
            kinds[request.kind] = kinds.get(request.kind, 0) + 1
        record = MicroBatchRecord(
            batch_id=self._batch_counter,
            size=len(batch),
            dispatched_at=now,
            completed_at=completed_at,
            dispatch_time=dispatch_time,
            kernel_time=kernel_time,
            kinds=kinds,
            stats=batch_stats,
        )
        self.batches.append(record)

        responses = [
            Response(
                request=request,
                result=result,
                batch_id=record.batch_id,
                batch_size=record.size,
                dispatched_at=now,
                completed_at=completed_at,
                dispatch_time=dispatch_time,
                kernel_time=kernel_time,
                attributed_stats=per_request_stats,
            )
            for request, result in zip(batch, results)
        ]
        return record, responses
