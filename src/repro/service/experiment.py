"""Serving-layer experiments: micro-batching sweep and update-heavy serving.

:func:`experiment_service_batching` is the client-side companion of the
paper's Fig. 9: where Fig. 9 hands the index ever-larger *pre-formed*
batches, this experiment keeps the offered load fixed (an open-loop Poisson
stream from several simulated clients) and sweeps the *scheduler's* knobs —
``max_batch_size`` and ``max_wait`` — to expose the throughput-vs-latency
trade-off of micro-batching.  ``max_batch_size=1`` is the no-batching
baseline (per-request dispatch); larger budgets amortise kernel launches and
tree descents across requests, raising throughput at the cost of queueing
latency for the earliest request in each batch.

:func:`experiment_update_heavy_serving` stresses the *update* path instead
(DESIGN.md §9): an insert-heavy stream repeatedly overflows a small cache
table, and the experiment compares the paper's stop-the-world rebuild (every
overflow reconstructs the index inside the overflowing micro-batch) against
the incremental maintenance subsystem (generation-swap rebuilds advanced in
bounded slices between micro-batches).  The non-blocking row must show that
no query batch stalls behind a full reconstruction — the longest device
occupancy is bounded by one maintenance slice — at byte-identical answers.

Every configuration serves the *same* generated stream over a freshly built
index and device, and every configuration's answers are checked against a
sequential replay of the stream on the bare index — so the rows compare
equal-correctness runs, per the serving layer's contract (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets import DEFAULT_CARDINALITIES, get_dataset
from ..evalsuite.reporting import ExperimentResult
from ..evalsuite.workloads import radius_for_selectivity
from ..gpusim.device import Device
from ..gpusim.specs import DeviceSpec
from .requests import DELETE, INSERT, KNN, RANGE, Request
from .scheduler import DeadlineAwarePolicy, GreedyBatchPolicy
from .service import GTSService, MaintenanceHook
from .workload import WorkloadSpec, generate_workload

__all__ = [
    "experiment_service_batching",
    "experiment_update_heavy_serving",
    "sequential_replay",
    "UPDATE_HEAVY_MIX",
]

#: Fraction of the generated dataset held out as the insert pool.
HOLDOUT_FRACTION = 0.1

#: Request mix of the update-heavy serving scenario: half the stream is
#: inserts, so the cache table overflows continuously while queries keep
#: arriving — the workload shape that exposes stop-the-world rebuild stalls.
UPDATE_HEAVY_MIX = {RANGE: 0.2, KNN: 0.2, INSERT: 0.5, DELETE: 0.1}


def sequential_replay(index, requests: Sequence[Request]) -> list:
    """Replay a request stream one-by-one against a bare index.

    This is the serving layer's correctness oracle: no batching, no
    scheduling — each request becomes one direct :meth:`GTS.execute_batch`
    call in arrival order.  Returns the per-request results in stream order.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    results = []
    for request in ordered:
        results.extend(index.execute_batch([request.as_op()]))
    return results


def _build_index(dataset, num_indexed: int, node_capacity: int, seed: int):
    from ..core.gts import GTS

    device = Device(DeviceSpec())
    index = GTS.build(
        dataset.objects[:num_indexed],
        dataset.metric,
        node_capacity=node_capacity,
        device=device,
        seed=seed,
    )
    return index


def experiment_service_batching(
    dataset_name: str = "tloc",
    batch_sizes: Sequence[int] = (1, 4, 16, 64),
    max_waits: Sequence[float] = (200e-6,),
    include_deadline_policy: bool = True,
    deadline: float = 2e-3,
    num_clients: int = 6,
    rate_per_client: float = 250_000.0,
    duration: float = 2e-3,
    node_capacity: int = 20,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep the scheduler's batching knobs at a fixed offered load.

    Returns one row per ``(policy, max_batch, max_wait)`` configuration with
    achieved throughput (requests per simulated minute), latency percentiles,
    mean micro-batch size and a ``correct`` flag (answers identical to the
    sequential replay).
    """
    from .report import summarize

    if cardinality is None:
        cardinality = max(200, int(DEFAULT_CARDINALITIES[dataset_name] * scale))
    dataset = get_dataset(dataset_name, cardinality=cardinality, seed=seed)
    num_indexed = max(2, int(len(dataset.objects) * (1.0 - HOLDOUT_FRACTION)))
    radius = radius_for_selectivity(dataset.objects[:num_indexed], dataset.metric, 0.01)

    spec = WorkloadSpec(
        num_clients=num_clients,
        rate_per_client=rate_per_client,
        duration=duration,
        radius=radius,
        deadline=deadline,
        seed=seed,
    )
    workload = generate_workload(dataset.objects, num_indexed, spec)

    oracle_index = _build_index(dataset, num_indexed, node_capacity, seed)
    expected = sequential_replay(oracle_index, workload.requests)
    oracle_index.close()

    configs = [
        ("greedy", batch, wait)
        for batch in batch_sizes
        for wait in max_waits
    ]
    if include_deadline_policy:
        configs.append(("deadline", max(batch_sizes), max(max_waits)))

    result = ExperimentResult(
        experiment="service-batching",
        title=f"micro-batching sweep on {dataset.name} "
        f"({len(workload.requests)} requests, {num_clients} clients)",
    )
    for policy_name, max_batch, max_wait in configs:
        if policy_name == "deadline":
            policy = DeadlineAwarePolicy(max_batch_size=max_batch, max_wait=max_wait)
        else:
            policy = GreedyBatchPolicy(max_batch_size=max_batch, max_wait=max_wait)
        index = _build_index(dataset, num_indexed, node_capacity, seed)
        service = GTSService(index, policy=policy)
        responses = service.serve(workload.requests)
        report = summarize(responses, service.batches)
        correct = [r.result for r in responses] == expected
        row = dict(
            policy=policy_name,
            max_batch=max_batch,
            max_wait_us=max_wait * 1e6,
            requests=report.num_requests,
            throughput=report.throughput,
            capacity=report.capacity,
            p50_latency=report.latency.p50,
            p99_latency=report.latency.p99,
            mean_batch=report.mean_batch_size,
            batches=report.num_batches,
            correct=correct,
            status="ok" if correct else "mismatch",
        )
        if report.deadline_miss_rate is not None:
            row["miss_rate"] = report.deadline_miss_rate
        result.add_row(**row)
        index.close()

    result.notes = (
        f"offered load {num_clients} clients x {rate_per_client:.0f} req/s for "
        f"{duration * 1e3:.2f} ms simulated; radius at 1% selectivity; "
        "max_batch=1 is the per-request-dispatch baseline"
    )
    return result


def experiment_update_heavy_serving(
    dataset_name: str = "tloc",
    num_clients: int = 6,
    rate_per_client: float = 250_000.0,
    duration: float = 2.5e-3,
    cache_capacity_bytes: int = 512,
    node_capacity: int = 8,
    max_batch: int = 64,
    max_wait: float = 200e-6,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 11,
) -> ExperimentResult:
    """Serve one update-heavy stream with blocking vs generation-swap rebuilds.

    Both rows serve the *identical* request stream (half inserts, a thin
    delete stream, the rest queries) over identically built indexes; the
    small ``cache_capacity_bytes`` makes the cache overflow every few dozen
    inserts.  The ``blocking`` row reproduces the paper's behaviour — each
    overflow rebuilds the index inside the overflowing micro-batch — while
    the ``generation-swap`` row enables incremental maintenance
    (DESIGN.md §9) and lets the service interleave bounded rebuild slices
    between micro-batches.

    Row columns of interest:

    ``max_batch_s``
        Longest device occupancy of any micro-batch — under blocking
        rebuilds this contains a full reconstruction.
    ``max_stall_s``
        Longest uninterruptible device occupancy of any kind (micro-batch
        or maintenance slice) — the worst case any queued request can wait
        behind.
    ``full_rebuild_s``
        Simulated seconds of one complete construction at the indexed size,
        for comparison against ``max_slice_s``.
    ``correct``
        Answers byte-identical to a sequential replay of the stream on a
        bare blocking index (and hence identical between the two rows).
    """
    from .report import summarize

    if cardinality is None:
        cardinality = max(400, int(DEFAULT_CARDINALITIES[dataset_name] * scale))
    dataset = get_dataset(dataset_name, cardinality=cardinality, seed=seed)
    # a deeper holdout than the query-heavy sweep: half the stream inserts
    num_indexed = max(2, int(len(dataset.objects) * 0.75))
    radius = radius_for_selectivity(dataset.objects[:num_indexed], dataset.metric, 0.01)

    spec = WorkloadSpec(
        num_clients=num_clients,
        rate_per_client=rate_per_client,
        duration=duration,
        mix=dict(UPDATE_HEAVY_MIX),
        radius=radius,
        seed=seed,
    )
    workload = generate_workload(dataset.objects, num_indexed, spec)

    def build_index():
        from ..core.gts import GTS

        return GTS.build(
            dataset.objects[:num_indexed],
            dataset.metric,
            node_capacity=node_capacity,
            device=Device(DeviceSpec()),
            cache_capacity_bytes=cache_capacity_bytes,
            seed=seed,
        )

    oracle = build_index()
    full_rebuild_s = oracle.build_result.sim_time
    expected = sequential_replay(oracle, workload.requests)
    oracle.close()

    result = ExperimentResult(
        experiment="update-heavy-serving",
        title=f"update-heavy serving on {dataset.name} "
        f"({len(workload.requests)} requests, {num_indexed} indexed, "
        f"{cache_capacity_bytes} B cache)",
    )
    # Slice after (nearly) every micro-batch: the deferral threshold sits
    # above the steady queue depth and the hard overflow valve is off, so
    # *every* rebuild must complete inside service-scheduled slices — which
    # is exactly what the `rebuilds == rebuilds_in_slices` column certifies.
    from ..core.maintenance import MaintenanceConfig

    hook = MaintenanceHook(
        defer_queue_threshold=4 * max_batch,
        max_deferrals=2,
        config=MaintenanceConfig(levels_per_slice=1, hard_overflow_factor=None),
    )
    for mode in ("blocking", "generation-swap"):
        index = build_index()
        service = GTSService(
            index,
            policy=GreedyBatchPolicy(max_batch_size=max_batch, max_wait=max_wait),
            maintenance=hook if mode == "generation-swap" else None,
        )
        responses = service.serve(workload.requests)
        report = summarize(responses, service.batches, service.maintenance_records)
        correct = [r.result for r in responses] == expected
        max_batch_s = max((b.service_time for b in service.batches), default=0.0)
        result.add_row(
            policy=mode,
            requests=report.num_requests,
            throughput=report.throughput,
            p50_latency=report.latency.p50,
            p99_latency=report.latency.p99,
            max_batch_s=max_batch_s,
            max_stall_s=max(max_batch_s, report.max_slice_time),
            rebuilds=index.automatic_rebuild_count,
            rebuilds_in_slices=report.rebuilds_completed,
            slices=report.num_maintenance_slices,
            max_slice_s=report.max_slice_time,
            maintenance_s=report.maintenance_time,
            full_rebuild_s=full_rebuild_s,
            correct=correct,
            status="ok" if correct else "mismatch",
        )
        index.close()

    result.notes = (
        f"identical stream, {num_clients} clients x {rate_per_client:.0f} req/s "
        f"for {duration * 1e3:.2f} ms simulated; mix "
        + ", ".join(f"{k}={v:.0%}" for k, v in sorted(UPDATE_HEAVY_MIX.items()))
        + "; blocking rebuilds run inside the overflowing micro-batch, "
        "generation-swap slices run between micro-batches (DESIGN.md §9)"
    )
    return result
