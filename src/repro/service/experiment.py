"""The serving-layer batching experiment (micro-batch size vs latency).

:func:`experiment_service_batching` is the client-side companion of the
paper's Fig. 9: where Fig. 9 hands the index ever-larger *pre-formed*
batches, this experiment keeps the offered load fixed (an open-loop Poisson
stream from several simulated clients) and sweeps the *scheduler's* knobs —
``max_batch_size`` and ``max_wait`` — to expose the throughput-vs-latency
trade-off of micro-batching.  ``max_batch_size=1`` is the no-batching
baseline (per-request dispatch); larger budgets amortise kernel launches and
tree descents across requests, raising throughput at the cost of queueing
latency for the earliest request in each batch.

Every configuration serves the *same* generated stream over a freshly built
index and device, and every configuration's answers are checked against a
sequential replay of the stream on the bare index — so the rows compare
equal-correctness runs, per the serving layer's contract (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets import DEFAULT_CARDINALITIES, get_dataset
from ..evalsuite.reporting import ExperimentResult
from ..evalsuite.workloads import radius_for_selectivity
from ..gpusim.device import Device
from ..gpusim.specs import DeviceSpec
from .requests import Request
from .scheduler import DeadlineAwarePolicy, GreedyBatchPolicy
from .service import GTSService
from .workload import WorkloadSpec, generate_workload

__all__ = ["experiment_service_batching", "sequential_replay"]

#: Fraction of the generated dataset held out as the insert pool.
HOLDOUT_FRACTION = 0.1


def sequential_replay(index, requests: Sequence[Request]) -> list:
    """Replay a request stream one-by-one against a bare index.

    This is the serving layer's correctness oracle: no batching, no
    scheduling — each request becomes one direct :meth:`GTS.execute_batch`
    call in arrival order.  Returns the per-request results in stream order.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    results = []
    for request in ordered:
        results.extend(index.execute_batch([request.as_op()]))
    return results


def _build_index(dataset, num_indexed: int, node_capacity: int, seed: int):
    from ..core.gts import GTS

    device = Device(DeviceSpec())
    index = GTS.build(
        dataset.objects[:num_indexed],
        dataset.metric,
        node_capacity=node_capacity,
        device=device,
        seed=seed,
    )
    return index


def experiment_service_batching(
    dataset_name: str = "tloc",
    batch_sizes: Sequence[int] = (1, 4, 16, 64),
    max_waits: Sequence[float] = (200e-6,),
    include_deadline_policy: bool = True,
    deadline: float = 2e-3,
    num_clients: int = 6,
    rate_per_client: float = 250_000.0,
    duration: float = 2e-3,
    node_capacity: int = 20,
    scale: float = 1.0,
    cardinality: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep the scheduler's batching knobs at a fixed offered load.

    Returns one row per ``(policy, max_batch, max_wait)`` configuration with
    achieved throughput (requests per simulated minute), latency percentiles,
    mean micro-batch size and a ``correct`` flag (answers identical to the
    sequential replay).
    """
    from .report import summarize

    if cardinality is None:
        cardinality = max(200, int(DEFAULT_CARDINALITIES[dataset_name] * scale))
    dataset = get_dataset(dataset_name, cardinality=cardinality, seed=seed)
    num_indexed = max(2, int(len(dataset.objects) * (1.0 - HOLDOUT_FRACTION)))
    radius = radius_for_selectivity(dataset.objects[:num_indexed], dataset.metric, 0.01)

    spec = WorkloadSpec(
        num_clients=num_clients,
        rate_per_client=rate_per_client,
        duration=duration,
        radius=radius,
        deadline=deadline,
        seed=seed,
    )
    workload = generate_workload(dataset.objects, num_indexed, spec)

    oracle_index = _build_index(dataset, num_indexed, node_capacity, seed)
    expected = sequential_replay(oracle_index, workload.requests)
    oracle_index.close()

    configs = [
        ("greedy", batch, wait)
        for batch in batch_sizes
        for wait in max_waits
    ]
    if include_deadline_policy:
        configs.append(("deadline", max(batch_sizes), max(max_waits)))

    result = ExperimentResult(
        experiment="service-batching",
        title=f"micro-batching sweep on {dataset.name} "
        f"({len(workload.requests)} requests, {num_clients} clients)",
    )
    for policy_name, max_batch, max_wait in configs:
        if policy_name == "deadline":
            policy = DeadlineAwarePolicy(max_batch_size=max_batch, max_wait=max_wait)
        else:
            policy = GreedyBatchPolicy(max_batch_size=max_batch, max_wait=max_wait)
        index = _build_index(dataset, num_indexed, node_capacity, seed)
        service = GTSService(index, policy=policy)
        responses = service.serve(workload.requests)
        report = summarize(responses, service.batches)
        correct = [r.result for r in responses] == expected
        row = dict(
            policy=policy_name,
            max_batch=max_batch,
            max_wait_us=max_wait * 1e6,
            requests=report.num_requests,
            throughput=report.throughput,
            capacity=report.capacity,
            p50_latency=report.latency.p50,
            p99_latency=report.latency.p99,
            mean_batch=report.mean_batch_size,
            batches=report.num_batches,
            correct=correct,
            status="ok" if correct else "mismatch",
        )
        if report.deadline_miss_rate is not None:
            row["miss_rate"] = report.deadline_miss_rate
        result.add_row(**row)
        index.close()

    result.notes = (
        f"offered load {num_clients} clients x {rate_per_client:.0f} req/s for "
        f"{duration * 1e3:.2f} ms simulated; radius at 1% selectivity; "
        "max_batch=1 is the per-request-dispatch baseline"
    )
    return result
