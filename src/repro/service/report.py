"""Throughput / latency-percentile reporting for the serving layer.

A :class:`ServiceReport` condenses one :meth:`GTSService.serve` run into the
numbers a serving system is judged by: offered load vs achieved throughput,
latency percentiles (p50/p90/p99) with the queue/dispatch/kernel
decomposition, mean micro-batch size, and the deadline-miss rate.  The
``to_result()`` view returns the same rows as an
:class:`~repro.evalsuite.reporting.ExperimentResult` so the CLI and the
benchmark harness print it with the house table formatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..evalsuite.reporting import ExperimentResult, format_seconds, format_throughput
from ..gpusim.timing import throughput_per_minute
from .requests import Response

__all__ = ["LatencySummary", "ServiceReport", "summarize"]

#: Percentiles every latency summary reports.
PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class LatencySummary:
    """Latency distribution of one request population (seconds, simulated)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        p50, p90, p99 = np.percentile(arr, PERCENTILES)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            max=float(arr.max()),
        )


@dataclass
class ServiceReport:
    """Aggregate view of one served workload."""

    num_requests: int
    #: simulated seconds from the first arrival to the last completion
    makespan: float
    #: achieved throughput in requests per simulated minute
    throughput: float
    #: simulated seconds the device spent serving batches (dispatch + kernel)
    device_busy_time: float = 0.0
    #: serving capacity: requests per minute of device-busy time — the
    #: load-independent measure of what micro-batching buys (a lightly loaded
    #: service achieves the offered throughput regardless of batching, but
    #: its capacity ceiling is set by the per-request device cost)
    capacity: float = 0.0
    latency: LatencySummary = None
    #: latency summaries per request kind (``"range"``, ``"knn"``, ...)
    per_kind: dict = field(default_factory=dict)
    mean_queue_time: float = 0.0
    mean_dispatch_time: float = 0.0
    mean_kernel_time: float = 0.0
    num_batches: int = 0
    mean_batch_size: float = 0.0
    #: fraction of deadline-carrying requests that completed late
    deadline_miss_rate: Optional[float] = None
    #: incremental-maintenance slices run while serving (DESIGN.md §9)
    num_maintenance_slices: int = 0
    #: simulated seconds spent inside maintenance slices
    maintenance_time: float = 0.0
    #: longest single maintenance slice — the bound on how long any query
    #: batch can stall behind rebuild work under the non-blocking path
    max_slice_time: float = 0.0
    #: generation swaps (rebuilds) completed while serving
    rebuilds_completed: int = 0

    def to_result(self, title: str = "service run") -> ExperimentResult:
        """Render as an ExperimentResult (one row overall + one per kind)."""
        result = ExperimentResult(experiment="service", title=title)
        populations = [("all", self.latency)] + sorted(self.per_kind.items())
        for name, summary in populations:
            result.add_row(
                kind=name,
                requests=summary.count,
                mean_latency=format_seconds(summary.mean),
                p50=format_seconds(summary.p50),
                p90=format_seconds(summary.p90),
                p99=format_seconds(summary.p99),
                max=format_seconds(summary.max),
            )
        notes = (
            f"throughput {format_throughput(self.throughput)} over "
            f"{format_seconds(self.makespan)} makespan "
            f"(capacity {format_throughput(self.capacity)}, device busy "
            f"{format_seconds(self.device_busy_time)}); "
            f"{self.num_batches} micro-batches, mean size {self.mean_batch_size:.1f}; "
            f"mean queue/dispatch/kernel = {format_seconds(self.mean_queue_time)} / "
            f"{format_seconds(self.mean_dispatch_time)} / "
            f"{format_seconds(self.mean_kernel_time)}"
        )
        if self.deadline_miss_rate is not None:
            notes += f"; deadline miss rate {self.deadline_miss_rate:.1%}"
        if self.num_maintenance_slices:
            notes += (
                f"; maintenance: {self.num_maintenance_slices} slices / "
                f"{self.rebuilds_completed} rebuilds in "
                f"{format_seconds(self.maintenance_time)} "
                f"(max slice {format_seconds(self.max_slice_time)})"
            )
        result.notes = notes
        return result

    def to_text(self, title: str = "service run") -> str:
        """Plain-text rendering (table + summary notes)."""
        return self.to_result(title).to_text()


def summarize(
    responses: Sequence[Response],
    batches: Sequence = (),
    maintenance: Sequence = (),
) -> ServiceReport:
    """Build a :class:`ServiceReport` from one :meth:`GTSService.serve` run.

    ``batches`` is the service's ``MicroBatchRecord`` list and
    ``maintenance`` its ``MaintenanceSliceRecord`` list; pass
    ``service.batches`` / ``service.maintenance_records`` (or the slices
    belonging to this run).  An empty response list yields an all-zero
    report.
    """
    responses = list(responses)
    batches = list(batches)
    maintenance = list(maintenance)
    busy = float(sum(b.service_time for b in batches))
    maintenance_fields = dict(
        num_maintenance_slices=len(maintenance),
        maintenance_time=float(sum(m.sim_time for m in maintenance)),
        max_slice_time=max((m.sim_time for m in maintenance), default=0.0),
        rebuilds_completed=sum(1 for m in maintenance if m.swapped),
    )
    if not responses:
        return ServiceReport(
            num_requests=0,
            makespan=0.0,
            throughput=0.0,
            device_busy_time=busy,
            capacity=0.0,
            latency=LatencySummary.from_values([]),
            num_batches=len(batches),
            **maintenance_fields,
        )

    first_arrival = min(r.request.arrival_time for r in responses)
    last_completion = max(r.completed_at for r in responses)
    makespan = max(0.0, last_completion - first_arrival)

    per_kind_values: dict[str, list[float]] = {}
    for response in responses:
        per_kind_values.setdefault(response.request.kind, []).append(response.latency)

    with_deadline = [r for r in responses if r.request.deadline is not None]
    miss_rate = None
    if with_deadline:
        miss_rate = sum(r.deadline_missed for r in with_deadline) / len(with_deadline)

    return ServiceReport(
        num_requests=len(responses),
        makespan=makespan,
        throughput=throughput_per_minute(len(responses), makespan),
        device_busy_time=busy,
        capacity=throughput_per_minute(len(responses), busy),
        latency=LatencySummary.from_values([r.latency for r in responses]),
        per_kind={
            kind: LatencySummary.from_values(values)
            for kind, values in per_kind_values.items()
        },
        mean_queue_time=float(np.mean([r.queue_time for r in responses])),
        mean_dispatch_time=float(np.mean([r.dispatch_time for r in responses])),
        mean_kernel_time=float(np.mean([r.kernel_time for r in responses])),
        num_batches=len(batches),
        mean_batch_size=float(np.mean([b.size for b in batches])) if batches else 0.0,
        deadline_miss_rate=miss_rate,
        **maintenance_fields,
    )
