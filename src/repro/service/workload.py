"""Synthetic open-loop client workloads for the serving layer.

The generator models the ROADMAP's many-concurrent-users scenario without
real threads: ``num_clients`` independent clients each emit requests as a
Poisson process (exponential inter-arrival times at ``rate_per_client``
requests per simulated second), the per-client streams are merged into one
arrival-ordered stream, and each request draws

* its **kind** from the configured range/knn/insert/delete mix,
* its **query payload** from the indexed objects with *hot-key skew* — a
  Zipf(``zipf_theta``) rank mapped through a seeded permutation, so a small
  "hot set" of objects receives most of the traffic (set ``zipf_theta=None``
  for uniform traffic),
* its **insert payload** from a held-out pool (objects beyond
  ``num_indexed``), cycling when the pool is exhausted, and
* its **delete target** from the ids this stream inserted earlier and has
  not yet deleted.  When no such id exists the request degrades to a kNN
  query, keeping every generated stream valid to replay.

Everything is a deterministic function of the spec and its ``seed`` — two
calls with equal arguments produce identical streams, which is what lets the
tests replay a stream both through :class:`GTSService` and sequentially
against the bare index and demand identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..exceptions import QueryError
from .requests import DELETE, INSERT, KNN, RANGE, Request

__all__ = ["WorkloadSpec", "Workload", "generate_workload"]

#: Default request mix: query-heavy with a thin stream of updates.
DEFAULT_MIX = {RANGE: 0.4, KNN: 0.4, INSERT: 0.1, DELETE: 0.1}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic client workload."""

    num_clients: int = 4
    #: open-loop request rate of each client, requests per simulated second
    rate_per_client: float = 50_000.0
    #: simulated seconds of arrivals to generate
    duration: float = 2e-3
    #: request-kind mix; weights are normalised, kinds may be omitted
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: range-query radius
    radius: float = 1.0
    #: kNN k
    k: int = 8
    #: Zipf exponent of the hot-key skew (> 1), or ``None`` for uniform
    zipf_theta: Optional[float] = 1.3
    #: relative completion deadline added to each arrival, or ``None``
    deadline: Optional[float] = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise QueryError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.rate_per_client <= 0 or self.duration <= 0:
            raise QueryError("rate_per_client and duration must be positive")
        if self.zipf_theta is not None and self.zipf_theta <= 1:
            raise QueryError(f"zipf_theta must be > 1 (or None), got {self.zipf_theta}")
        if not self.mix or any(w < 0 for w in self.mix.values()) or sum(self.mix.values()) <= 0:
            raise QueryError("mix must hold non-negative weights summing to > 0")
        unknown = set(self.mix) - {RANGE, KNN, INSERT, DELETE}
        if unknown:
            raise QueryError(f"unknown request kinds in mix: {sorted(unknown)}")


@dataclass
class Workload:
    """A generated, arrival-ordered request stream plus its bookkeeping."""

    spec: WorkloadSpec
    requests: list
    #: number of objects the target index is expected to be built over
    num_indexed: int

    @property
    def duration(self) -> float:
        """Simulated seconds spanned by the arrivals (0.0 when empty)."""
        return self.requests[-1].arrival_time if self.requests else 0.0

    def kind_counts(self) -> dict:
        """Histogram of request kinds actually generated."""
        counts: dict = {}
        for request in self.requests:
            counts[request.kind] = counts.get(request.kind, 0) + 1
        return counts


def generate_workload(objects: Sequence, num_indexed: int, spec: WorkloadSpec) -> Workload:
    """Generate an open-loop request stream over ``objects``.

    ``objects[:num_indexed]`` are assumed to be what the index was built
    over (query targets and delete candidates); ``objects[num_indexed:]``
    form the insert pool.  The returned requests are sorted by arrival time
    and numbered in that order.
    """
    if not 0 < num_indexed <= len(objects):
        raise QueryError(
            f"num_indexed must be in (0, {len(objects)}], got {num_indexed}"
        )
    rng = np.random.default_rng(spec.seed)

    # --- merged Poisson arrival stream
    arrivals: list[tuple[float, int]] = []
    for client_id in range(spec.num_clients):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / spec.rate_per_client))
            if t > spec.duration:
                break
            arrivals.append((t, client_id))
    arrivals.sort()

    kinds = sorted(spec.mix)
    weights = np.asarray([spec.mix[kind] for kind in kinds], dtype=np.float64)
    weights = weights / weights.sum()

    # --- hot-key skew: a seeded permutation makes the Zipf head land on a
    # pseudo-random (but reproducible) subset of the indexed objects
    hot_permutation = rng.permutation(num_indexed)

    insert_pool = list(range(num_indexed, len(objects)))
    next_insert_id = num_indexed  # GTS assigns len(objects_so_far) to inserts
    inserts_used = 0
    deletable: list[int] = []

    requests: list[Request] = []
    for request_id, (arrival, client_id) in enumerate(arrivals):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == DELETE and not deletable:
            kind = KNN  # nothing valid to delete yet; degrade to a query
        deadline = None if spec.deadline is None else arrival + spec.deadline

        if kind in (RANGE, KNN):
            if spec.zipf_theta is None:
                target = int(rng.integers(num_indexed))
            else:
                rank = int(rng.zipf(spec.zipf_theta))
                target = int(hot_permutation[(rank - 1) % num_indexed])
            requests.append(
                Request(
                    request_id=request_id,
                    client_id=client_id,
                    kind=kind,
                    arrival_time=arrival,
                    payload=objects[target],
                    radius=spec.radius if kind == RANGE else None,
                    k=spec.k if kind == KNN else None,
                    deadline=deadline,
                )
            )
        elif kind == INSERT:
            pool_index = insert_pool[inserts_used % len(insert_pool)] if insert_pool else int(
                rng.integers(num_indexed)
            )
            inserts_used += 1
            deletable.append(next_insert_id)
            next_insert_id += 1
            requests.append(
                Request(
                    request_id=request_id,
                    client_id=client_id,
                    kind=INSERT,
                    arrival_time=arrival,
                    payload=objects[pool_index],
                    deadline=deadline,
                )
            )
        else:  # DELETE
            victim = deletable.pop(int(rng.integers(len(deletable))))
            requests.append(
                Request(
                    request_id=request_id,
                    client_id=client_id,
                    kind=DELETE,
                    arrival_time=arrival,
                    payload=victim,
                    deadline=deadline,
                )
            )

    return Workload(spec=spec, requests=requests, num_indexed=num_indexed)
