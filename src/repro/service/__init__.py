"""Concurrent query-serving layer over the GTS index.

The library's :class:`~repro.core.GTS` answers one caller's batch at a time;
this package turns it into something shaped like a serving system (DESIGN.md
§4): many simulated clients submit interleaved range/kNN/insert/delete
requests with open-loop arrival times, a scheduling policy coalesces them
into micro-batches, and each micro-batch rides the paper's batch search
algorithms on the shared simulated device — the multiplexing-for-throughput
pattern of GPU serving stacks (cf. Faiss' batched GPU search and GENIE's
multi-query front-end).

* :mod:`repro.service.requests` — request/response model with the
  queue/dispatch/kernel latency decomposition;
* :mod:`repro.service.scheduler` — greedy and deadline-aware micro-batch
  policies;
* :mod:`repro.service.service` — :class:`GTSService`, the event loop;
* :mod:`repro.service.workload` — open-loop Poisson workload generator with
  hot-key skew;
* :mod:`repro.service.report` — throughput / latency-percentile reports;
* :mod:`repro.service.experiment` — the batching-vs-latency sweep used by
  ``benchmarks/bench_service_throughput.py`` and ``repro serve-sim``.
"""

from .requests import DELETE, INSERT, KNN, RANGE, Request, Response
from .scheduler import (
    DeadlineAwarePolicy,
    Decision,
    GreedyBatchPolicy,
    POLICY_REGISTRY,
    SchedulingPolicy,
    make_policy,
)
from .service import (
    GTSService,
    MaintenanceHook,
    MaintenanceSliceRecord,
    MicroBatchRecord,
)
from .workload import Workload, WorkloadSpec, generate_workload

#: Symbols that live in modules depending on :mod:`repro.evalsuite` (the
#: reporting/dataset stack).  They are loaded lazily via module
#: ``__getattr__`` so that ``import repro`` (which re-exports the core
#: serving API) does not drag the whole evaluation harness in.
_LAZY = {
    "LatencySummary": "report",
    "ServiceReport": "report",
    "summarize": "report",
    "experiment_service_batching": "experiment",
    "experiment_update_heavy_serving": "experiment",
    "sequential_replay": "experiment",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

__all__ = [
    "GTSService",
    "MicroBatchRecord",
    "MaintenanceHook",
    "MaintenanceSliceRecord",
    "Request",
    "Response",
    "RANGE",
    "KNN",
    "INSERT",
    "DELETE",
    "SchedulingPolicy",
    "GreedyBatchPolicy",
    "DeadlineAwarePolicy",
    "Decision",
    "POLICY_REGISTRY",
    "make_policy",
    "WorkloadSpec",
    "Workload",
    "generate_workload",
    "LatencySummary",
    "ServiceReport",
    "summarize",
    "experiment_service_batching",
    "experiment_update_heavy_serving",
    "sequential_replay",
]
