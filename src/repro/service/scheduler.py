"""Micro-batching policies of the serving layer (DESIGN.md §4).

The service multiplexes many concurrent clients onto one simulated GPU by
coalescing their requests into *micro-batches*.  The paper's batch search
algorithms (Algorithms 4-5) reward large batches — one level-synchronous
descent amortises kernel-launch overhead over every query — but an open-loop
arrival stream forces a trade-off: waiting longer fills bigger batches and
raises throughput, while every waited microsecond is queueing latency for the
requests already in the queue (the classic batching curve of the paper's
Fig. 9, observed from the client side).

A :class:`SchedulingPolicy` decides *when* to cut a micro-batch.  Both
shipped policies dispatch requests strictly in arrival order (a prefix of the
queue), which is what makes the service's answers byte-identical to a
sequential replay of the same request stream — reordering across an
insert/delete barrier would change what a query observes.

* :class:`GreedyBatchPolicy` — dispatch as soon as ``max_batch_size``
  requests are pending or the oldest request has waited ``max_wait``
  simulated seconds.
* :class:`DeadlineAwarePolicy` — like greedy, but additionally dispatches
  early when waiting any longer would make the most urgent pending
  request's completion deadline unmeetable, using an exponentially-weighted
  estimate of batch service time learned from previous dispatches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import islice
from typing import Optional, Sequence

from ..exceptions import QueryError
from .requests import Request

__all__ = [
    "Decision",
    "SchedulingPolicy",
    "GreedyBatchPolicy",
    "DeadlineAwarePolicy",
    "make_policy",
]


@dataclass
class Decision:
    """A policy verdict: cut a batch now, or sleep until ``wake_at``.

    Exactly one of the two fields is meaningful: when ``batch`` is non-empty
    the service dispatches it immediately; otherwise the service advances the
    simulated clock to ``wake_at`` (or to the next arrival, whichever comes
    first).
    """

    batch: list
    wake_at: float = math.inf


class SchedulingPolicy:
    """Base class of micro-batch cut policies."""

    def __init__(self, max_batch_size: int = 64):
        if max_batch_size < 1:
            raise QueryError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.max_batch_size = int(max_batch_size)

    @property
    def name(self) -> str:
        return type(self).__name__

    def decide(
        self,
        pending: Sequence[Request],
        now: float,
        next_arrival: Optional[float],
    ) -> Decision:
        """Decide whether to dispatch a prefix of ``pending`` at time ``now``.

        ``next_arrival`` is the arrival time of the next request still in the
        workload stream, or ``None`` when the stream is drained — in the
        latter case there is nothing left to wait for, so every policy
        flushes the queue.
        """
        raise NotImplementedError

    def observe(self, batch_size: int, service_time: float) -> None:
        """Feedback hook: one micro-batch of ``batch_size`` took ``service_time``."""

    def _take(self, pending: Sequence[Request]) -> list:
        """The arrival-ordered prefix that fits in one micro-batch.

        ``islice`` keeps this O(batch) on a deque (deques don't slice).
        """
        return list(islice(pending, self.max_batch_size))


class GreedyBatchPolicy(SchedulingPolicy):
    """Dispatch on a full batch or when the oldest request waited ``max_wait``.

    ``max_batch_size=1, max_wait=0.0`` degenerates to per-request dispatch —
    the no-batching baseline of ``benchmarks/bench_service_throughput.py``.
    """

    def __init__(self, max_batch_size: int = 64, max_wait: float = 200e-6):
        super().__init__(max_batch_size)
        if max_wait < 0:
            raise QueryError(f"max_wait must be non-negative, got {max_wait}")
        self.max_wait = float(max_wait)

    def decide(
        self,
        pending: Sequence[Request],
        now: float,
        next_arrival: Optional[float],
    ) -> Decision:
        if not pending:
            return Decision(batch=[], wake_at=math.inf)
        if len(pending) >= self.max_batch_size:
            return Decision(batch=self._take(pending))
        flush_at = pending[0].arrival_time + self.max_wait
        if now >= flush_at or next_arrival is None:
            return Decision(batch=self._take(pending))
        return Decision(batch=[], wake_at=flush_at)


class DeadlineAwarePolicy(SchedulingPolicy):
    """Cut batches so per-request completion deadlines stay meetable.

    The policy keeps an exponentially-weighted moving estimate of the
    per-request service cost and the fixed per-batch overhead (seeded from
    ``initial_request_estimate`` / ``initial_overhead_estimate`` before any
    feedback arrives).  A batch is cut when

    * it is full (``max_batch_size``), or
    * the most urgent pending deadline minus the estimated service time of
      the queue-so-far is now (waiting longer would blow the deadline), or
    * the oldest request waited ``max_wait`` (the fallback for requests
      without deadlines), or
    * the workload stream is drained.

    The safety factor inflates the estimate to absorb service-time variance:
    with ``safety=1.5`` the policy plans as if batches ran 50 % slower than
    the moving average.
    """

    def __init__(
        self,
        max_batch_size: int = 64,
        max_wait: float = 200e-6,
        initial_request_estimate: float = 5e-6,
        initial_overhead_estimate: float = 5e-6,
        safety: float = 1.5,
        smoothing: float = 0.3,
    ):
        super().__init__(max_batch_size)
        if max_wait < 0:
            raise QueryError(f"max_wait must be non-negative, got {max_wait}")
        if not 0 < smoothing <= 1:
            raise QueryError(f"smoothing must be in (0, 1], got {smoothing}")
        self.max_wait = float(max_wait)
        self.safety = float(safety)
        self.smoothing = float(smoothing)
        self._per_request = float(initial_request_estimate)
        self._overhead = float(initial_overhead_estimate)

    def estimated_service_time(self, batch_size: int) -> float:
        """Predicted simulated seconds to serve a batch of ``batch_size``."""
        return self.safety * (self._overhead + self._per_request * max(1, batch_size))

    def observe(self, batch_size: int, service_time: float) -> None:
        """Fold one measured (batch_size, service_time) sample into the model.

        The sample updates the per-request slope against the current overhead
        estimate; single-request batches mostly inform the overhead term.
        """
        if batch_size < 1 or service_time < 0:
            return
        alpha = self.smoothing
        per_request_sample = max(0.0, (service_time - self._overhead) / batch_size)
        self._per_request += alpha * (per_request_sample - self._per_request)
        overhead_sample = max(0.0, service_time - self._per_request * batch_size)
        self._overhead += alpha * (overhead_sample - self._overhead)

    def decide(
        self,
        pending: Sequence[Request],
        now: float,
        next_arrival: Optional[float],
    ) -> Decision:
        if not pending:
            return Decision(batch=[], wake_at=math.inf)
        if len(pending) >= self.max_batch_size or next_arrival is None:
            return Decision(batch=self._take(pending))

        flush_at = pending[0].arrival_time + self.max_wait
        deadlines = [r.deadline for r in pending if r.deadline is not None]
        if deadlines:
            est = self.estimated_service_time(len(pending))
            latest_start = min(deadlines) - est
            flush_at = min(flush_at, latest_start)
        if now >= flush_at:
            return Decision(batch=self._take(pending))
        return Decision(batch=[], wake_at=flush_at)


#: Policy-name registry used by the CLI and the benchmarks.
POLICY_REGISTRY = {
    "greedy": GreedyBatchPolicy,
    "deadline": DeadlineAwarePolicy,
}


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate a policy by registry name (``"greedy"`` or ``"deadline"``)."""
    try:
        factory = POLICY_REGISTRY[name.strip().lower()]
    except KeyError:
        raise QueryError(
            f"unknown scheduling policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory(**kwargs)
