"""Request/response model of the query-serving layer.

A request is one operation submitted by one (simulated) client: a metric
range query, a metric kNN query, or a streaming insert/delete.  Requests
carry open-loop arrival timestamps in *simulated seconds* — the same clock
the :mod:`repro.gpusim` device charges kernel time against — plus an
optional completion deadline used by the deadline-aware scheduling policy
(DESIGN.md §4).

A :class:`Response` pairs the request with its result and a three-way
latency decomposition:

``queue_time``
    Simulated seconds the request waited before its micro-batch was formed
    (arrival → dispatch).
``dispatch_time``
    The micro-batch's assembly/staging overhead.  Every request in a batch
    experiences the whole batch's execution, so this is a batch-level time.
``kernel_time``
    The micro-batch's device execution time (tree descent, verification,
    transfers) — batch-level, for the same reason.

``latency = queue_time + dispatch_time + kernel_time`` and equals
``completed_at - arrival_time``.  Separately from the latency decomposition,
``attributed_stats`` carries the request's *cost share* of the batch — the
batch's :class:`~repro.gpusim.ExecutionStats` scaled by ``1 / batch_size``
(see :meth:`ExecutionStats.scale`) — which is what throughput/efficiency
accounting should sum over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "RANGE",
    "KNN",
    "INSERT",
    "DELETE",
    "QUERY_KINDS",
    "UPDATE_KINDS",
    "Request",
    "Response",
]

#: Operation kind tags (shared with :meth:`repro.core.GTS.execute_batch`).
RANGE = "range"
KNN = "knn"
INSERT = "insert"
DELETE = "delete"

QUERY_KINDS = frozenset({RANGE, KNN})
UPDATE_KINDS = frozenset({INSERT, DELETE})


@dataclass
class Request:
    """One client operation awaiting service.

    Parameters
    ----------
    request_id:
        Unique id within one workload/stream (assigned by the generator or
        by :meth:`GTSService.submit`).
    client_id:
        The simulated client that issued the request.
    kind:
        ``"range"``, ``"knn"``, ``"insert"`` or ``"delete"``.
    arrival_time:
        Open-loop arrival timestamp in simulated seconds.
    payload:
        The query object (range/kNN), the new object (insert), or the
        object id (delete).
    radius / k:
        The query parameter for range and kNN requests respectively.
    deadline:
        Optional absolute completion deadline (simulated seconds); consumed
        by the deadline-aware policy and reported as ``deadline_missed``.
    """

    request_id: int
    client_id: int
    kind: str
    arrival_time: float
    payload: object = None
    radius: Optional[float] = None
    k: Optional[int] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS | UPDATE_KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == RANGE and self.radius is None:
            raise ValueError("range requests need a radius")
        if self.kind == KNN and self.k is None:
            raise ValueError("knn requests need k")

    def as_op(self) -> tuple:
        """Convert to the tuple form :meth:`GTS.execute_batch` consumes."""
        if self.kind == RANGE:
            return (RANGE, self.payload, float(self.radius))
        if self.kind == KNN:
            return (KNN, self.payload, int(self.k))
        if self.kind == INSERT:
            return (INSERT, self.payload)
        return (DELETE, int(self.payload))


@dataclass
class Response:
    """The served result of one request plus its latency accounting."""

    request: Request
    result: object
    batch_id: int
    batch_size: int
    dispatched_at: float
    completed_at: float
    dispatch_time: float
    kernel_time: float
    #: per-request cost share of the batch's device activity (stats / size)
    attributed_stats: object = None

    @property
    def queue_time(self) -> float:
        """Simulated seconds spent waiting for the micro-batch to form."""
        return self.dispatched_at - self.request.arrival_time

    @property
    def latency(self) -> float:
        """End-to-end simulated latency (arrival → completion)."""
        return self.completed_at - self.request.arrival_time

    @property
    def deadline_missed(self) -> bool:
        """True when the request had a deadline and completed after it."""
        deadline = self.request.deadline
        return deadline is not None and self.completed_at > deadline
