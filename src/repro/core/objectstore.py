"""Columnar object store: one contiguous matrix for vector datasets.

The paper's batch algorithms owe their throughput to *layout*: FAISS-style
engines keep every vector in one contiguous ``(n, d)`` matrix so a level's
candidate gather is a single strided copy and the distance evaluation is one
matrix-shaped pass.  The original reproduction listified every dataset at
``bulk_load`` time, which silently demoted all vector workloads to the slow
one-Python-object-per-row path.

:class:`ColumnarStore` restores the contiguous layout end-to-end:

* the primary copy is a C-contiguous NumPy matrix (``float64``/``float32``
  or integer rows, whatever the dataset arrived in);
* streaming inserts append in amortised O(1) by doubling a capacity buffer,
  so object ids remain row positions forever;
* :meth:`gather` turns a candidate id list into one fancy-index copy — the
  host-side analogue of a coalesced device gather — which is what the fused
  segmented distance kernels consume.

Non-vector datasets (strings, sets, ragged point sets) keep the plain list
representation; :func:`make_object_store` decides which one applies.  Both
representations expose the same access patterns (``len``, integer indexing,
``append``) so the rest of the engine does not branch on the storage kind —
it only probes for the optional fast paths (``gather``, ``matrix``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..exceptions import IndexError_

__all__ = [
    "ColumnarStore",
    "make_object_store",
    "gather_rows",
    "rows_matrix",
    "object_dimension",
    "store_metric_digest",
    "GATHER_CHUNK_ELEMENTS",
]

#: Chunk budget (in gathered matrix elements, ~4 MB of float64) of the host
#: gather-and-evaluate pipeline: each chunk of candidate rows is gathered and
#: immediately consumed by the distance pass while still cache-resident,
#: instead of streaming one level-sized gather through DRAM twice.  Purely a
#: host-side blocking factor — chunking never changes kernel accounting,
#: pager traffic order, or a single bit of the results.
GATHER_CHUNK_ELEMENTS = 512 * 1024


class ColumnarStore:
    """Growable contiguous ``(n, d)`` matrix of fixed-dimension vectors.

    Object id ``i`` is row ``i``.  The store keeps a capacity buffer that is
    doubled on demand, so :meth:`append` (the streaming-insert path) never
    moves existing ids and costs amortised O(1).
    """

    __slots__ = ("_data", "_size", "_digest_cache")

    def __init__(self, matrix) -> None:
        matrix = np.array(matrix, copy=True)
        if matrix.ndim != 2:
            raise IndexError_(
                f"a columnar store needs an (n, d) matrix, got shape {matrix.shape}"
            )
        self._data = np.ascontiguousarray(matrix)
        self._size = int(matrix.shape[0])
        self._digest_cache: dict = {}

    # ------------------------------------------------------------- geometry
    @property
    def matrix(self) -> np.ndarray:
        """Contiguous ``(len(self), d)`` view of the live rows."""
        return self._data[: self._size]

    @property
    def dim(self) -> int:
        """Number of coordinates per object."""
        return int(self._data.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def row_nbytes(self) -> int:
        """Bytes of one object row."""
        return int(self._data.shape[1] * self._data.itemsize)

    def __len__(self) -> int:
        return self._size

    # -------------------------------------------------------------- access
    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.matrix[index]
        i = int(index)
        if i < 0:
            i += self._size
        if not 0 <= i < self._size:
            raise IndexError_(f"object id {index} outside the store (size {self._size})")
        return self._data[i]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self._size):
            yield self._data[i]

    def gather(self, ids) -> np.ndarray:
        """Return the rows with the given ids as one contiguous matrix.

        A single fancy-index copy — the layout the vectorised
        ``Metric.pairwise_segmented`` implementations expect.
        """
        return self.matrix[np.asarray(ids, dtype=np.int64)]

    def metric_digest(self, metric):
        """Cached ``Metric.store_digest`` over the live rows.

        The cache is keyed by metric name and invalidated by appends (the
        store size is part of the key), so the per-row precomputation —
        e.g. the angular metric's row norms — is paid once per store
        generation instead of once per query batch.
        """
        cached = self._digest_cache.get(metric.name)
        if cached is not None and cached[0] == self._size:
            return cached[1]
        digest = metric.store_digest(self.matrix)
        self._digest_cache[metric.name] = (self._size, digest)
        return digest

    # ------------------------------------------------------------ mutation
    def append(self, obj) -> None:
        """Append one object row (streaming insert); amortised O(1).

        The store never silently narrows the *incoming* object: a row whose
        values are not exactly representable in the current dtype (a float
        insert into an int-backed store, a float64 insert into a float32
        store) promotes the whole matrix via ``np.promote_types`` first, so
        the new row is stored bit-exactly.  Existing rows convert under
        standard NumPy casting — value-preserving for every realistic mix
        (the lone exception being int64 magnitudes beyond 2**53 promoted to
        float64, which no common dtype can hold exactly).
        """
        row = np.asarray(obj)
        if row.shape != (self._data.shape[1],):
            raise IndexError_(
                f"cannot append an object of shape {np.shape(obj)} to a columnar "
                f"store of {self._data.shape[1]}-dimensional rows"
            )
        try:
            cast = row.astype(self._data.dtype)
            exact = np.array_equal(cast, row, equal_nan=row.dtype.kind == "f")
        except (TypeError, ValueError) as exc:
            raise IndexError_(
                f"cannot append an object of dtype {row.dtype} to a columnar "
                f"store of dtype {self._data.dtype}"
            ) from exc
        if not exact:
            promoted = np.promote_types(self._data.dtype, row.dtype)
            self._data = self._data.astype(promoted)
            cast = row.astype(promoted)
        if self._size == self._data.shape[0]:
            capacity = max(4, 2 * self._data.shape[0])
            grown = np.empty((capacity, self._data.shape[1]), dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = cast
        self._size += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarStore({self._size}x{self._data.shape[1]}, {self._data.dtype})"


def make_object_store(objects: Sequence):
    """Choose the storage representation for a dataset.

    * an ``(n, d)`` numeric NumPy array, or a list of identically-shaped 1-d
      numeric rows, becomes a :class:`ColumnarStore` (the fast path every
      vector metric rides);
    * anything else (strings, sets, ragged data) is copied into a plain list,
      the fully general representation.
    """
    if isinstance(objects, ColumnarStore):
        return ColumnarStore(objects.matrix)
    if isinstance(objects, np.ndarray):
        if objects.ndim == 2 and objects.dtype.kind in "fiu":
            return ColumnarStore(objects)
        return [objects[i] for i in range(len(objects))]
    items = [objects[i] for i in range(len(objects))]
    if items and all(
        isinstance(o, np.ndarray) and o.ndim == 1 and o.dtype.kind in "fiu" for o in items
    ):
        signatures = {(o.shape, o.dtype.str) for o in items}
        if len(signatures) == 1:
            return ColumnarStore(np.stack(items))
    return items


def rows_matrix(objects):
    """Return the contiguous matrix behind a store when one exists, else None."""
    matrix = getattr(objects, "matrix", None)
    return matrix if isinstance(matrix, np.ndarray) else None


def object_dimension(objects):
    """Coordinate count of a columnar/array store, None for list stores.

    Reads only store metadata (never an object), so a tiered store answers
    without faulting any block.
    """
    matrix = rows_matrix(getattr(objects, "raw", objects))
    if matrix is None and isinstance(objects, np.ndarray) and objects.ndim == 2:
        matrix = objects
    return int(matrix.shape[1]) if matrix is not None else None


def store_metric_digest(objects, metric):
    """The store's cached per-row metric digest, or None when unavailable.

    Unwraps tiered facades to the host store; only columnar stores carry a
    digest cache (list stores answer None, as do metrics without a digest).
    """
    store = getattr(objects, "raw", objects)
    digest = getattr(store, "metric_digest", None)
    return digest(metric) if digest is not None else None


def gather_rows(objects, ids: np.ndarray):
    """Gather rows by id from any store representation.

    Stores exposing a ``gather`` method answer through it (one fancy-index
    copy for columnar stores; a tiered facade additionally charges its block
    faults), raw arrays through a fancy index, lists through a per-id
    comprehension.
    """
    gather = getattr(objects, "gather", None)
    if gather is not None:
        return gather(ids)
    if isinstance(objects, np.ndarray):
        return objects[np.asarray(ids, dtype=np.int64)]
    return [objects[int(i)] for i in np.asarray(ids, dtype=np.int64)]
