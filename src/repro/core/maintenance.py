"""Incremental maintenance: generation-swap rebuilds in bounded slices.

The paper's stream-update design (Section 4.4) rebuilds the whole index the
moment the cache table outgrows its byte budget.  Inside a serving process
that rebuild is a stop-the-world stall: the overflowing ``insert`` holds the
device for a full construction while every queued query waits behind it.
Production GPU serving systems (Faiss, GENIE) keep query throughput up while
index maintenance happens off the hot path; this module gives GTS the same
property without giving up the paper's answers (DESIGN.md §9).

The mechanism is a **generation swap** advanced in **maintenance slices**:

1. a cache overflow only marks the index *maintenance-due* — the overflowing
   insert returns immediately;
2. the first maintenance slice snapshots the fold set (live indexed ids ∪
   cached ids, exactly the set :meth:`GTS.rebuild` folds) and starts
   constructing the replacement tree over it; every further slice runs a
   bounded number of construction levels (Algorithms 1-3 are
   level-synchronous, so a level is the natural work quantum);
3. between slices the index keeps answering queries from the **old** tree
   merged with the cache table — the visible object set is identical to what
   a stop-the-world rebuild would expose, so answers are byte-identical to
   the blocking path at every point of the operation stream;
4. when the last level completes, the new generation is swapped in
   atomically: snapshot members leave the cache, deletes that arrived during
   the rebuild carry over as tombstones of the new tree, the old tree's
   device storage is freed, and ``automatic_rebuild_count`` ticks.

Updates arriving mid-rebuild need no coordination: inserts land in the cache
(and simply stay there across the swap — they are not in the snapshot),
deletes of indexed objects tombstone the old tree (and the tombstone is
re-applied to the new tree at swap time), deletes of snapshot-cached objects
leave the cache immediately and are detected at swap time by their absence.

Tiered indexes build the replacement tree by paging the snapshot through the
existing :class:`~repro.tier.BlockPager`; the pin set is widened to the union
of both generations' pivot blocks while a rebuild is in flight
(:meth:`BlockPager.add_pins`) and narrowed back to the new tree's pivots at
swap time.

The controller is deliberately passive: *someone* must call
:meth:`IncrementalMaintenance.run_slice` for progress to happen.  The
serving layer (:class:`~repro.service.GTSService`) schedules slices between
micro-batches — deferring them while the request queue is deep — and
:class:`~repro.shard.ShardedGTS` staggers the shards so at most one is in
maintenance at a time.  ``hard_overflow_factor`` is the safety valve for
callers that never schedule slices: once the cache balloons past that
multiple of its budget, the next insert finishes the rebuild synchronously.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .construction import BuildResult, build_level, objects_nbytes
from .nodes import TreeStructure, level_size, level_start
from .pivots import PivotSelector, get_pivot_selector

__all__ = [
    "MaintenanceConfig",
    "SliceReport",
    "GenerationBuild",
    "IncrementalMaintenance",
]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Tuning knobs of the incremental maintenance subsystem.

    Parameters
    ----------
    levels_per_slice:
        Construction levels one :meth:`IncrementalMaintenance.run_slice`
        call advances.  ``1`` (default) bounds each slice by a single
        level-wide mapping + partitioning pass — the smallest quantum the
        level-synchronous algorithm offers.
    hard_overflow_factor:
        Safety valve: when the cache table's payload exceeds this multiple
        of its byte budget while a rebuild is still pending, the overflowing
        insert runs the remaining slices synchronously.  ``None`` disables
        the valve (the cache may then grow without bound if no one schedules
        slices).
    """

    levels_per_slice: int = 1
    hard_overflow_factor: Optional[float] = 8.0

    def __post_init__(self) -> None:
        from ..exceptions import UpdateError

        if self.levels_per_slice < 1:
            raise UpdateError(
                f"levels_per_slice must be at least 1, got {self.levels_per_slice}"
            )
        if self.hard_overflow_factor is not None and self.hard_overflow_factor < 1.0:
            raise UpdateError(
                f"hard_overflow_factor must be >= 1 (or None), got {self.hard_overflow_factor}"
            )


@dataclass
class SliceReport:
    """Outcome of one maintenance slice (what the serving layer records)."""

    #: simulated seconds this slice held the device
    sim_time: float
    #: construction levels advanced by this slice
    levels: int
    #: levels finished so far, including this slice
    completed_levels: int
    #: levels the in-flight generation needs in total
    total_levels: int
    #: True when this slice completed the build and swapped the generation in
    swapped: bool


class GenerationBuild:
    """An in-progress replacement tree, constructed level by level.

    Captures the fold set (live indexed ∪ cached ids — the identical set and
    order :meth:`GTS.rebuild` uses) plus the bookkeeping needed to reconcile
    updates that arrive while the build is in flight.  The build consumes
    the index's construction RNG and produces the same
    :class:`~repro.core.construction.BuildResult` a monolithic
    :func:`build_tree` over the snapshot would, with per-slice accumulated
    timing.
    """

    def __init__(self, index) -> None:
        self._index = index
        #: ids the new tree indexes, in rebuild fold order (live, then
        #: cached) — produced by the same helper the blocking path uses
        self.snapshot_ids, cached = index._fold_ids()
        #: cached ids folded into the tree (leave the cache at swap time)
        self.snapshot_cached = set(cached)
        #: tombstones existing at snapshot time (already excluded from the fold)
        self.baseline_tombstones = set(index._tombstones)
        n = len(self.snapshot_ids)
        self.tree = TreeStructure.empty(n, index.node_capacity)
        self.tree.obj_ids[:] = self.snapshot_ids
        self.tree.pos[0] = 0
        self.tree.size[0] = n
        strategy = index.pivot_strategy
        self._selector: PivotSelector = (
            strategy if isinstance(strategy, PivotSelector) else get_pivot_selector(strategy)
        )
        self.allocations: list = []
        self._staged = False
        self.next_layer = 0
        self.sim_time = 0.0
        self.wall_time = 0.0
        self.distance_computations = 0

    @property
    def total_layers(self) -> int:
        """Construction levels the build needs (the tree height)."""
        return int(self.tree.height)

    @property
    def finished(self) -> bool:
        """True once every level is built (the generation is swappable)."""
        return self._staged and self.next_layer >= self.total_layers

    def run_slice(self, max_levels: int = 1) -> int:
        """Advance the build by up to ``max_levels`` levels; returns levels run.

        The first slice additionally stages the snapshot's device storage
        (resident mode) — tiered indexes fault object blocks through their
        pager instead, exactly like :meth:`GTS._build`.
        """
        index = self._index
        device = index.device
        sim_start = device.stats.sim_time
        wall_start = time.perf_counter()
        dist_start = index.metric.pair_count
        if not self._staged:
            if index.tier_config is None:
                nbytes = objects_nbytes(index._objects, self.snapshot_ids)
                device.transfer_to_device(nbytes)
                self.allocations.append(
                    device.allocate(nbytes, "gts-objects", pool="objects")
                )
                self.allocations.append(
                    device.allocate(self.tree.storage_bytes(), "gts-index", pool="tree")
                )
            self._staged = True
        levels = 0
        while levels < max(1, int(max_levels)) and self.next_layer < self.total_layers:
            build_level(
                self.tree,
                self.next_layer,
                index._objects,
                index.metric,
                device,
                self._selector,
                index._rng,
            )
            if index.tiered:
                # protect both generations' pivot blocks while the rebuild is
                # in flight: descents still walk the old tree, construction
                # re-touches the new pivots every level.  Only this level's
                # freshly chosen pivots are new; earlier levels are pinned.
                start = level_start(self.next_layer, self.tree.node_capacity)
                level_pivots = self.tree.pivot[
                    start : start + level_size(self.next_layer, self.tree.node_capacity)
                ]
                index.pager.add_pins(
                    index._objects.store.blocks_for(level_pivots[level_pivots >= 0])
                )
            self.next_layer += 1
            levels += 1
        self.sim_time += device.stats.sim_time - sim_start
        self.wall_time += time.perf_counter() - wall_start
        self.distance_computations += index.metric.pair_count - dist_start
        return levels

    def result(self) -> BuildResult:
        """The finished build as a :class:`BuildResult` (per-slice sums)."""
        return BuildResult(
            tree=self.tree,
            allocations=self.allocations,
            sim_time=self.sim_time,
            wall_time=self.wall_time,
            distance_computations=self.distance_computations,
        )

    def abort(self) -> None:
        """Discard the partial build, freeing its staged device storage."""
        for allocation in self.allocations:
            self._index.device.free(allocation)
        self.allocations = []


class IncrementalMaintenance:
    """Per-index controller of non-blocking generation-swap rebuilds.

    Created by :meth:`GTS.enable_incremental_maintenance`.  While enabled,
    cache overflows mark the index maintenance-due instead of rebuilding
    inline; callers drive progress through :meth:`run_slice` (the serving
    layer does this between micro-batches).
    """

    def __init__(self, index, config: Optional[MaintenanceConfig] = None) -> None:
        self.index = index
        self.config = config or MaintenanceConfig()
        self.generation: Optional[GenerationBuild] = None
        self._due = False
        #: lifetime counters (reports / tests)
        self.slices_run = 0
        self.swaps_completed = 0
        self.total_slice_time = 0.0
        self.max_slice_time = 0.0

    # ------------------------------------------------------------------ state
    @property
    def in_flight(self) -> bool:
        """True while a replacement tree is under construction."""
        return self.generation is not None

    @property
    def due(self) -> bool:
        """True when a slice would make progress (overflow seen or in flight)."""
        return self._due or self.generation is not None

    # ------------------------------------------------------------------ hooks
    def notify_overflow(self) -> None:
        """Called by :meth:`GTS.insert` when the cache exceeds its budget."""
        self._due = True
        factor = self.config.hard_overflow_factor
        cache = self.index._cache
        if factor is not None and cache.used_bytes > factor * cache.capacity_bytes:
            self.run_to_completion()

    def run_slice(self) -> Optional[SliceReport]:
        """Advance the rebuild by one bounded slice; swap when it completes.

        Lazily snapshots and starts the generation on the first slice after
        an overflow.  Returns the slice's :class:`SliceReport`, or None when
        there is nothing to do.  The slice's simulated seconds are attributed
        under ``device.stats.maintenance_seconds`` (a subset of ``sim_time``,
        like the transfer flows).
        """
        if not self.due:
            return None
        index = self.index
        device = index.device
        if self.generation is None:
            if index.num_objects == 0:
                # everything was deleted since the overflow: nothing to fold
                self._due = False
                return None
            self.generation = GenerationBuild(index)
        generation = self.generation
        sim_start = device.stats.sim_time
        levels = generation.run_slice(self.config.levels_per_slice)
        completed = generation.next_layer
        total = generation.total_layers
        swapped = False
        if generation.finished:
            self._swap(generation)
            swapped = True
        elapsed = device.stats.sim_time - sim_start
        device.stats.maintenance_seconds += elapsed
        self.slices_run += 1
        self.total_slice_time += elapsed
        self.max_slice_time = max(self.max_slice_time, elapsed)
        return SliceReport(
            sim_time=elapsed,
            levels=levels,
            completed_levels=completed,
            total_levels=total,
            swapped=swapped,
        )

    def run_to_completion(self) -> int:
        """Run slices until no maintenance is due; returns slices run."""
        count = 0
        while self.due:
            if self.run_slice() is None:
                break
            count += 1
        return count

    def abort(self) -> None:
        """Discard any in-flight generation (forced rebuilds fold everything)."""
        if self.generation is not None:
            self.generation.abort()
            self.generation = None
        self._due = False

    # ------------------------------------------------------------------- swap
    def _swap(self, generation: GenerationBuild) -> None:
        """Atomically install the finished generation.

        Deletes that arrived while the build was in flight carry over: fresh
        tombstones on indexed objects re-apply to the new tree (every member
        of the snapshot's live part), and snapshot-cached objects that left
        the cache mid-build (they were deleted) become tombstones too.
        Snapshot members still cached are now in the tree and leave the
        cache; post-snapshot inserts stay cached, visible as before.
        """
        index = self.index
        carried = set(index._tombstones) - generation.baseline_tombstones
        carried |= {
            oid for oid in generation.snapshot_cached if oid not in index._cache
        }
        # the pointer flip itself: one device write installs the new root
        index.device.launch_kernel(work_items=1, op_cost=1.0, label="generation-swap")
        for oid in generation.snapshot_cached:
            index._cache.remove(oid)
        index._release_index()
        index._indexed_ids = generation.snapshot_ids
        index._tombstones = carried
        index._finalize_build(generation.result())
        index._automatic_rebuild_count += 1
        self.generation = None
        self.swaps_completed += 1
        # post-snapshot inserts may already exceed the budget again
        self._due = index._cache.is_full

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"building {self.generation.next_layer}/{self.generation.total_layers}"
            if self.generation is not None
            else ("due" if self._due else "idle")
        )
        return f"IncrementalMaintenance({state}, swaps={self.swaps_completed})"
