"""Level-synchronous parallel construction of the GTS index (Algorithms 1-3).

The construction proceeds top-down, one level per iteration.  Every iteration
runs two phases, each of which the paper maps onto device-wide kernels:

*Mapping* (Algorithm 2)
    For every node of the current level, pick a pivot (FFT by default) and
    compute the distance from that pivot to each object the node holds.  All
    nodes of the level are handled by one conceptual kernel because their
    object ranges are contiguous in the table list.

*Partitioning* (Algorithm 3)
    Normalise the freshly computed distances, encode them as
    ``node_index + dis / (max + 1)``, sort the *whole* table list once with a
    device sort, decode, and split every node's (now distance-sorted) slice
    evenly into ``Nc`` children.

The result is a balanced tree of height ``h = ⌈log_Nc(n + 1)⌉ - 1``; nodes at
the last level may be over-full, exactly as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConstructionError
from ..gpusim.device import Allocation, Device
from ..gpusim.kernels import sort_kernel
from ..metrics.base import Metric
from .encoding import encode_distances
from .nodes import NO_PIVOT, TreeStructure, level_size, level_start
from .objectstore import (
    GATHER_CHUNK_ELEMENTS,
    ColumnarStore,
    gather_rows,
    object_dimension,
    store_metric_digest,
)
from .pivots import PivotSelector, get_pivot_selector

__all__ = [
    "build_tree",
    "build_level",
    "BuildResult",
    "take_objects",
    "objects_nbytes",
    "concatenated_ranges",
]


def take_objects(objects: Sequence, ids) -> Sequence:
    """Return the objects with the given ids, preserving array-ness.

    ``objects`` may be a :class:`~repro.core.objectstore.ColumnarStore` or a
    tiered :class:`~repro.tier.store.PagedObjects` facade (both expose a
    ``gather`` fast path — one columnar block gather, with the paged store
    additionally charging its block faults), a NumPy array (vector datasets)
    or a plain list (string datasets); the result is suitable for
    ``Metric.pairwise`` / ``Metric.pairwise_segmented``.  The store dispatch
    itself lives in :func:`~repro.core.objectstore.gather_rows`.
    """
    return gather_rows(objects, ids)


def objects_nbytes(objects: Sequence, ids=None) -> int:
    """Estimate the device-resident size of a set of objects in bytes."""
    if isinstance(objects, ColumnarStore):
        count = len(objects) if ids is None else len(ids)
        return int(objects.row_nbytes * count)
    if isinstance(objects, np.ndarray):
        per_row = objects[0].nbytes if len(objects) else 0
        count = len(objects) if ids is None else len(ids)
        return int(per_row * count)
    if ids is None:
        items = objects
    else:
        items = [objects[int(i)] for i in ids]
    total = 0
    for item in items:
        if isinstance(item, str):
            total += len(item)
        elif isinstance(item, np.ndarray):
            total += item.nbytes
        else:
            total += 8
    return int(total)


def concatenated_ranges(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Flat indices of ``concatenate([arange(s, s + n) for s, n in zip(...)])``.

    The cumulative-sum trick behind every segmented gather in this engine:
    one vectorised pass instead of a Python loop over ranges.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(sizes) - sizes
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, sizes)
        + np.repeat(np.asarray(starts, dtype=np.int64), sizes)
    )


@dataclass
class BuildResult:
    """Outcome of one index construction."""

    tree: TreeStructure
    allocations: list = field(default_factory=list)
    sim_time: float = 0.0
    wall_time: float = 0.0
    distance_computations: int = 0

    def storage_bytes(self) -> int:
        """Index storage (node list + table list), excluding the raw objects."""
        return self.tree.storage_bytes()


def _select_pivots(
    tree: TreeStructure,
    node_ids: np.ndarray,
    is_root_level: bool,
    selector: PivotSelector,
    rng: np.random.Generator,
) -> None:
    """Choose and record a pivot for every node of the current level."""
    for node_id in node_ids:
        p = int(tree.pos[node_id])
        s = int(tree.size[node_id])
        local_dis = tree.obj_dis[p : p + s]
        offset = selector(local_dis, is_root_level, rng)
        tree.pivot[node_id] = tree.obj_ids[p + offset]


def _map_level(
    tree: TreeStructure,
    node_ids: np.ndarray,
    objects: Sequence,
    metric: Metric,
    device: Device,
) -> int:
    """Mapping phase: distances from each node's pivot to its objects.

    Evaluated as fused segmented passes: every node of the level is a
    segment of the (contiguous) table list, its pivot the segment's query.
    Nodes are processed in cache-sized chunks (the same host-side blocking
    as the query engine's ``segmented_distances``); the device time is
    charged as one level-wide kernel, exactly as before.  Returns the number
    of distance computations performed (for statistics).
    """
    host_start = time.perf_counter()
    sizes = tree.size[node_ids]
    active = node_ids[sizes > 0]
    sizes = tree.size[active]
    total = int(sizes.sum())
    if total:
        digest = store_metric_digest(objects, metric)
        dim = object_dimension(objects)
        budget_rows = (
            total + len(active)
            if dim is None
            else max(1, GATHER_CHUNK_ELEMENTS // max(1, dim))
        )
        start = 0
        while start < len(active):
            end = start + 1
            chunk_rows = int(sizes[start]) + 1
            while end < len(active) and chunk_rows + int(sizes[end]) + 1 <= budget_rows:
                chunk_rows += int(sizes[end]) + 1
                end += 1
            chunk_nodes = active[start:end]
            chunk_sizes = sizes[start:end]
            flat = concatenated_ranges(tree.pos[chunk_nodes], chunk_sizes)
            obj_ids = tree.obj_ids[flat]
            if getattr(objects, "coalesced_gather", False):
                # Tiered store: interleave each node's pivot id ahead of its
                # object ids so the pager sees the same per-node block access
                # order as the historical per-node loop (pivot fault, then
                # the node's slice).
                counts = chunk_sizes + 1
                seq = np.empty(int(counts.sum()), dtype=np.int64)
                pivot_pos = np.cumsum(counts) - counts
                obj_mask = np.ones(len(seq), dtype=bool)
                obj_mask[pivot_pos] = False
                seq[pivot_pos] = tree.pivot[chunk_nodes]
                seq[obj_mask] = obj_ids
                rows = take_objects(objects, seq)
                if isinstance(rows, np.ndarray):
                    pivots, candidates = rows[pivot_pos], rows[obj_mask]
                else:
                    obj_pos = np.flatnonzero(obj_mask)
                    pivots = [rows[int(i)] for i in pivot_pos]
                    candidates = [rows[int(i)] for i in obj_pos]
            else:
                # Resident store: no access-order bookkeeping, two straight
                # gathers
                pivots = take_objects(objects, tree.pivot[chunk_nodes])
                candidates = take_objects(objects, obj_ids)
            boundaries = np.concatenate(([0], np.cumsum(chunk_sizes)))
            tree.obj_dis[flat] = metric.pairwise_segmented(
                pivots,
                candidates,
                boundaries,
                object_digest=None if digest is None else digest[obj_ids],
            )
            start = end
    host = time.perf_counter() - host_start
    device.launch_kernel(
        work_items=total, op_cost=metric.unit_cost, label="gts-mapping", host_time=host
    )
    return total


def _partition_level(
    tree: TreeStructure,
    node_ids: np.ndarray,
    device: Device,
) -> None:
    """Partitioning phase: encode, global sort, decode, create children."""
    nc = tree.node_capacity
    n = tree.num_objects

    # Normalisation constant (Algorithm 3, lines 1-2): device-wide max reduce.
    max_dis = float(tree.obj_dis.max()) if n else 0.0
    device.launch_kernel(work_items=n, op_cost=1.0, label="gts-max-reduce")

    # Encoding (lines 3-6): one key per object; the per-node segment labels
    # are scattered in one pass over the (contiguous) node slices.
    segment_ids = np.zeros(n, dtype=np.int64)
    sizes = tree.size[node_ids]
    flat = concatenated_ranges(tree.pos[node_ids], sizes)
    segment_ids[flat] = np.repeat(np.arange(len(node_ids), dtype=np.int64), sizes)
    encoded = encode_distances(tree.obj_dis, segment_ids, max_dis)
    device.launch_kernel(work_items=n, op_cost=2.0, label="gts-encode")

    # Global sort (line 7): note the sort is stable so equal keys (identical
    # objects) keep their relative order, which is what makes the Fig. 10
    # duplicate-heavy workloads behave.
    order = sort_kernel(device, encoded, op_cost=1.0, label="gts-global-sort")
    tree.obj_ids[:] = tree.obj_ids[order]
    tree.obj_dis[:] = tree.obj_dis[order]

    # Decoding (lines 10-11) is implicit because obj_dis kept the raw
    # distances; charge the kernel anyway to stay faithful to the cost model.
    device.launch_kernel(work_items=n, op_cost=1.0, label="gts-decode")

    # Child creation (lines 12-18): even split, last child takes the slack.
    created = 0
    for node_id in node_ids:
        p = int(tree.pos[node_id])
        s = int(tree.size[node_id])
        avg = s // nc
        children = tree.children_of(int(node_id))
        for j, child in enumerate(children):
            child = int(child)
            if j < nc - 1:
                c_pos, c_size = p + j * avg, avg
            else:
                c_pos, c_size = p + (nc - 1) * avg, s - avg * (nc - 1)
            tree.pos[child] = c_pos
            tree.size[child] = c_size
            if c_size > 0:
                tree.min_dis[child] = tree.obj_dis[c_pos]
                tree.max_dis[child] = tree.obj_dis[c_pos + c_size - 1]
            created += 1
    device.launch_kernel(work_items=created, op_cost=4.0, label="gts-make-children")


def build_level(
    tree: TreeStructure,
    layer: int,
    objects: Sequence,
    metric: Metric,
    device: Device,
    selector: PivotSelector,
    rng: np.random.Generator,
) -> int:
    """Run one level of the level-synchronous construction (Algorithms 2-3).

    The unit of work both :func:`build_tree` and the incremental maintenance
    subsystem (:mod:`repro.core.maintenance`) advance by: pivot selection,
    the mapping kernel and the partitioning kernels of ``layer``'s active
    nodes.  Returns the number of distance computations the level performed.
    """
    start = level_start(layer, tree.node_capacity)
    ids = np.arange(start, start + level_size(layer, tree.node_capacity), dtype=np.int64)
    active = ids[tree.size[ids] > 0]
    _select_pivots(tree, active, layer == 0, selector, rng)
    distances = _map_level(tree, active, objects, metric, device)
    _partition_level(tree, active, device)
    return distances


def build_tree(
    objects: Sequence,
    object_ids: np.ndarray,
    metric: Metric,
    node_capacity: int,
    device: Device,
    rng: Optional[np.random.Generator] = None,
    pivot_strategy: str | PivotSelector = "fft",
    allocate_storage: bool = True,
) -> BuildResult:
    """Build a GTS tree over ``object_ids`` drawn from ``objects``.

    Parameters
    ----------
    objects:
        The backing object store (list of strings or an ``(n, d)`` array).
        Positions in this store are the persistent object ids.
    object_ids:
        Which objects to index (supports rebuilds after deletions).
    metric:
        The distance metric of the metric space.
    node_capacity:
        ``Nc``; must be at least 2.
    device:
        Simulated GPU the construction kernels run on.
    rng:
        Random generator for the root pivot choice; defaults to a fixed seed
        so builds are reproducible.
    pivot_strategy:
        ``"fft"`` (paper default), ``"random"``, ``"center"`` or a custom
        :class:`PivotSelector`.
    allocate_storage:
        When True (default) the index storage and the indexed objects are
        charged against the device's memory; the allocations are returned in
        the result so the caller can free them when the index is dropped.
    """
    object_ids = np.asarray(object_ids, dtype=np.int64)
    n = len(object_ids)
    if n == 0:
        raise ConstructionError("cannot build an index over an empty object set")
    if node_capacity < 2:
        raise ConstructionError(f"node capacity must be at least 2, got {node_capacity}")
    if rng is None:
        rng = np.random.default_rng(17)
    if isinstance(pivot_strategy, PivotSelector):
        selector = pivot_strategy
    else:
        selector = get_pivot_selector(pivot_strategy)

    wall_start = time.perf_counter()
    sim_start = device.stats.sim_time
    dist_start = metric.pair_count

    tree = TreeStructure.empty(n, node_capacity)
    tree.obj_ids[:] = object_ids
    tree.pos[0] = 0
    tree.size[0] = n

    allocations: list[Allocation] = []
    if allocate_storage:
        device.transfer_to_device(objects_nbytes(objects, object_ids))
        allocations.append(
            device.allocate(objects_nbytes(objects, object_ids), "gts-objects", pool="objects")
        )
        allocations.append(device.allocate(tree.storage_bytes(), "gts-index", pool="tree"))

    for layer in range(tree.height):
        build_level(tree, layer, objects, metric, device, selector, rng)

    result = BuildResult(
        tree=tree,
        allocations=allocations,
        sim_time=device.stats.sim_time - sim_start,
        wall_time=time.perf_counter() - wall_start,
        distance_computations=metric.pair_count - dist_start,
    )
    return result
