"""Distance encoding used by the global-sort partitioning step (Algorithm 3).

To partition *every* node of a level with one device-wide sort, the paper
encodes each object's distance to its node's pivot as

    ``encoded = node_local_index + dis / (max_dis + 1)``

so that the integer part carries "which node the object belongs to" and the
fractional part carries "how far from the pivot".  Sorting the encoded keys
therefore groups objects by node (nodes keep their relative order) and sorts
by distance within each node — exactly the arrangement the children need.

This module provides the encode / decode pair plus the segment arithmetic,
kept separate from the construction driver so it can be property-tested in
isolation (the round-trip and order-preservation invariants are subtle enough
to deserve their own tests).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConstructionError

__all__ = ["encode_distances", "decode_distances", "segment_ids_from_offsets"]


def segment_ids_from_offsets(offsets: np.ndarray, total: int) -> np.ndarray:
    """Expand per-segment start offsets into a per-element segment-id array.

    ``offsets`` holds the start position of each segment (sorted ascending);
    elements before the first offset (there should be none in normal use)
    would be assigned to segment 0.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if total < 0:
        raise ConstructionError("total must be non-negative")
    if len(offsets) == 0:
        return np.zeros(total, dtype=np.int64)
    ids = np.zeros(total, dtype=np.int64)
    # mark segment starts and prefix-sum them into ids
    marks = np.zeros(total + 1, dtype=np.int64)
    for off in offsets[1:]:
        if off < 0 or off > total:
            raise ConstructionError(f"segment offset {off} out of range [0, {total}]")
        marks[off] += 1
    ids = np.cumsum(marks[:-1])
    return ids.astype(np.int64)


def encode_distances(distances: np.ndarray, segment_ids: np.ndarray, max_dis: float) -> np.ndarray:
    """Encode distances into sortable keys ``segment_id + dis / (max_dis + 1)``.

    ``max_dis`` must be at least the largest distance in ``distances``;
    passing the global maximum (as Algorithm 3 does) guarantees the encoded
    fractional part stays strictly below 1 so segments never interleave.
    """
    distances = np.asarray(distances, dtype=np.float64)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if distances.shape != segment_ids.shape:
        raise ConstructionError("distances and segment_ids must have the same shape")
    if len(distances) and np.any(distances < 0):
        raise ConstructionError("distances must be non-negative")
    if len(distances) and max_dis < float(distances.max()):
        raise ConstructionError("max_dis must be >= the largest distance")
    scale = float(max_dis) + 1.0
    return segment_ids.astype(np.float64) + distances / scale


def decode_distances(encoded: np.ndarray, segment_ids: np.ndarray, max_dis: float) -> np.ndarray:
    """Invert :func:`encode_distances` given the segment ids of each element."""
    encoded = np.asarray(encoded, dtype=np.float64)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if encoded.shape != segment_ids.shape:
        raise ConstructionError("encoded and segment_ids must have the same shape")
    scale = float(max_dis) + 1.0
    return (encoded - segment_ids.astype(np.float64)) * scale
