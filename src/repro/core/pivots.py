"""Pivot selection strategies for GTS construction.

The paper (Section 4.3, Algorithm 2) selects one pivot per node with the FFT
(farthest-first traversal) heuristic [27]: the new pivot is the object
farthest from the already-chosen pivots, and the very first pivot is random
because — citing [62] — no strategy for the initial pivot dominates.

During GTS construction the distances from every object to its *parent's*
pivot are already sitting in the table list, so the farthest-first choice for
a node costs no extra distance computations: it is simply the object of the
node with the largest stored distance.  The root has no parent, hence the
random first pivot.

Strategies implemented:

``fft``
    The paper's default, as described above.
``random``
    A uniformly random object of the node (baseline for the ablation bench).
``center``
    The object with the *smallest* stored distance (an intentionally poor
    choice, useful to show that pivot quality matters).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ConstructionError

__all__ = ["PivotSelector", "get_pivot_selector", "available_pivot_strategies"]


class PivotSelector:
    """Callable that picks one pivot position inside a node's table slice.

    Parameters passed on every call:

    ``local_dis``
        The stored distances of the node's objects to the parent pivot
        (all zeros at the root where no parent exists).
    ``is_root``
        Whether the node is the root (no meaningful ``local_dis``).
    ``rng``
        The construction's random generator (for reproducibility).

    Returns the *local offset* of the chosen pivot within the node's slice.
    """

    name = "abstract"

    def __call__(self, local_dis: np.ndarray, is_root: bool, rng: np.random.Generator) -> int:
        raise NotImplementedError


class FFTPivotSelector(PivotSelector):
    """Farthest-first traversal pivot choice (the paper's default)."""

    name = "fft"

    def __call__(self, local_dis: np.ndarray, is_root: bool, rng: np.random.Generator) -> int:
        if len(local_dis) == 0:
            raise ConstructionError("cannot select a pivot in an empty node")
        if is_root:
            return int(rng.integers(0, len(local_dis)))
        return int(np.argmax(local_dis))


class RandomPivotSelector(PivotSelector):
    """Uniformly random pivot choice."""

    name = "random"

    def __call__(self, local_dis: np.ndarray, is_root: bool, rng: np.random.Generator) -> int:
        if len(local_dis) == 0:
            raise ConstructionError("cannot select a pivot in an empty node")
        return int(rng.integers(0, len(local_dis)))


class CenterPivotSelector(PivotSelector):
    """Anti-FFT choice: the object closest to the parent pivot."""

    name = "center"

    def __call__(self, local_dis: np.ndarray, is_root: bool, rng: np.random.Generator) -> int:
        if len(local_dis) == 0:
            raise ConstructionError("cannot select a pivot in an empty node")
        if is_root:
            return int(rng.integers(0, len(local_dis)))
        return int(np.argmin(local_dis))


_STRATEGIES: Dict[str, Callable[[], PivotSelector]] = {
    "fft": FFTPivotSelector,
    "random": RandomPivotSelector,
    "center": CenterPivotSelector,
}


def available_pivot_strategies() -> list[str]:
    """Return the names of the registered pivot-selection strategies."""
    return sorted(_STRATEGIES)


def get_pivot_selector(name: str) -> PivotSelector:
    """Return a fresh pivot selector registered under ``name``."""
    key = name.strip().lower()
    try:
        return _STRATEGIES[key]()
    except KeyError:
        raise ConstructionError(
            f"unknown pivot strategy {name!r}; available: {', '.join(available_pivot_strategies())}"
        ) from None
