"""Multi-column similarity search over several GTS indexes (Section 5.2, Remark).

The paper notes that GTS "holds the potential to handle multi-column
scenarios": build one GTS index per attribute (column) and answer
multi-attribute queries by progressively combining the per-column results
with Fagin-style aggregation.  This module implements that extension.

A :class:`MultiColumnGTS` indexes records whose columns live in different
metric spaces (e.g. a 2-d location under L2 plus a text field under edit
distance).  The aggregate dissimilarity of a record to a query is the
weighted sum of the per-column distances.  Two query types are provided:

``range_query(query, radii)``
    conjunctive range query: records within ``radii[c]`` of the query in
    *every* column (the natural multi-column generalisation of MRQ; each
    column's GTS answers its own MRQ and the id sets are intersected);

``knn_query(query, k)``
    k nearest records under the weighted-sum aggregate, answered with the
    threshold-style algorithm the paper alludes to (Fagin's TA [21] adapted
    to index probes): per-column candidate lists are expanded round by round
    with growing per-column ``k``; the algorithm stops once ``k`` records have
    aggregate distances no larger than the threshold formed by the per-column
    expansion radii, which guarantees exactness.

Every per-column probe runs through the normal GTS batch machinery, so the
whole extension inherits the simulated-device accounting.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import IndexError_, QueryError
from ..gpusim.device import Device
from ..metrics.base import Metric
from .gts import GTS

__all__ = ["MultiColumnGTS"]


class MultiColumnGTS:
    """Several GTS indexes, one per column, with weighted-sum aggregation.

    Parameters
    ----------
    metrics:
        One metric per column.
    weights:
        Non-negative aggregation weights (default: all ones).
    node_capacity, device, seed:
        Forwarded to every per-column :class:`GTS`.
    """

    def __init__(
        self,
        metrics: Sequence[Metric],
        weights: Optional[Sequence[float]] = None,
        node_capacity: int = 20,
        device: Optional[Device] = None,
        seed: int = 17,
    ):
        if len(metrics) == 0:
            raise IndexError_("at least one column metric is required")
        self.metrics = list(metrics)
        if weights is None:
            weights = [1.0] * len(metrics)
        if len(weights) != len(metrics):
            raise IndexError_("need exactly one weight per column")
        if any(w < 0 for w in weights):
            raise IndexError_("aggregation weights must be non-negative")
        self.weights = [float(w) for w in weights]
        self.device = device or Device()
        self._columns = [
            GTS(metric, node_capacity=node_capacity, device=self.device, seed=seed + i)
            for i, metric in enumerate(self.metrics)
        ]
        self._records: list[tuple] = []

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def build(
        cls,
        records: Sequence[Sequence],
        metrics: Sequence[Metric],
        weights: Optional[Sequence[float]] = None,
        node_capacity: int = 20,
        device: Optional[Device] = None,
        seed: int = 17,
    ) -> "MultiColumnGTS":
        """Build a multi-column index over ``records`` (one value per column each)."""
        index = cls(metrics, weights=weights, node_capacity=node_capacity, device=device, seed=seed)
        index.bulk_load(records)
        return index

    def bulk_load(self, records: Sequence[Sequence]) -> None:
        """Index ``records``; record ids are their positions."""
        if len(records) == 0:
            raise IndexError_("cannot bulk load an empty record collection")
        num_columns = len(self.metrics)
        for record in records:
            if len(record) != num_columns:
                raise IndexError_(
                    f"every record needs {num_columns} columns, got {len(record)}"
                )
        self._records = [tuple(record) for record in records]
        for column, gts in enumerate(self._columns):
            gts.bulk_load([record[column] for record in self._records])

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._records)

    @property
    def num_columns(self) -> int:
        """Number of indexed columns."""
        return len(self.metrics)

    def get_record(self, record_id: int) -> tuple:
        """Return the record registered under ``record_id``."""
        if not 0 <= record_id < len(self._records):
            raise IndexError_(f"unknown record id {record_id}")
        return self._records[record_id]

    def column(self, index: int) -> GTS:
        """The per-column GTS index (read-only use)."""
        return self._columns[index]

    def __len__(self) -> int:
        return self.num_records

    # -------------------------------------------------------------- queries
    def aggregate_distance(self, query: Sequence, record_id: int) -> float:
        """Weighted-sum aggregate distance between ``query`` and a record."""
        record = self.get_record(record_id)
        total = 0.0
        for value, rec_value, metric, weight in zip(query, record, self.metrics, self.weights):
            total += weight * metric.distance(value, rec_value)
        return total

    def range_query(self, query: Sequence, radii: Sequence[float]) -> list[tuple[int, list[float]]]:
        """Conjunctive multi-column range query.

        Returns the records within ``radii[c]`` of the query in every column
        ``c``, as ``(record_id, [per-column distances])`` sorted by record id.
        """
        self._require_built()
        if len(query) != self.num_columns or len(radii) != self.num_columns:
            raise QueryError("query and radii must have one entry per column")
        surviving: Optional[dict[int, list[float]]] = None
        for column, (gts, value, radius) in enumerate(zip(self._columns, query, radii)):
            hits = dict(gts.range_query(value, float(radius)))
            if surviving is None:
                surviving = {oid: [dist] for oid, dist in hits.items()}
            else:
                surviving = {
                    oid: dists + [hits[oid]]
                    for oid, dists in surviving.items()
                    if oid in hits
                }
            if not surviving:
                return []
        return sorted(surviving.items())

    def knn_query(self, query: Sequence, k: int, initial_k: Optional[int] = None) -> list[tuple[int, float]]:
        """Exact k nearest records under the weighted-sum aggregate distance.

        Implements a threshold-algorithm style expansion: each column's GTS is
        probed with a growing per-column ``k``; after each round the threshold
        is ``sum_c weight_c * (k-th distance seen in column c)``.  Once ``k``
        fully-evaluated records have aggregates at or below the threshold (or
        every record has been seen) the answer is final.
        """
        self._require_built()
        if len(query) != self.num_columns:
            raise QueryError("query must have one value per column")
        if k <= 0:
            raise QueryError("k must be positive")
        k = min(int(k), self.num_records)
        probe_k = min(self.num_records, max(int(initial_k or 0), k, 4))
        evaluated: dict[int, float] = {}
        while True:
            thresholds = []
            candidate_ids: set[int] = set()
            for column, (gts, value, weight) in enumerate(zip(self._columns, query, self.weights)):
                hits = gts.knn_query(value, probe_k)
                candidate_ids.update(oid for oid, _ in hits)
                kth = hits[-1][1] if hits else 0.0
                thresholds.append(weight * kth)
            threshold = float(sum(thresholds))
            for oid in candidate_ids:
                if oid not in evaluated:
                    evaluated[oid] = self.aggregate_distance(query, oid)
            ranked = sorted(evaluated.items(), key=lambda item: (item[1], item[0]))
            have_enough = len(ranked) >= k and ranked[k - 1][1] <= threshold
            seen_everything = probe_k >= self.num_records
            if have_enough or seen_everything:
                return [(int(oid), float(dist)) for oid, dist in ranked[:k]]
            probe_k = min(self.num_records, probe_k * 2)

    def _require_built(self) -> None:
        if not self._records:
            raise IndexError_("the multi-column index has not been built yet")
