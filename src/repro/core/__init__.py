"""Core GTS index: structure, construction, queries, updates, cost model."""

from .cache_table import CacheTable
from .construction import BuildResult, build_tree
from .cost_model import (
    DistanceDistribution,
    estimate_construction_cost,
    estimate_distance_distribution,
    estimate_query_cost,
    recommend_node_capacity,
    survival_probability,
)
from .encoding import decode_distances, encode_distances
from .gts import GTS
from .knn_query import batch_knn_query
from .maintenance import IncrementalMaintenance, MaintenanceConfig, SliceReport
from .multimetric import MultiColumnGTS
from .nodes import TreeStructure, level_size, level_start, total_nodes, tree_height
from .objectstore import ColumnarStore, make_object_store
from .persistence import INDEX_FORMAT_VERSION, load_index, save_index
from .pivots import available_pivot_strategies, get_pivot_selector
from .range_query import batch_range_query
from .searchcommon import PruneMode

__all__ = [
    "GTS",
    "MultiColumnGTS",
    "ColumnarStore",
    "make_object_store",
    "TreeStructure",
    "save_index",
    "load_index",
    "INDEX_FORMAT_VERSION",
    "BuildResult",
    "build_tree",
    "batch_range_query",
    "batch_knn_query",
    "CacheTable",
    "MaintenanceConfig",
    "IncrementalMaintenance",
    "SliceReport",
    "PruneMode",
    "encode_distances",
    "decode_distances",
    "tree_height",
    "total_nodes",
    "level_start",
    "level_size",
    "get_pivot_selector",
    "available_pivot_strategies",
    "DistanceDistribution",
    "estimate_distance_distribution",
    "estimate_query_cost",
    "estimate_construction_cost",
    "recommend_node_capacity",
    "survival_probability",
]
