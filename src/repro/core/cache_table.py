"""Cache table for streaming updates (Section 4.4, "Stream Data Updates").

GPUs are poor at fine-grained structural updates, so GTS never modifies the
tree in place.  Instead, inspired by the LSM-tree write path, it buffers
streaming changes in a small, contiguous **cache table**:

* an insertion appends the new object to the cache table — ``O(1)``;
* a deletion removes the object from the cache table if it lives there,
  otherwise the object's slot in the index is tombstoned — ``O(1)``;
* similarity queries probe the cache table with a brute-force parallel scan
  and merge its answers with the tree's answers, ignoring tombstoned objects;
* when the cache table outgrows its byte budget, the whole index is rebuilt
  from the union of live indexed objects and cached objects, and the cache is
  cleared (the paper's "peak-valley" strategy).

This module implements the cache table and its brute-force query path; the
rebuild policy lives in :class:`repro.core.gts.GTS` (blocking) and
:mod:`repro.core.maintenance` (generation-swap).

The scan path comes in two shapes.  The per-query :meth:`CacheTable.range_scan`
/ :meth:`CacheTable.knn_scan` launch one ``cache-scan`` kernel each; the
batched :meth:`CacheTable.range_scan_batch` / :meth:`CacheTable.knn_scan_batch`
evaluate a whole query batch against the cache with **one** fused kernel via
``Metric.pairwise_segmented`` over a columnar snapshot of the cached payload
(rebuilt lazily after mutations), returning per-query answers identical to
the per-query scans.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..exceptions import UpdateError
from ..gpusim.device import Allocation, Device
from ..metrics.base import Metric
from .construction import objects_nbytes
from .searchcommon import topk_by_distance

__all__ = ["CacheTable"]


class CacheTable:
    """Fixed-budget buffer of recently inserted objects.

    Parameters
    ----------
    capacity_bytes:
        Size budget of the cache table.  The paper evaluates 0.01 KB – 10 KB
        (Table 5) and recommends ~5 KB as the sweet spot between update and
        search efficiency.
    device:
        Simulated device on which the cache table (and its brute-force query
        scans) lives.  The byte budget is allocated up-front so that a larger
        cache leaves less memory for concurrent query processing — the
        trade-off behind Table 5's "decrease then increase" trend.
    """

    def __init__(self, capacity_bytes: int, device: Optional[Device] = None):
        if capacity_bytes <= 0:
            raise UpdateError("cache table capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._device = device
        self._objects: dict[int, object] = {}
        self._used_bytes = 0
        self._allocation: Optional[Allocation] = None
        # lazily built (ids, payload) snapshot the batched scans gather from;
        # any mutation drops it
        self._payload: Optional[tuple] = None
        if device is not None:
            self._allocation = device.allocate(self.capacity_bytes, "gts-cache-table")

    # ------------------------------------------------------------ bookkeeping
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj_id: int) -> bool:
        return int(obj_id) in self._objects

    @property
    def used_bytes(self) -> int:
        """Bytes of cached payload currently buffered."""
        return self._used_bytes

    @property
    def is_full(self) -> bool:
        """True once the buffered payload exceeds the byte budget."""
        return self._used_bytes > self.capacity_bytes

    def object_ids(self) -> list[int]:
        """Ids of the objects currently buffered (insertion order)."""
        return list(self._objects)

    def get(self, obj_id: int, default=None):
        """Return the buffered object under ``obj_id`` in O(1), or ``default``."""
        return self._objects.get(int(obj_id), default)

    @staticmethod
    def _object_size(obj) -> int:
        return max(1, objects_nbytes([obj]))

    # ------------------------------------------------------------- mutations
    def ensure_fits(self, obj) -> None:
        """Reject an object that alone exceeds the whole cache budget.

        Such an object could never be folded out by a rebuild without the
        cache immediately overflowing again on the next insert, so it is
        refused up front with :class:`~repro.exceptions.UpdateError`.
        """
        size = self._object_size(obj)
        if size > self.capacity_bytes:
            raise UpdateError(
                f"object of {size} bytes exceeds the whole cache table budget "
                f"of {self.capacity_bytes} bytes; raise cache_capacity_bytes "
                "or use batch_update() for oversized objects"
            )

    def insert(self, obj_id: int, obj) -> None:
        """Buffer a newly inserted object (O(1)).

        Raises :class:`~repro.exceptions.UpdateError` when the object alone
        exceeds ``capacity_bytes`` (see :meth:`ensure_fits`) or the id is
        already buffered.
        """
        obj_id = int(obj_id)
        if obj_id in self._objects:
            raise UpdateError(f"object {obj_id} is already buffered in the cache table")
        self.ensure_fits(obj)
        self._objects[obj_id] = obj
        self._used_bytes += self._object_size(obj)
        self._payload = None

    def remove(self, obj_id: int) -> bool:
        """Remove a buffered object; returns False when it is not buffered."""
        obj = self._objects.pop(int(obj_id), None)
        if obj is None:
            return False
        self._used_bytes -= self._object_size(obj)
        self._payload = None
        return True

    def clear(self) -> None:
        """Drop every buffered object (after a rebuild)."""
        self._objects.clear()
        self._used_bytes = 0
        self._payload = None

    def release(self) -> None:
        """Free the device allocation backing the cache table."""
        if self._device is not None and self._allocation is not None:
            self._device.free(self._allocation)
            self._allocation = None

    # --------------------------------------------------------------- queries
    def range_scan(
        self,
        metric: Metric,
        query,
        radius: float,
        device: Optional[Device] = None,
    ) -> list[tuple[int, float]]:
        """Brute-force range scan of the cache table (parallel on the device)."""
        if not self._objects:
            return []
        ids = list(self._objects)
        start = time.perf_counter()
        dists = metric.pairwise(query, [self._objects[i] for i in ids])
        host = time.perf_counter() - start
        dev = device or self._device
        if dev is not None:
            dev.launch_kernel(
                work_items=len(ids), op_cost=metric.unit_cost, label="cache-scan", host_time=host
            )
        return [
            (int(oid), float(d)) for oid, d in zip(ids, dists) if d <= radius
        ]

    def knn_scan(
        self,
        metric: Metric,
        query,
        k: int,
        device: Optional[Device] = None,
    ) -> list[tuple[int, float]]:
        """Brute-force kNN scan of the cache table (parallel on the device).

        The top-k extraction partitions on the k-th distance instead of
        fully sorting the cache (``np.argpartition`` + a sort of the
        survivors only), with ties broken by object id exactly as before.
        """
        if not self._objects or k <= 0:
            return []
        ids = np.fromiter(self._objects, count=len(self._objects), dtype=np.int64)
        start = time.perf_counter()
        dists = metric.pairwise(query, list(self._objects.values()))
        host = time.perf_counter() - start
        dev = device or self._device
        if dev is not None:
            dev.launch_kernel(
                work_items=len(ids), op_cost=metric.unit_cost, label="cache-scan", host_time=host
            )
        top = topk_by_distance(ids, dists, int(k))
        return [(int(ids[i]), float(dists[i])) for i in top]

    # --------------------------------------------------------- batched queries
    def _tiled_payload(self, num_queries: int) -> tuple:
        """The cached payload tiled to ``num_queries`` segments.

        Returns ``(ids, flat_objects, boundaries)`` where segment ``qi`` of
        ``flat_objects`` (rows ``boundaries[qi]:boundaries[qi + 1]``) is the
        whole cache in insertion order — the shape
        ``Metric.pairwise_segmented`` consumes.  Vector caches snapshot one
        stacked matrix (rebuilt lazily after mutations) so the tile is a
        single NumPy repeat; everything else tiles the object list.
        """
        if self._payload is None:
            ids = np.fromiter(self._objects, count=len(self._objects), dtype=np.int64)
            values = list(self._objects.values())
            matrix = None
            if values and all(
                isinstance(o, np.ndarray) and o.ndim == 1 for o in values
            ) and len({(o.shape, o.dtype.str) for o in values}) == 1:
                matrix = np.stack(values)
            self._payload = (ids, values, matrix)
        ids, values, matrix = self._payload
        count = len(ids)
        boundaries = np.arange(num_queries + 1, dtype=np.int64) * count
        if matrix is not None:
            flat = np.tile(matrix, (num_queries, 1))
        else:
            flat = values * num_queries
        return ids, flat, boundaries

    def _scan_batch_distances(
        self, metric: Metric, queries: Sequence, device: Optional[Device]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances of every (query, cached object) pair via one fused kernel."""
        ids, flat, boundaries = self._tiled_payload(len(queries))
        start = time.perf_counter()
        dists = metric.pairwise_segmented(queries, flat, boundaries)
        host = time.perf_counter() - start
        dev = device or self._device
        if dev is not None:
            dev.launch_kernel(
                work_items=len(flat),
                op_cost=metric.unit_cost,
                label="cache-scan",
                host_time=host,
            )
        return ids, dists

    def range_scan_batch(
        self,
        metric: Metric,
        queries: Sequence,
        radii,
        device: Optional[Device] = None,
    ) -> list[list[tuple[int, float]]]:
        """Range-scan the cache for a whole query batch with one kernel.

        Per-query answers are identical to calling :meth:`range_scan` once
        per query (same distances, same insertion-order enumeration); only
        the kernel granularity changes — one ``cache-scan`` launch covering
        ``len(queries) * len(cache)`` pairs instead of one per query.
        """
        if not self._objects or len(queries) == 0:
            return [[] for _ in range(len(queries))]
        radii = np.asarray(radii, dtype=np.float64)
        ids, dists = self._scan_batch_distances(metric, queries, device)
        count = len(ids)
        out = []
        for qi in range(len(queries)):
            segment = dists[qi * count : (qi + 1) * count]
            hits = np.flatnonzero(segment <= radii[qi])
            out.append([(int(ids[i]), float(segment[i])) for i in hits])
        return out

    def knn_scan_batch(
        self,
        metric: Metric,
        queries: Sequence,
        ks,
        device: Optional[Device] = None,
    ) -> list[list[tuple[int, float]]]:
        """kNN-scan the cache for a whole query batch with one kernel.

        Per-query answers are identical to calling :meth:`knn_scan` once per
        query; the top-k of each segment is extracted with the same
        partition-then-sort-survivors strategy.
        """
        if not self._objects or len(queries) == 0:
            return [[] for _ in range(len(queries))]
        ks = np.asarray(ks, dtype=np.int64)
        ids, dists = self._scan_batch_distances(metric, queries, device)
        count = len(ids)
        out = []
        for qi in range(len(queries)):
            segment = dists[qi * count : (qi + 1) * count]
            top = topk_by_distance(ids, segment, int(ks[qi]))
            out.append([(int(ids[i]), float(segment[i])) for i in top])
        return out

    def items(self) -> list[tuple[int, object]]:
        """Return ``(object_id, object)`` pairs currently buffered."""
        return list(self._objects.items())
