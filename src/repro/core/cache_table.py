"""Cache table for streaming updates (Section 4.4, "Stream Data Updates").

GPUs are poor at fine-grained structural updates, so GTS never modifies the
tree in place.  Instead, inspired by the LSM-tree write path, it buffers
streaming changes in a small, contiguous **cache table**:

* an insertion appends the new object to the cache table — ``O(1)``;
* a deletion removes the object from the cache table if it lives there,
  otherwise the object's slot in the index is tombstoned — ``O(1)``;
* similarity queries probe the cache table with a brute-force parallel scan
  and merge its answers with the tree's answers, ignoring tombstoned objects;
* when the cache table outgrows its byte budget, the whole index is rebuilt
  from the union of live indexed objects and cached objects, and the cache is
  cleared (the paper's "peak-valley" strategy).

This module implements the cache table and its brute-force query path; the
rebuild policy lives in :class:`repro.core.gts.GTS`.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..exceptions import UpdateError
from ..gpusim.device import Allocation, Device
from ..metrics.base import Metric
from .construction import objects_nbytes

__all__ = ["CacheTable"]


class CacheTable:
    """Fixed-budget buffer of recently inserted objects.

    Parameters
    ----------
    capacity_bytes:
        Size budget of the cache table.  The paper evaluates 0.01 KB – 10 KB
        (Table 5) and recommends ~5 KB as the sweet spot between update and
        search efficiency.
    device:
        Simulated device on which the cache table (and its brute-force query
        scans) lives.  The byte budget is allocated up-front so that a larger
        cache leaves less memory for concurrent query processing — the
        trade-off behind Table 5's "decrease then increase" trend.
    """

    def __init__(self, capacity_bytes: int, device: Optional[Device] = None):
        if capacity_bytes <= 0:
            raise UpdateError("cache table capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._device = device
        self._objects: dict[int, object] = {}
        self._used_bytes = 0
        self._allocation: Optional[Allocation] = None
        if device is not None:
            self._allocation = device.allocate(self.capacity_bytes, "gts-cache-table")

    # ------------------------------------------------------------ bookkeeping
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj_id: int) -> bool:
        return int(obj_id) in self._objects

    @property
    def used_bytes(self) -> int:
        """Bytes of cached payload currently buffered."""
        return self._used_bytes

    @property
    def is_full(self) -> bool:
        """True once the buffered payload exceeds the byte budget."""
        return self._used_bytes > self.capacity_bytes

    def object_ids(self) -> list[int]:
        """Ids of the objects currently buffered (insertion order)."""
        return list(self._objects)

    def get(self, obj_id: int, default=None):
        """Return the buffered object under ``obj_id`` in O(1), or ``default``."""
        return self._objects.get(int(obj_id), default)

    @staticmethod
    def _object_size(obj) -> int:
        return max(1, objects_nbytes([obj]))

    # ------------------------------------------------------------- mutations
    def insert(self, obj_id: int, obj) -> None:
        """Buffer a newly inserted object (O(1))."""
        obj_id = int(obj_id)
        if obj_id in self._objects:
            raise UpdateError(f"object {obj_id} is already buffered in the cache table")
        self._objects[obj_id] = obj
        self._used_bytes += self._object_size(obj)

    def remove(self, obj_id: int) -> bool:
        """Remove a buffered object; returns False when it is not buffered."""
        obj = self._objects.pop(int(obj_id), None)
        if obj is None:
            return False
        self._used_bytes -= self._object_size(obj)
        return True

    def clear(self) -> None:
        """Drop every buffered object (after a rebuild)."""
        self._objects.clear()
        self._used_bytes = 0

    def release(self) -> None:
        """Free the device allocation backing the cache table."""
        if self._device is not None and self._allocation is not None:
            self._device.free(self._allocation)
            self._allocation = None

    # --------------------------------------------------------------- queries
    def range_scan(
        self,
        metric: Metric,
        query,
        radius: float,
        device: Optional[Device] = None,
    ) -> list[tuple[int, float]]:
        """Brute-force range scan of the cache table (parallel on the device)."""
        if not self._objects:
            return []
        ids = list(self._objects)
        start = time.perf_counter()
        dists = metric.pairwise(query, [self._objects[i] for i in ids])
        host = time.perf_counter() - start
        dev = device or self._device
        if dev is not None:
            dev.launch_kernel(
                work_items=len(ids), op_cost=metric.unit_cost, label="cache-scan", host_time=host
            )
        return [
            (int(oid), float(d)) for oid, d in zip(ids, dists) if d <= radius
        ]

    def knn_scan(
        self,
        metric: Metric,
        query,
        k: int,
        device: Optional[Device] = None,
    ) -> list[tuple[int, float]]:
        """Brute-force kNN scan of the cache table (parallel on the device)."""
        if not self._objects or k <= 0:
            return []
        ids = list(self._objects)
        start = time.perf_counter()
        dists = metric.pairwise(query, [self._objects[i] for i in ids])
        host = time.perf_counter() - start
        dev = device or self._device
        if dev is not None:
            dev.launch_kernel(
                work_items=len(ids), op_cost=metric.unit_cost, label="cache-scan", host_time=host
            )
        ranked = sorted(zip(ids, dists), key=lambda item: (item[1], item[0]))
        return [(int(oid), float(d)) for oid, d in ranked[:k]]

    def items(self) -> list[tuple[int, object]]:
        """Return ``(object_id, object)`` pairs currently buffered."""
        return list(self._objects.items())
