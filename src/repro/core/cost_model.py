"""Cost model for GTS similarity search and construction (Section 5.3).

The model estimates the per-query search cost as a function of the node
capacity ``Nc`` and uses it to recommend a capacity that balances the two
opposing forces the paper identifies:

* a **large** ``Nc`` gives a shallow tree — fewer sequential levels, so fewer
  synchronisation rounds on the GPU — but fewer pivots, hence weaker pruning
  and more distance computations;
* a **small** ``Nc`` prunes aggressively but needs more levels, each of which
  costs at least one kernel round-trip.

Following the paper, the probability that an object survives pruning at one
level is bounded with Chebyshev's inequality by ``1 - 2σ²/r²`` where ``σ²``
is the variance of the pivot-distance distribution and ``r`` the query
radius; the surviving candidate set shrinks geometrically with depth.  The
estimated cost of a query is then

    ``Σ_{i=1..h} [ launch + ⌈S_i / C⌉ · log2(Nc) · op ]  +  ⌈S_h / C⌉ · op``

with ``S_i = min(n, Nc^i) · p^i`` the expected number of live candidates at
level ``i`` (the last term is the leaf verification).  Construction cost uses
the ``O(⌈n/C⌉ log² n)`` per-level bound of Section 4.5.

The absolute values are only as good as the distributional assumptions, but
the *argmin over Nc* tracks the measured optimum well (see the
``bench_ablation_cost_model`` benchmark), which is all the paper uses it for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import QueryError
from ..gpusim.specs import DeviceSpec
from ..metrics.base import Metric

__all__ = [
    "DistanceDistribution",
    "estimate_distance_distribution",
    "survival_probability",
    "estimate_query_cost",
    "estimate_construction_cost",
    "recommend_node_capacity",
]


@dataclass(frozen=True)
class DistanceDistribution:
    """Summary statistics of the pairwise-distance distribution of a dataset."""

    mean: float
    std: float
    max: float
    sample_size: int

    @property
    def variance(self) -> float:
        return self.std ** 2


def estimate_distance_distribution(
    objects: Sequence,
    metric: Metric,
    sample_size: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> DistanceDistribution:
    """Estimate the distance distribution from a random sample of object pairs."""
    n = len(objects)
    if n < 2:
        raise QueryError("need at least two objects to estimate a distance distribution")
    rng = rng or np.random.default_rng(7)
    sample_size = min(sample_size, n)
    idx = rng.choice(n, size=sample_size, replace=False)
    if isinstance(objects, np.ndarray):
        sample = objects[idx]
    else:
        sample = [objects[int(i)] for i in idx]
    anchors = min(16, sample_size)
    dists = []
    for a in range(anchors):
        row = metric.pairwise(sample[a], sample)
        dists.append(np.delete(row, a))
    all_d = np.concatenate(dists)
    return DistanceDistribution(
        mean=float(all_d.mean()),
        std=float(all_d.std()),
        max=float(all_d.max()),
        sample_size=len(all_d),
    )


def survival_probability(sigma: float, radius: float) -> float:
    """Chebyshev-style bound on the probability that one pivot fails to prune.

    Equation (3) of the paper: ``Pr(|X - Y| <= r) >= 1 - 2σ²/r²``.  The value
    is clipped to ``[0.02, 1]``: the lower clip keeps the model stable for
    very selective radii (the bound is vacuous there) and mirrors the paper's
    observation that a few pivots already remove most candidates.
    """
    if radius <= 0:
        return 0.02
    p = 1.0 - 2.0 * (sigma ** 2) / (radius ** 2)
    return float(min(1.0, max(0.02, p)))


def _height(n: int, node_capacity: int) -> int:
    if n <= 1:
        return 0
    return max(1, int(math.ceil(math.log(n + 1, node_capacity))) - 1)


def estimate_query_cost(
    n: int,
    node_capacity: int,
    device: DeviceSpec,
    sigma: float,
    radius: float,
    metric_unit_cost: float = 1.0,
) -> float:
    """Estimated simulated seconds for one similarity query under GTS.

    See the module docstring for the formula.  ``radius`` plays the role of
    the query selectivity knob; for MkNNQ pass the expected k-th neighbour
    distance.
    """
    if n <= 0:
        return 0.0
    if node_capacity < 2:
        raise QueryError("node capacity must be at least 2")
    h = _height(n, node_capacity)
    p = survival_probability(sigma, radius)
    c = device.cores
    cost = 0.0
    candidates = 1.0  # expected number of candidate nodes at the current level
    for level in range(1, h + 1):
        candidates = min(float(n), candidates * node_capacity * p)
        cost += device.kernel_launch_overhead
        # pivot distance computations for the surviving candidates ...
        cost += math.ceil(candidates / c) * metric_unit_cost * device.op_time
        # ... plus the per-level pruning tests / candidate bookkeeping
        cost += (
            math.ceil(candidates * node_capacity / c)
            * max(1.0, math.log2(node_capacity))
            * device.op_time
        )
    # leaf verification: surviving fraction of the dataset
    leaf_candidates = min(float(n), float(n) * (p ** h))
    cost += device.kernel_launch_overhead
    cost += math.ceil(leaf_candidates / c) * metric_unit_cost * device.op_time
    return cost


def estimate_construction_cost(
    n: int,
    node_capacity: int,
    device: DeviceSpec,
    metric_unit_cost: float = 1.0,
) -> float:
    """Estimated simulated seconds to build GTS over ``n`` objects.

    Per level: a mapping kernel (``⌈n/C⌉`` distance rounds), a global sort
    (``⌈n/C⌉ log2 n`` rounds) and a partitioning kernel, summed over the
    ``h ≈ log_Nc n`` levels — the ``O(⌈n/C⌉ log³ n)`` bound of Section 4.5.
    """
    if n <= 0:
        return 0.0
    h = _height(n, node_capacity)
    c = device.cores
    per_level = (
        3 * device.kernel_launch_overhead
        + math.ceil(n / c) * metric_unit_cost * device.op_time
        + math.ceil(n / c) * max(1.0, math.log2(n)) * device.op_time
        + math.ceil(n / c) * device.op_time
    )
    return h * per_level


def recommend_node_capacity(
    n: int,
    device: DeviceSpec,
    sigma: float,
    radius: float,
    candidates: Sequence[int] = (10, 20, 40, 80, 160, 320),
    metric_unit_cost: float = 1.0,
) -> int:
    """Return the candidate node capacity with the lowest estimated query cost.

    This is the tuning procedure the paper's Section 5.3 discussion implies:
    evaluate the cost model over the candidate capacities (Table 3's set by
    default) and pick the argmin.  Ties go to the smaller capacity, matching
    the paper's recommendation of a relatively small ``Nc`` when the GPU's
    concurrency and the dataset size are comparable.
    """
    if not candidates:
        raise QueryError("candidates must not be empty")
    best_nc = None
    best_cost = math.inf
    for nc in sorted(candidates):
        cost = estimate_query_cost(n, nc, device, sigma, radius, metric_unit_cost)
        if cost < best_cost - 1e-18:
            best_cost = cost
            best_nc = nc
    return int(best_nc)
