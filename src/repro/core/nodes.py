"""Flat, table-based storage of the GTS tree (node list + table list).

The paper's key structural idea (Section 4.2) is that the tree is *not*
stored as linked nodes: all nodes live in one contiguous **node list** whose
IDs follow full multi-way-tree numbering, and the objects with their
distances to the partitioning pivots live in one contiguous **table list**
kept only for the leaf level.  Nodes of one level therefore occupy one
contiguous slice of the node list, which is what allows a single kernel to
process every node of a level at once.

This module holds that storage as a :class:`TreeStructure` of parallel NumPy
arrays plus the ID arithmetic (Eq. 1 of the paper, translated to 0-based
indexing):

* root id is ``0``;
* the ``j``-th child of node ``i`` is ``i * Nc + j + 1``;
* level ``l`` starts at ``(Nc**l - 1) // (Nc - 1)`` and holds ``Nc**l`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ..exceptions import IndexError_

__all__ = ["TreeStructure", "tree_height", "total_nodes", "level_start", "level_size"]

#: Sentinel pivot value for leaf nodes ("pivot: NULL" in Fig. 3 of the paper).
NO_PIVOT = -1


def tree_height(num_objects: int, node_capacity: int) -> int:
    """Return the height bound ``h = ⌈log_Nc(|O| + 1)⌉ - 1`` (Algorithm 1, line 1).

    ``h`` is the number of partitioning rounds; leaves live at level ``h``.
    A dataset that fits in a single node yields ``h = 0`` (the root is the
    only, possibly over-full, leaf).
    """
    if num_objects < 0:
        raise IndexError_("num_objects must be non-negative")
    if node_capacity < 2:
        raise IndexError_(f"node capacity must be at least 2, got {node_capacity}")
    if num_objects <= 1:
        return 0
    h = int(np.ceil(np.log(num_objects + 1) / np.log(node_capacity))) - 1
    # Guard against floating point edge cases (e.g. exactly Nc**k objects).
    while node_capacity ** (h + 1) < num_objects + 1:
        h += 1
    while h > 0 and node_capacity ** h >= num_objects + 1:
        h -= 1
    return max(h, 0)


def total_nodes(height: int, node_capacity: int) -> int:
    """Number of node slots in a full ``Nc``-ary tree of the given height."""
    return (node_capacity ** (height + 1) - 1) // (node_capacity - 1)


def level_start(level: int, node_capacity: int) -> int:
    """Index of the first node slot of ``level`` in the node list."""
    return (node_capacity ** level - 1) // (node_capacity - 1)


def level_size(level: int, node_capacity: int) -> int:
    """Number of node slots at ``level``."""
    return node_capacity ** level


@dataclass
class TreeStructure:
    """The node list and table list of one built GTS index.

    Attributes
    ----------
    node_capacity:
        ``Nc``, the fan-out of every internal node.
    height:
        ``h``; leaves are the nodes at level ``h``.
    pivot:
        ``int64[num_nodes]`` — object id of the node's pivot, ``NO_PIVOT`` for
        leaves and empty slots.
    pos / size:
        ``int64[num_nodes]`` — the slice ``[pos, pos + size)`` of the table
        list holding the node's objects.
    min_dis / max_dis:
        ``float64[num_nodes]`` — minimum / maximum distance from the *parent's*
        pivot to the node's objects (the paper stores ``min_dis``; ``max_dis``
        adds the symmetric bound for two-sided pruning).
    obj_ids:
        ``int64[n]`` — the table list's object column: object ids in leaf order.
    obj_dis:
        ``float64[n]`` — the table list's distance column: each object's
        distance to the pivot of its leaf's parent (the final-stage table of
        Fig. 3).
    """

    node_capacity: int
    height: int
    num_objects: int
    pivot: np.ndarray
    pos: np.ndarray
    size: np.ndarray
    min_dis: np.ndarray
    max_dis: np.ndarray
    obj_ids: np.ndarray
    obj_dis: np.ndarray

    # ------------------------------------------------------------ factories
    @classmethod
    def empty(cls, num_objects: int, node_capacity: int) -> "TreeStructure":
        """Allocate zeroed storage sized for ``num_objects`` and ``node_capacity``."""
        height = tree_height(num_objects, node_capacity)
        n_nodes = total_nodes(height, node_capacity)
        return cls(
            node_capacity=node_capacity,
            height=height,
            num_objects=num_objects,
            pivot=np.full(n_nodes, NO_PIVOT, dtype=np.int64),
            pos=np.zeros(n_nodes, dtype=np.int64),
            size=np.zeros(n_nodes, dtype=np.int64),
            min_dis=np.full(n_nodes, np.inf, dtype=np.float64),
            max_dis=np.full(n_nodes, -np.inf, dtype=np.float64),
            obj_ids=np.zeros(num_objects, dtype=np.int64),
            obj_dis=np.zeros(num_objects, dtype=np.float64),
        )

    # --------------------------------------------------------- ID arithmetic
    @property
    def num_nodes(self) -> int:
        """Number of node slots (including empty ones of the full tree)."""
        return len(self.pivot)

    def children_of(self, node_id: int) -> np.ndarray:
        """Return the ``Nc`` child slot ids of ``node_id`` (Eq. 1, 0-based)."""
        base = node_id * self.node_capacity + 1
        return np.arange(base, base + self.node_capacity, dtype=np.int64)

    def parent_of(self, node_id: int) -> int:
        """Return the parent slot id of ``node_id`` (root has no parent)."""
        if node_id <= 0:
            raise IndexError_("the root node has no parent")
        return (node_id - 1) // self.node_capacity

    def level_of(self, node_id: int) -> int:
        """Return the level of ``node_id`` (root is level 0)."""
        level = 0
        while level_start(level + 1, self.node_capacity) <= node_id:
            level += 1
        return level

    def level_slice(self, level: int) -> slice:
        """Return the slice of node slots making up ``level``."""
        start = level_start(level, self.node_capacity)
        return slice(start, start + level_size(level, self.node_capacity))

    def is_leaf_level(self, level: int) -> bool:
        """True when ``level`` is the last (leaf) level."""
        return level >= self.height

    # ------------------------------------------------------------ accessors
    def node_objects(self, node_id: int) -> np.ndarray:
        """Return the object ids stored under ``node_id`` (leaf order)."""
        p = int(self.pos[node_id])
        s = int(self.size[node_id])
        return self.obj_ids[p : p + s]

    def node_object_distances(self, node_id: int) -> np.ndarray:
        """Return the table-list distances of ``node_id``'s objects."""
        p = int(self.pos[node_id])
        s = int(self.size[node_id])
        return self.obj_dis[p : p + s]

    def active_nodes(self, level: int) -> np.ndarray:
        """Return the ids of the non-empty nodes at ``level``."""
        sl = self.level_slice(level)
        ids = np.arange(sl.start, sl.stop, dtype=np.int64)
        return ids[self.size[sl] > 0]

    def leaves(self) -> np.ndarray:
        """Return the ids of the non-empty leaf nodes."""
        return self.active_nodes(self.height)

    def iter_levels(self) -> Iterator[int]:
        """Iterate over the levels from the root down to the leaves."""
        return iter(range(self.height + 1))

    # ------------------------------------------------------------ invariants
    def storage_bytes(self) -> int:
        """Bytes of index storage: node list + table list (Section 4.5)."""
        node_bytes = (
            self.pivot.nbytes
            + self.pos.nbytes
            + self.size.nbytes
            + self.min_dis.nbytes
            + self.max_dis.nbytes
        )
        table_bytes = self.obj_ids.nbytes + self.obj_dis.nbytes
        return int(node_bytes + table_bytes)

    def check_invariants(self) -> None:
        """Verify the structural invariants of the index; raise on violation.

        Checked properties (used heavily by the test-suite):

        * the table list is a permutation of the indexed object ids;
        * every non-empty node's slice nests inside its parent's slice;
        * children of one node partition the parent's slice without overlap;
        * ``min_dis <= max_dis`` for every non-empty non-root node;
        * leaves (and only slots past the leaf level) have no pivot.
        """
        n = self.num_objects
        if sorted(self.obj_ids.tolist()) != sorted(set(self.obj_ids.tolist())):
            raise IndexError_("table list contains duplicate object ids")
        if int(self.size[0]) != n:
            raise IndexError_("root size does not match the number of objects")
        for level in self.iter_levels():
            for node_id in self.active_nodes(level):
                p, s = int(self.pos[node_id]), int(self.size[node_id])
                if p < 0 or p + s > n:
                    raise IndexError_(f"node {node_id} slice [{p},{p + s}) out of range")
                if level > 0:
                    parent = self.parent_of(int(node_id))
                    pp, ps = int(self.pos[parent]), int(self.size[parent])
                    if not (pp <= p and p + s <= pp + ps):
                        raise IndexError_(
                            f"node {node_id} slice not nested in parent {parent}"
                        )
                    if self.min_dis[node_id] > self.max_dis[node_id]:
                        raise IndexError_(f"node {node_id} has min_dis > max_dis")
                if not self.is_leaf_level(level):
                    if s > 0 and self.pivot[node_id] == NO_PIVOT:
                        raise IndexError_(f"internal node {node_id} has no pivot")
                else:
                    if self.pivot[node_id] != NO_PIVOT:
                        raise IndexError_(f"leaf node {node_id} has a pivot")
            if level > 0:
                # children of each parent must tile the parent's slice
                for parent in self.active_nodes(level - 1):
                    kids = self.children_of(int(parent))
                    kid_total = int(self.size[kids].sum())
                    if not self.is_leaf_level(level - 1) and kid_total != int(self.size[parent]):
                        raise IndexError_(
                            f"children of node {parent} cover {kid_total} objects, "
                            f"expected {int(self.size[parent])}"
                        )
