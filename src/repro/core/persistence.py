"""Saving and loading GTS indexes.

A GTS index is cheap to rebuild (that is the point of the paper's
construction algorithm), but a production deployment still wants to ship a
built index between processes — e.g. build once on a large machine, then
serve queries elsewhere without paying the construction distance
computations again.  This module serialises everything the index needs into
one compressed ``.npz`` container:

* the flat tree structure (node list + table list) as plain NumPy arrays;
* the object store — natively for NumPy-array datasets, pickled inside the
  archive for list datasets such as strings;
* the bookkeeping state: indexed ids, tombstones, cached (not yet indexed)
  objects, and the configuration knobs (node capacity, pivot strategy,
  prune mode, cache budget).

The distance metric itself is *not* serialised: metrics can wrap arbitrary
user code.  Instead the metric's registry name is stored and the metric is
re-created through :func:`repro.metrics.get_metric` at load time; passing an
explicit ``metric=`` to :func:`load_index` overrides that lookup (and is the
only option for unregistered custom metrics).

Loading re-registers the index storage on the target simulated device, so
memory accounting behaves exactly as if the index had been built there.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from ..exceptions import IndexError_, MetricError
from ..gpusim.device import Device
from ..metrics.base import Metric
from ..metrics.registry import get_metric
from .construction import BuildResult
from .nodes import TreeStructure
from .objectstore import ColumnarStore, make_object_store, rows_matrix

__all__ = ["save_index", "load_index", "INDEX_FORMAT_VERSION"]

#: Version stamp written into every archive; bumped on incompatible changes.
#: Version 2 added the construction ``seed`` and RNG state to the meta block;
#: version 3 added the tiered-memory config (``tier``) so an out-of-core
#: index reloads in the same mode it was saved in.  Versions 1 and 2 are
#: still read (their indexes load fully resident with default/seed
#: fallbacks, the old behaviour).
INDEX_FORMAT_VERSION = 3

#: Archive versions :func:`load_index` understands.
_READABLE_FORMAT_VERSIONS = (1, 2, 3)

#: Maps metric instance names to metric-registry keys for round-tripping.
_METRIC_NAME_TO_KEY = {
    "l1-norm": "l1",
    "l2-norm": "l2",
    "linf-norm": "linf",
    "angular": "angular",
    "edit-distance": "edit",
    "hamming": "hamming",
    "jaccard": "jaccard",
}


def _metric_registry_key(metric: Metric) -> Optional[str]:
    return _METRIC_NAME_TO_KEY.get(metric.name)


def save_index(index, path) -> Path:
    """Serialise a built :class:`~repro.core.gts.GTS` index to ``path``.

    Returns the path written (with the ``.npz`` suffix NumPy appends when it
    is missing).
    """
    from .gts import GTS  # local import to avoid a circular dependency

    if not isinstance(index, GTS):
        raise IndexError_(f"save_index expects a GTS index, got {type(index).__name__}")
    index._require_built()
    path = Path(path)
    tree = index.tree
    cache_items = list(index._cache.items())
    # host-side view of the object store (a tiered index wraps it in a
    # PagedObjects facade; serialisation must not fault device blocks)
    host_objects = getattr(index._objects, "raw", index._objects)
    meta = {
        "format_version": INDEX_FORMAT_VERSION,
        "metric_name": index.metric.name,
        "metric_key": _metric_registry_key(index.metric),
        "node_capacity": index.node_capacity,
        "pivot_strategy": index.pivot_strategy,
        "prune_mode": "two-sided" if index.prune_mode.two_sided else "one-sided",
        "cache_capacity_bytes": index._cache.capacity_bytes,
        # The seed alone is not enough for post-load determinism: builds
        # consume the RNG, so the live generator state must round-trip for a
        # loaded index's next rebuild to match the never-saved index's.
        "seed": index.seed,
        "rng_state": index._rng.bit_generator.state,
        "height": tree.height,
        "num_objects": tree.num_objects,
        "rebuild_count": index.rebuild_count,
        "automatic_rebuild_count": index.automatic_rebuild_count,
        "forced_rebuild_count": index.forced_rebuild_count,
        "objects_kind": _objects_kind(host_objects),
        "tier": index.tier_config.as_dict() if index.tier_config is not None else None,
    }
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        "pivot": tree.pivot,
        "pos": tree.pos,
        "size": tree.size,
        "min_dis": tree.min_dis,
        "max_dis": tree.max_dis,
        "obj_ids": tree.obj_ids,
        "obj_dis": tree.obj_dis,
        "indexed_ids": index._indexed_ids,
        "tombstones": np.asarray(sorted(index._tombstones), dtype=np.int64),
        "cache_ids": np.asarray([oid for oid, _ in cache_items], dtype=np.int64),
    }
    if meta["objects_kind"] == "array":
        matrix = rows_matrix(host_objects)
        if matrix is None:
            matrix = np.stack([np.asarray(o) for o in host_objects])
        arrays["objects_array"] = matrix
    else:
        # the trailing None stops NumPy from stacking uniform rows into a 2-d
        # array, keeping one object per slot for arbitrary (string, ...) data
        arrays["objects_pickled"] = np.asarray(list(host_objects) + [None], dtype=object)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def _objects_kind(objects) -> str:
    """"array" when every object is an identically-shaped NumPy row, else "list"."""
    if isinstance(objects, ColumnarStore) or isinstance(objects, np.ndarray):
        return "array"
    if objects and all(isinstance(o, np.ndarray) for o in objects):
        signatures = {(o.shape, o.dtype.str) for o in objects}
        if len(signatures) == 1:
            return "array"
    return "list"


def load_index(path, metric: Optional[Metric] = None, device: Optional[Device] = None):
    """Load a GTS index previously written by :func:`save_index`.

    Parameters
    ----------
    path:
        Archive produced by :func:`save_index`.
    metric:
        Distance metric to attach; when omitted, the metric is re-created
        from its registry name stored in the archive.
    device:
        Simulated device to register the index on; a default device is
        created when omitted.
    """
    from .gts import GTS  # local import to avoid a circular dependency

    path = Path(path)
    if not path.exists():
        raise IndexError_(f"index archive not found: {path}")
    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("format_version") not in _READABLE_FORMAT_VERSIONS:
            raise IndexError_(
                f"unsupported index format version {meta.get('format_version')!r}; "
                f"this build reads versions {_READABLE_FORMAT_VERSIONS}"
            )
        if metric is None:
            key = meta.get("metric_key")
            if not key:
                raise MetricError(
                    f"the archive's metric {meta.get('metric_name')!r} is not in the metric "
                    "registry; pass metric=... to load_index()"
                )
            metric = get_metric(key)
        if meta["objects_kind"] == "array":
            # re-create the contiguous columnar store (copies out of the npz)
            objects = make_object_store(archive["objects_array"])
        else:
            objects = list(archive["objects_pickled"][:-1])
        tree = TreeStructure(
            node_capacity=int(meta["node_capacity"]),
            height=int(meta["height"]),
            num_objects=int(meta["num_objects"]),
            pivot=archive["pivot"].copy(),
            pos=archive["pos"].copy(),
            size=archive["size"].copy(),
            min_dis=archive["min_dis"].copy(),
            max_dis=archive["max_dis"].copy(),
            obj_ids=archive["obj_ids"].copy(),
            obj_dis=archive["obj_dis"].copy(),
        )
        indexed_ids = archive["indexed_ids"].copy()
        tombstones = set(int(i) for i in archive["tombstones"])
        cache_ids = [int(i) for i in archive["cache_ids"]]

    from ..tier.config import TierConfig

    tier_meta = meta.get("tier")
    index = GTS(
        metric=metric,
        node_capacity=int(meta["node_capacity"]),
        device=device,
        cache_capacity_bytes=int(meta["cache_capacity_bytes"]),
        pivot_strategy=meta["pivot_strategy"],
        prune_mode=meta["prune_mode"],
        seed=int(meta.get("seed", 17)),
        tier=TierConfig.from_dict(tier_meta) if tier_meta else None,
    )
    if meta.get("rng_state") is not None:
        index._rng.bit_generator.state = meta["rng_state"]
    index._objects = objects
    if index.tier_config is not None:
        index._init_tier()
    index._indexed_ids = indexed_ids
    index._tombstones = tombstones
    # Older archives carry only the summed count; treat it as automatic (the
    # historical docstring's semantics) so the sum round-trips either way.
    index._forced_rebuild_count = int(meta.get("forced_rebuild_count", 0))
    index._automatic_rebuild_count = int(
        meta.get(
            "automatic_rebuild_count",
            int(meta.get("rebuild_count", 0)) - index._forced_rebuild_count,
        )
    )

    # register the index storage on the device, as a fresh build would
    allocation = index.device.allocate(tree.storage_bytes(), "gts-index-loaded", pool="tree")
    index.device.transfer_to_device(tree.storage_bytes())
    index._allocations = [allocation]
    index._tree = tree
    index._build_result = BuildResult(tree=tree, allocations=index._allocations)
    if index._pager is not None:
        index._pager.set_pins(
            index._objects.store.blocks_for(tree.pivot[tree.pivot >= 0])
        )

    # host-side read: repopulating the cache must not fault tiered blocks
    host_objects = getattr(index._objects, "raw", index._objects)
    for obj_id in cache_ids:
        index._cache.insert(obj_id, host_objects[obj_id])
    return index
