"""Shared machinery of the batch MRQ / MkNNQ algorithms.

Both query algorithms (Sections 5.1 and 5.2) share four ingredients:

* computing the distances from each query to the pivots of its candidate
  nodes — evaluated as **one fused segmented pass** over all (query, pivot)
  pairs of the level (:func:`pivot_distances_per_query` builds per-query
  segments and hands them to ``Metric.pairwise_segmented``);
* the **two-stage memory strategy**: before a level is expanded, the size of
  the next intermediate-result table is compared with the per-level memory
  limit ``size_GPU / ((h - layer + 1) * Nc)``; when it does not fit, the query
  batch is divided into groups processed sequentially;
* tracking intermediate-result allocations on the simulated device so that
  memory pressure has observable consequences;
* **triple-array result accumulation** (:class:`ResultTriples`): qualifying
  ``(query, object, distance)`` hits are appended as flat arrays and turned
  into the per-query sorted answer lists by one final ``np.lexsort``, instead
  of per-hit Python dict inserts.

The helpers here are pure functions over NumPy arrays, which keeps the two
query modules small and the behaviour property-testable.  Only the *host*
evaluation strategy lives here — the simulated device-time accounting
(kernel launches, work item counts, transfer flows) is byte-for-byte the
same as the historical per-query implementation (DESIGN.md §8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import MemoryDeadlockError, QueryError
from ..gpusim.device import Device
from ..metrics.base import Metric
from .construction import concatenated_ranges, take_objects
from .nodes import TreeStructure
from .objectstore import GATHER_CHUNK_ELEMENTS, object_dimension, store_metric_digest

__all__ = [
    "ENTRY_BYTES",
    "PruneMode",
    "ResultTriples",
    "broadcast_query_param",
    "tombstone_array",
    "tombstoned_mask",
    "filter_live_triples",
    "dedupe_min_triples",
    "triples_to_answer_lists",
    "topk_by_distance",
    "level_pair_limit",
    "split_into_groups",
    "pivot_distances_per_query",
    "segmented_distances",
    "leaf_candidate_segments",
    "leaf_prefetch_ids",
    "prune_children",
    "IntermediateTable",
]

#: Simulated size of one intermediate-result entry ``{node, query, bound}``.
ENTRY_BYTES = 32

#: Simulated size of one verified-result slot ``{object, distance}``.
RESULT_BYTES = 16


def broadcast_query_param(values, num_queries: int, name: str, dtype) -> np.ndarray:
    """Broadcast a per-query parameter (radii, ``k``) to the batch shape.

    Accepts a scalar shared by every query, a length-1 sequence, or one value
    per query.  Anything else — wrong length, extra dimensions, non-numeric
    entries — raises :class:`~repro.exceptions.QueryError` naming the
    parameter and both shapes, instead of the raw NumPy ``ValueError`` the
    bare ``np.broadcast_to`` produces.
    """
    try:
        arr = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise QueryError(
            f"{name} must be numeric (a scalar or one value per query), got {values!r}"
        ) from exc
    if arr.ndim > 1 or (arr.ndim == 1 and arr.shape[0] not in (1, num_queries)):
        raise QueryError(
            f"{name} must be a scalar or match the query batch: "
            f"expected shape ({num_queries},), got shape {arr.shape}"
        )
    return np.broadcast_to(arr, (num_queries,)).copy()


def tombstone_array(exclude: Optional[set]) -> Optional[np.ndarray]:
    """Sorted int64 array of tombstoned ids, precomputed once per batch.

    Replaces the per-group ``np.isin(obj_ids, list(exclude))`` pattern, which
    rebuilt a Python list from the set on every query group.
    """
    if not exclude:
        return None
    return np.asarray(sorted(exclude), dtype=np.int64)


def tombstoned_mask(obj_ids: np.ndarray, tombstones: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """Boolean mask of the ids present in the sorted tombstone array.

    ``searchsorted`` over the precomputed sorted array — equivalent to
    ``np.isin`` but without re-sorting the tombstones per call.  Returns
    None when nothing is tombstoned (the common case keeps zero overhead).
    """
    if tombstones is None or len(tombstones) == 0 or len(obj_ids) == 0:
        return None
    pos = np.searchsorted(tombstones, obj_ids)
    pos = np.minimum(pos, len(tombstones) - 1)
    return tombstones[pos] == obj_ids


def filter_live_triples(query_indices, obj_ids, dists, tombstones):
    """Normalise (query, id, dist) triples and drop tombstoned objects.

    Returns the three aligned arrays, possibly empty — the shared add()
    prologue of :class:`ResultTriples` and the MkNNQ candidate pools.
    """
    obj_ids = np.asarray(obj_ids, dtype=np.int64)
    query_indices = np.asarray(query_indices, dtype=np.int64)
    dists = np.asarray(dists, dtype=np.float64)
    if len(obj_ids) == 0:
        return query_indices, obj_ids, dists
    dead = tombstoned_mask(obj_ids, tombstones)
    if dead is not None and dead.any():
        live = ~dead
        query_indices, obj_ids, dists = query_indices[live], obj_ids[live], dists[live]
    return query_indices, obj_ids, dists


def triples_to_answer_lists(
    qs: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    num_queries: int,
    k: Optional[np.ndarray] = None,
) -> list[list[tuple[int, float]]]:
    """Turn (query, id, dist) triples into per-query (id, dist) answer lists.

    One global ``(query, distance, id)`` lexsort, then per-query slices —
    truncated to ``k[qi]`` entries when a per-query ``k`` array is given.
    The shared finalisation of MRQ results and MkNNQ top-k extraction.
    """
    order = np.lexsort((ids, dists, qs))
    qs, ids, dists = qs[order], ids[order], dists[order]
    starts = np.searchsorted(qs, np.arange(num_queries, dtype=np.int64))
    ends = np.searchsorted(qs, np.arange(1, num_queries + 1, dtype=np.int64))
    id_list = ids.tolist()
    dist_list = dists.tolist()
    out = []
    for qi in range(num_queries):
        start = int(starts[qi])
        end = int(ends[qi])
        if k is not None:
            end = min(end, start + int(k[qi]))
        out.append(list(zip(id_list[start:end], dist_list[start:end])))
    return out


def topk_by_distance(ids: np.ndarray, dists: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` smallest ``(distance, id)`` pairs, in that order.

    ``np.argpartition`` isolates the candidates at or below the k-th
    distance (plus any ties straddling the cut), then only that candidate
    set is sorted — exactly the top-k a full ``sorted()`` of all pairs would
    yield, without the full sort.  The cache-table kNN scans use this.
    """
    n = len(ids)
    k = int(k)
    if k <= 0 or n == 0:
        return np.zeros(0, dtype=np.int64)
    if k < n:
        kth = np.partition(dists, k - 1)[k - 1]
        candidates = np.flatnonzero(dists <= kth)
    else:
        candidates = np.arange(n, dtype=np.int64)
    order = np.lexsort((ids[candidates], dists[candidates]))
    return candidates[order][:k]


def dedupe_min_triples(
    qs: np.ndarray, ids: np.ndarray, dists: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate (query, id) pairs to their minimum distance.

    Returns the surviving triples sorted by (query, id).  Both query answer
    finalisation and the MkNNQ pools use this; the engine only ever produces
    equal distances for duplicates, so min matches the historical
    last-write-wins dict semantics.
    """
    key = qs * (int(ids.max()) + 1) + ids
    order = np.lexsort((dists, key))
    key_sorted = key[order]
    # first occurrence per key carries the minimum distance; ``keep`` is
    # already in key order, i.e. sorted by (query, id)
    keep = order[np.concatenate(([True], key_sorted[1:] != key_sorted[:-1]))]
    return qs[keep], ids[keep], dists[keep]


class ResultTriples:
    """Batch result accumulation as flat ``(query, object, distance)`` arrays.

    Every qualifying hit — leaf verification survivors, pivot self-reports —
    is appended as aligned arrays; :meth:`finalize` produces the per-query
    answer lists with one global ``np.lexsort``: duplicates of the same
    (query, object) pair collapse to their minimum distance (the engine only
    ever produces equal distances for duplicates, so this matches the
    historical last-write-wins dict), and each query's survivors come out
    sorted by ``(distance, object_id)``.
    """

    __slots__ = ("_num_queries", "_tombstones", "_qs", "_ids", "_dists")

    def __init__(self, num_queries: int, tombstones: Optional[np.ndarray] = None):
        self._num_queries = int(num_queries)
        self._tombstones = tombstones
        self._qs: list[np.ndarray] = []
        self._ids: list[np.ndarray] = []
        self._dists: list[np.ndarray] = []

    def add(self, query_indices, obj_ids, dists) -> None:
        """Append hit triples; tombstoned objects are filtered out here."""
        query_indices, obj_ids, dists = filter_live_triples(
            query_indices, obj_ids, dists, self._tombstones
        )
        if len(obj_ids) == 0:
            return
        self._qs.append(query_indices)
        self._ids.append(obj_ids)
        self._dists.append(dists)

    def finalize(self) -> list[list[tuple[int, float]]]:
        """Per-query ``(object_id, distance)`` lists sorted by (distance, id)."""
        out: list[list[tuple[int, float]]] = [[] for _ in range(self._num_queries)]
        if not self._qs:
            return out
        qs, ids, dists = dedupe_min_triples(
            np.concatenate(self._qs), np.concatenate(self._ids), np.concatenate(self._dists)
        )
        return triples_to_answer_lists(qs, ids, dists, self._num_queries)


@dataclass(frozen=True)
class PruneMode:
    """Which side(s) of the distance interval the pruning rule uses.

    ``two_sided`` (default) prunes a child when the query ball misses the
    child's ``[min_dis, max_dis]`` interval from either side.  ``one_sided``
    reproduces the paper's literal statement, which only uses ``min_dis``
    (``d(q, p) + r < min_dis``); it is kept for the ablation benchmark.
    """

    two_sided: bool = True

    @classmethod
    def from_name(cls, name: str) -> "PruneMode":
        key = name.strip().lower().replace("_", "-")
        if key in ("two-sided", "both", "default"):
            return cls(two_sided=True)
        if key in ("one-sided", "paper", "min-only"):
            return cls(two_sided=False)
        raise QueryError(f"unknown prune mode {name!r}")


def level_pair_limit(device: Device, height: int, layer: int, node_capacity: int) -> int:
    """Maximum number of candidate (query, node) pairs expandable at ``layer``.

    Derived from the paper's per-level limit ``size_GPU / ((h - layer + 1) * Nc)``
    with ``size_GPU`` taken as the *currently available* device memory, so an
    index (or other tenants) already resident on the device shrinks the
    budget, as it would on real hardware.
    """
    levels_left = max(1, height - layer + 1)
    budget = device.available_bytes // (levels_left * max(node_capacity, 1) * ENTRY_BYTES)
    return max(1, int(budget))


def split_into_groups(
    cand_query: np.ndarray, limit_pairs: int
) -> list[np.ndarray]:
    """Split candidate pair indices into groups of at most ``limit_pairs`` pairs.

    Pairs of the same query are kept together whenever a single query fits
    within the limit (the paper divides *queries* into groups); a query whose
    own candidate list exceeds the limit is chunked on its own, which keeps
    the search correct (range/kNN candidate sets are unions) while bounding
    memory.
    Returns a list of index arrays into the pair arrays.
    """
    if limit_pairs <= 0:
        raise QueryError("limit_pairs must be positive")
    order = np.argsort(cand_query, kind="stable")
    sorted_q = cand_query[order]
    # per-query segment boundaries of the sorted pair list (cumulative-sum
    # form: one vectorised pass instead of per-pair Python bookkeeping)
    change = np.flatnonzero(np.diff(sorted_q)) + 1
    seg_starts = np.concatenate(([0], change))
    seg_ends = np.concatenate((change, [len(order)]))
    # greedy packing over whole-query segments; groups are recorded as index
    # ranges into ``order`` and materialised with slices at the end
    groups: list[list[tuple[int, int]]] = []
    current: list[tuple[int, int]] = []
    current_len = 0
    for start, end in zip(seg_starts.tolist(), seg_ends.tolist()):
        size = end - start
        if size > limit_pairs:
            # flush current, then chunk this oversized query on its own
            if current:
                groups.append(current)
                current, current_len = [], 0
            for chunk in range(start, end, limit_pairs):
                groups.append([(chunk, min(chunk + limit_pairs, end))])
            continue
        if current_len + size > limit_pairs and current:
            groups.append(current)
            current, current_len = [], 0
        current.append((start, end))
        current_len += size
    if current:
        groups.append(current)
    return [
        order[g[0][0] : g[0][1]]
        if len(g) == 1
        else np.concatenate([order[s:e] for s, e in g])
        for g in groups
    ]


def pivot_distances_per_query(
    device: Device,
    metric: Metric,
    objects: Sequence,
    queries: Sequence,
    cand_query: np.ndarray,
    pivot_ids: np.ndarray,
) -> np.ndarray:
    """Distance from each candidate pair's query to the pair's node pivot.

    The pairs are grouped by query index into segments and evaluated with a
    single fused ``Metric.pairwise_segmented`` call — one gather plus one
    broadcast pass over all (query, pivot) pairs of the level; device time is
    charged as one level-wide kernel over all pairs (this is the paper's
    "compute the distances of all nodes at the level simultaneously").
    """
    out = np.empty(len(cand_query), dtype=np.float64)
    if len(cand_query) == 0:
        return out
    # Tiered stores: stage the level's pivot blocks in one coalesced prefetch
    # before the segmented gather touches them.
    if getattr(objects, "prefetch_enabled", False):
        objects.prefetch_ids(pivot_ids)
    order = np.argsort(cand_query, kind="stable")
    unique_queries, starts = np.unique(cand_query[order], return_index=True)
    boundaries = np.append(starts, len(order))
    host_start = time.perf_counter()
    query_objects = take_objects(queries, unique_queries)
    out[order] = segmented_distances(
        metric, objects, query_objects, boundaries, pivot_ids[order]
    )
    host = time.perf_counter() - host_start
    device.launch_kernel(
        work_items=len(cand_query),
        op_cost=metric.unit_cost,
        label="pivot-distances",
        host_time=host,
    )
    return out


def segmented_distances(
    metric: Metric,
    objects: Sequence,
    query_objects: Sequence,
    boundaries: np.ndarray,
    obj_ids: np.ndarray,
) -> np.ndarray:
    """Gather candidate rows by id and evaluate the per-query segments.

    The flat candidate list is processed in cache-sized chunks of whole
    segments: each chunk is gathered (``take_objects`` — one columnar fancy
    index, with tiered stores charging their block faults in the identical
    order) and handed to ``Metric.pairwise_segmented`` while the gathered
    rows are still cache-resident.  Segments larger than the chunk budget
    are evaluated alone, which is exactly the cache-blocked shape of
    per-query evaluation.  Chunking is invisible to the results and the
    simulated device: only the host wall-clock changes.
    """
    n = len(obj_ids)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    num_segments = len(boundaries) - 1
    dim = object_dimension(objects)
    if dim is None:
        # list store (strings, sets, ragged data): the metric loops per
        # segment anyway and the "gather" is a view comprehension
        rows = take_objects(objects, obj_ids)
        out[:] = metric.pairwise_segmented(query_objects, rows, boundaries)
        return out
    # per-row auxiliaries (e.g. angular row norms), precomputed once per
    # store generation and gathered alongside the rows
    digest = store_metric_digest(objects, metric)
    budget_rows = max(1, GATHER_CHUNK_ELEMENTS // max(1, dim))
    seg = 0
    while seg < num_segments:
        end_seg = seg + 1
        chunk_rows = int(boundaries[end_seg] - boundaries[seg])
        while (
            end_seg < num_segments
            and chunk_rows + int(boundaries[end_seg + 1] - boundaries[end_seg]) <= budget_rows
        ):
            chunk_rows += int(boundaries[end_seg + 1] - boundaries[end_seg])
            end_seg += 1
        lo, hi = int(boundaries[seg]), int(boundaries[end_seg])
        chunk_ids = obj_ids[lo:hi]
        rows = take_objects(objects, chunk_ids)
        out[lo:hi] = metric.pairwise_segmented(
            query_objects[seg:end_seg],
            rows,
            boundaries[seg : end_seg + 1] - lo,
            object_digest=None if digest is None else digest[chunk_ids],
        )
        seg = end_seg
    return out


def leaf_candidate_segments(
    tree: TreeStructure,
    leaf_q: np.ndarray,
    leaf_node: np.ndarray,
    tombstones: Optional[np.ndarray],
    coalesce: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-query candidate segments of the surviving (query, leaf) pairs.

    Expands every pair's leaf slice of the table list and drops tombstoned
    ids.  With ``coalesce`` (any store whose gathers fault device blocks)
    each query's candidates are additionally sorted by object id, so the
    gather is block-coalesced per query — the order tiered paging is
    measured against.  Resident stores skip that sort: distances are
    per-row and every consumer (result triples, candidate pools) orders by
    ``(distance, id)`` at the end, so candidate order cannot influence a
    single output bit.

    Returns ``(unique_queries, boundaries, obj_ids)``: segment ``i`` of the
    flat ``obj_ids`` — rows ``boundaries[i]:boundaries[i + 1]`` — holds the
    candidates of ``unique_queries[i]``.  Queries whose candidates were all
    tombstoned produce no segment, exactly like the historical per-query
    loop's ``continue``.
    """
    if len(leaf_q) and np.any(np.diff(leaf_q) < 0):
        # engine invariants keep pair lists query-sorted; re-sort stably for
        # direct (test) callers that pass arbitrary pair order
        order = np.argsort(leaf_q, kind="stable")
        leaf_q, leaf_node = leaf_q[order], leaf_node[order]
    sizes = tree.size[leaf_node]
    flat = concatenated_ranges(tree.pos[leaf_node], sizes)
    obj_ids = tree.obj_ids[flat]
    owner = np.repeat(leaf_q, sizes)
    dead = tombstoned_mask(obj_ids, tombstones)
    if dead is not None and dead.any():
        live = ~dead
        obj_ids, owner = obj_ids[live], owner[live]
    if coalesce and len(obj_ids):
        order = np.lexsort((obj_ids, owner))
        obj_ids, owner = obj_ids[order], owner[order]
    if len(owner) == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            obj_ids,
        )
    starts = np.concatenate(([0], np.flatnonzero(np.diff(owner)) + 1))
    unique_queries = owner[starts]
    boundaries = np.append(starts, len(owner))
    return unique_queries, boundaries, obj_ids


def leaf_prefetch_ids(tree: TreeStructure, leaf_node: np.ndarray) -> np.ndarray:
    """Candidate ids of the distinct surviving leaves (prefetch lookahead)."""
    nodes = np.unique(leaf_node)
    return tree.obj_ids[concatenated_ranges(tree.pos[nodes], tree.size[nodes])]


def prune_children(
    tree: TreeStructure,
    cand_node: np.ndarray,
    pivot_dist: np.ndarray,
    lower_allowance: np.ndarray,
    upper_allowance: np.ndarray,
    mode: PruneMode,
    device: Device,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply Lemma 5.1 / 5.2 to every child of every candidate node at once.

    Parameters
    ----------
    cand_node:
        Candidate node ids (all at the same level), one per pair.
    pivot_dist:
        ``d(q, N.pivot)`` for each pair.
    lower_allowance / upper_allowance:
        Per-pair slack on each side of the interval test.  For MRQ both equal
        the radius ``r`` and the comparison is strict (Lemma 5.1 prunes when
        ``|d(o,p) - d(q,p)| > r``); for MkNNQ both equal the current k-th
        bound and the lemma's ``>=`` is obtained by shrinking the allowance
        by an epsilon at the call site.

    Returns
    -------
    (pair_index, child_id):
        Arrays describing the surviving (pair, child) combinations; the pair
        index refers back to the positions in ``cand_node``.
    """
    nc = tree.node_capacity
    if len(cand_node) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    child_ids = cand_node[:, None] * nc + 1 + np.arange(nc, dtype=np.int64)[None, :]
    sizes = tree.size[child_ids]
    lb = tree.min_dis[child_ids]
    ub = tree.max_dis[child_ids]
    d = pivot_dist[:, None]
    keep = sizes > 0
    keep &= d + upper_allowance[:, None] >= lb
    if mode.two_sided:
        keep &= d - lower_allowance[:, None] <= ub
    device.launch_kernel(work_items=child_ids.size, op_cost=2.0, label="prune-children")
    pair_index, child_col = np.nonzero(keep)
    return pair_index.astype(np.int64), child_ids[pair_index, child_col].astype(np.int64)


class IntermediateTable:
    """RAII-style allocation of the per-level intermediate result table.

    Raises :class:`MemoryDeadlockError` when the allocation cannot be
    satisfied — the exact failure mode the paper ascribes to prior GPU tree
    indexes; GTS itself avoids it through :func:`level_pair_limit` grouping,
    so within GTS this error indicates the device is too small to hold even
    one query group (which the tests exercise explicitly).
    """

    def __init__(self, device: Device, entries: int, label: str = "intermediate"):
        self._device = device
        try:
            self._allocation = device.allocate(int(entries) * ENTRY_BYTES, label, pool="workspace")
        except Exception as exc:  # DeviceMemoryError
            raise MemoryDeadlockError(
                f"cannot allocate intermediate table of {entries} entries: {exc}"
            ) from exc

    def __enter__(self) -> "IntermediateTable":
        return self

    def __exit__(self, *exc_info) -> None:
        self._device.free(self._allocation)
