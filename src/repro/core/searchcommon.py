"""Shared machinery of the batch MRQ / MkNNQ algorithms.

Both query algorithms (Sections 5.1 and 5.2) share three ingredients:

* computing the distances from each query to the pivots of its candidate
  nodes — grouped per query so each call hits the metric's vectorised path;
* the **two-stage memory strategy**: before a level is expanded, the size of
  the next intermediate-result table is compared with the per-level memory
  limit ``size_GPU / ((h - layer + 1) * Nc)``; when it does not fit, the query
  batch is divided into groups processed sequentially;
* tracking intermediate-result allocations on the simulated device so that
  memory pressure has observable consequences.

The helpers here are pure functions over NumPy arrays, which keeps the two
query modules small and the behaviour property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import MemoryDeadlockError, QueryError
from ..gpusim.device import Device
from ..gpusim.kernels import distance_kernel
from ..metrics.base import Metric
from .construction import take_objects
from .nodes import TreeStructure

__all__ = [
    "ENTRY_BYTES",
    "PruneMode",
    "broadcast_query_param",
    "level_pair_limit",
    "split_into_groups",
    "pivot_distances_per_query",
    "prune_children",
    "IntermediateTable",
]

#: Simulated size of one intermediate-result entry ``{node, query, bound}``.
ENTRY_BYTES = 32

#: Simulated size of one verified-result slot ``{object, distance}``.
RESULT_BYTES = 16


def broadcast_query_param(values, num_queries: int, name: str, dtype) -> np.ndarray:
    """Broadcast a per-query parameter (radii, ``k``) to the batch shape.

    Accepts a scalar shared by every query, a length-1 sequence, or one value
    per query.  Anything else — wrong length, extra dimensions, non-numeric
    entries — raises :class:`~repro.exceptions.QueryError` naming the
    parameter and both shapes, instead of the raw NumPy ``ValueError`` the
    bare ``np.broadcast_to`` produces.
    """
    try:
        arr = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise QueryError(
            f"{name} must be numeric (a scalar or one value per query), got {values!r}"
        ) from exc
    if arr.ndim > 1 or (arr.ndim == 1 and arr.shape[0] not in (1, num_queries)):
        raise QueryError(
            f"{name} must be a scalar or match the query batch: "
            f"expected shape ({num_queries},), got shape {arr.shape}"
        )
    return np.broadcast_to(arr, (num_queries,)).copy()


@dataclass(frozen=True)
class PruneMode:
    """Which side(s) of the distance interval the pruning rule uses.

    ``two_sided`` (default) prunes a child when the query ball misses the
    child's ``[min_dis, max_dis]`` interval from either side.  ``one_sided``
    reproduces the paper's literal statement, which only uses ``min_dis``
    (``d(q, p) + r < min_dis``); it is kept for the ablation benchmark.
    """

    two_sided: bool = True

    @classmethod
    def from_name(cls, name: str) -> "PruneMode":
        key = name.strip().lower().replace("_", "-")
        if key in ("two-sided", "both", "default"):
            return cls(two_sided=True)
        if key in ("one-sided", "paper", "min-only"):
            return cls(two_sided=False)
        raise QueryError(f"unknown prune mode {name!r}")


def level_pair_limit(device: Device, height: int, layer: int, node_capacity: int) -> int:
    """Maximum number of candidate (query, node) pairs expandable at ``layer``.

    Derived from the paper's per-level limit ``size_GPU / ((h - layer + 1) * Nc)``
    with ``size_GPU`` taken as the *currently available* device memory, so an
    index (or other tenants) already resident on the device shrinks the
    budget, as it would on real hardware.
    """
    levels_left = max(1, height - layer + 1)
    budget = device.available_bytes // (levels_left * max(node_capacity, 1) * ENTRY_BYTES)
    return max(1, int(budget))


def split_into_groups(
    cand_query: np.ndarray, limit_pairs: int
) -> list[np.ndarray]:
    """Split candidate pair indices into groups of at most ``limit_pairs`` pairs.

    Pairs of the same query are kept together whenever a single query fits
    within the limit (the paper divides *queries* into groups); a query whose
    own candidate list exceeds the limit is chunked on its own, which keeps
    the search correct (range/kNN candidate sets are unions) while bounding
    memory.
    Returns a list of index arrays into the pair arrays.
    """
    if limit_pairs <= 0:
        raise QueryError("limit_pairs must be positive")
    order = np.argsort(cand_query, kind="stable")
    groups: list[list[int]] = []
    current: list[int] = []
    # walk pairs grouped by query id
    unique_queries, starts = np.unique(cand_query[order], return_index=True)
    boundaries = list(starts) + [len(order)]
    for qi in range(len(unique_queries)):
        idx = order[boundaries[qi] : boundaries[qi + 1]]
        if len(idx) > limit_pairs:
            # flush current, then chunk this oversized query on its own
            if current:
                groups.append(current)
                current = []
            for start in range(0, len(idx), limit_pairs):
                groups.append(list(idx[start : start + limit_pairs]))
            continue
        if len(current) + len(idx) > limit_pairs and current:
            groups.append(current)
            current = []
        current.extend(idx.tolist())
    if current:
        groups.append(current)
    return [np.asarray(g, dtype=np.int64) for g in groups]


def pivot_distances_per_query(
    device: Device,
    metric: Metric,
    objects: Sequence,
    queries: Sequence,
    cand_query: np.ndarray,
    pivot_ids: np.ndarray,
) -> np.ndarray:
    """Distance from each candidate pair's query to the pair's node pivot.

    The pairs are grouped by query index so that each query issues a single
    vectorised ``pairwise`` call; device time is charged as one level-wide
    kernel over all pairs (this is the paper's "compute the distances of all
    nodes at the level simultaneously").
    """
    out = np.empty(len(cand_query), dtype=np.float64)
    if len(cand_query) == 0:
        return out
    # Tiered stores: stage the level's pivot blocks in one coalesced prefetch
    # before the per-query grouping touches them.
    if getattr(objects, "prefetch_enabled", False):
        objects.prefetch_ids(pivot_ids)
    order = np.argsort(cand_query, kind="stable")
    sorted_q = cand_query[order]
    unique_queries, starts = np.unique(sorted_q, return_index=True)
    boundaries = list(starts) + [len(order)]
    import time as _time

    host_start = _time.perf_counter()
    for qi, query_index in enumerate(unique_queries):
        idx = order[boundaries[qi] : boundaries[qi + 1]]
        pivots = take_objects(objects, pivot_ids[idx])
        out[idx] = metric.pairwise(queries[int(query_index)], pivots)
    host = _time.perf_counter() - host_start
    device.launch_kernel(
        work_items=len(cand_query),
        op_cost=metric.unit_cost,
        label="pivot-distances",
        host_time=host,
    )
    return out


def prune_children(
    tree: TreeStructure,
    cand_node: np.ndarray,
    pivot_dist: np.ndarray,
    lower_allowance: np.ndarray,
    upper_allowance: np.ndarray,
    mode: PruneMode,
    device: Device,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply Lemma 5.1 / 5.2 to every child of every candidate node at once.

    Parameters
    ----------
    cand_node:
        Candidate node ids (all at the same level), one per pair.
    pivot_dist:
        ``d(q, N.pivot)`` for each pair.
    lower_allowance / upper_allowance:
        Per-pair slack on each side of the interval test.  For MRQ both equal
        the radius ``r`` and the comparison is strict (Lemma 5.1 prunes when
        ``|d(o,p) - d(q,p)| > r``); for MkNNQ both equal the current k-th
        bound and the lemma's ``>=`` is obtained by shrinking the allowance
        by an epsilon at the call site.

    Returns
    -------
    (pair_index, child_id):
        Arrays describing the surviving (pair, child) combinations; the pair
        index refers back to the positions in ``cand_node``.
    """
    nc = tree.node_capacity
    if len(cand_node) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    child_ids = cand_node[:, None] * nc + 1 + np.arange(nc, dtype=np.int64)[None, :]
    sizes = tree.size[child_ids]
    lb = tree.min_dis[child_ids]
    ub = tree.max_dis[child_ids]
    d = pivot_dist[:, None]
    keep = sizes > 0
    keep &= d + upper_allowance[:, None] >= lb
    if mode.two_sided:
        keep &= d - lower_allowance[:, None] <= ub
    device.launch_kernel(work_items=child_ids.size, op_cost=2.0, label="prune-children")
    pair_index, child_col = np.nonzero(keep)
    return pair_index.astype(np.int64), child_ids[pair_index, child_col].astype(np.int64)


class IntermediateTable:
    """RAII-style allocation of the per-level intermediate result table.

    Raises :class:`MemoryDeadlockError` when the allocation cannot be
    satisfied — the exact failure mode the paper ascribes to prior GPU tree
    indexes; GTS itself avoids it through :func:`level_pair_limit` grouping,
    so within GTS this error indicates the device is too small to hold even
    one query group (which the tests exercise explicitly).
    """

    def __init__(self, device: Device, entries: int, label: str = "intermediate"):
        self._device = device
        try:
            self._allocation = device.allocate(int(entries) * ENTRY_BYTES, label, pool="workspace")
        except Exception as exc:  # DeviceMemoryError
            raise MemoryDeadlockError(
                f"cannot allocate intermediate table of {entries} entries: {exc}"
            ) from exc

    def __enter__(self) -> "IntermediateTable":
        return self

    def __exit__(self, *exc_info) -> None:
        self._device.free(self._allocation)
